"""OpenBox: a software-defined framework for network functions.

A faithful Python reproduction of *OpenBox: A Software-Defined Framework
for Developing, Deploying, and Managing Network Functions* (SIGCOMM 2016).

Quickstart::

    from repro import OpenBoxController, OpenBoxInstance, ObiConfig, connect_inproc
    from repro.apps import FirewallApp, parse_firewall_rules

    controller = OpenBoxController()
    obi = OpenBoxInstance(ObiConfig(obi_id="obi-1", segment="corp"))
    connect_inproc(controller, obi)
    rules = parse_firewall_rules("deny tcp any any any 23\\nallow any any any any any")
    controller.register_application(FirewallApp("fw", rules, segment="corp"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results of every table and figure.
"""

from repro.bootstrap import connect_inproc, connect_obi_rest, serve_controller_rest
from repro.controller import (
    AppStatement,
    OpenBoxApplication,
    OpenBoxController,
    split_at_classifier,
)
from repro.core import (
    Block,
    BlockClass,
    MergePolicy,
    MergeResult,
    ProcessingGraph,
    merge_graphs,
    naive_merge,
)
from repro.obi import ObiConfig, OpenBoxInstance

__version__ = "1.0.0"

__all__ = [
    "AppStatement",
    "Block",
    "BlockClass",
    "MergePolicy",
    "MergeResult",
    "ObiConfig",
    "OpenBoxApplication",
    "OpenBoxController",
    "OpenBoxInstance",
    "ProcessingGraph",
    "connect_inproc",
    "connect_obi_rest",
    "merge_graphs",
    "naive_merge",
    "serve_controller_rest",
    "split_at_classifier",
    "__version__",
]
