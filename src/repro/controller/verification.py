"""Offline verification of NF applications before deployment (paper §6).

"verification solutions such as [VeriCon] might be applied on OpenBox
applications, with the required adaptations, to provide offline
verification before deploying NFs."

This is that adaptation: a static checker the controller can run over an
application's statements before accepting them. It does not execute
packets; it reasons about graph structure and classifier rule sets:

* structural validity (valid DAG, single entry, port ranges);
* reachability: every non-entry block is reachable from the entry, every
  classifier port with a connector has rules (or the default) mapping to
  it, and vice versa;
* rule hygiene: shadowed/duplicate rules (they silently never fire);
* blackhole detection: a catch-all rule routed to a Discard makes every
  later rule and every later application in the chain unreachable — the
  classic multi-tenant foot-gun the paper's security discussion worries
  about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocks import BlockClass
from repro.core.classify.header import HeaderRuleSet
from repro.core.concat import ABSORBING_TERMINALS, OUTPUT_TERMINALS
from repro.core.graph import GraphValidationError, ProcessingGraph


@dataclass(frozen=True)
class Finding:
    """One verification finding."""

    severity: str  # "error" | "warning"
    code: str
    block: str
    message: str


@dataclass
class VerificationReport:
    findings: list[Finding] = field(default_factory=list)

    def _add(self, severity: str, code: str, block: str, message: str) -> None:
        self.findings.append(Finding(severity, code, block, message))

    @property
    def errors(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors


def verify_graph(graph: ProcessingGraph) -> VerificationReport:
    """Statically verify one processing graph."""
    report = VerificationReport()

    # -------- structural validity --------
    try:
        graph.validate()
    except GraphValidationError as exc:
        report._add("error", "structure", graph.name, str(exc))
        return report
    roots = graph.roots()
    entries = [
        name for name in roots
        if graph.blocks[name].type in ("FromDevice", "FromDump")
    ]
    if not entries:
        report._add("error", "structure", graph.name,
                    "graph has no input terminal (FromDevice/FromDump)")
        return report
    if len(entries) > 1:
        report._add("error", "structure", graph.name,
                    f"graph has multiple input terminals: {entries}")
        return report

    # -------- reachability --------
    reachable = set(entries)
    stack = list(entries)
    while stack:
        current = stack.pop()
        for successor in graph.successors(current):
            if successor not in reachable:
                reachable.add(successor)
                stack.append(successor)
    for name in graph.blocks:
        if name not in reachable:
            report._add("warning", "unreachable", name,
                        f"block {name!r} can never see a packet")

    has_output = any(
        block.type in OUTPUT_TERMINALS for block in graph.blocks.values()
    )
    if not has_output:
        report._add(
            "warning", "no-output", graph.name,
            "graph has no output terminal: all traffic is absorbed, and no "
            "further NF can be chained after this application",
        )

    # -------- classifier checks --------
    for block in graph.blocks.values():
        if block.type != "HeaderClassifier":
            continue
        ruleset = HeaderRuleSet.from_config(block.config)
        pruned = ruleset.prune_shadowed()
        shadowed = len(ruleset) - len(pruned)
        if shadowed:
            report._add("warning", "shadowed-rules", block.name,
                        f"{shadowed} rule(s) can never fire (shadowed or duplicate)")

        wired = {connector.src_port for connector in graph.out_connectors(block.name)}
        declared = ruleset.used_ports()
        for port in declared - wired:
            report._add("warning", "dangling-port", block.name,
                        f"port {port} is declared by rules but not wired: "
                        f"matching packets are silently absorbed")
        for port in wired - declared:
            report._add("warning", "dead-port", block.name,
                        f"port {port} is wired but no rule maps to it")

        # Blackhole: the effective catch-all leads (only) to absorption.
        catch_all_port = next(
            (rule.port for rule in ruleset.rules if rule.is_catch_all),
            ruleset.default_port,
        )
        successor = graph.successor_on_port(block.name, catch_all_port)
        if successor is not None:
            successor_block = graph.blocks[successor]
            if (successor_block.type in ABSORBING_TERMINALS
                    and successor_block.block_class == BlockClass.TERMINAL):
                report._add(
                    "warning", "blackhole", block.name,
                    f"the catch-all outcome (port {catch_all_port}) discards all "
                    f"traffic: every subsequent NF in the chain is starved",
                )
    return report


def verify_application(app) -> VerificationReport:
    """Verify every statement an application declares."""
    combined = VerificationReport()
    for statement in app.statements():
        report = verify_graph(statement.graph)
        combined.findings.extend(report.findings)
    return combined
