"""The OpenBox controller (OBC) and its northbound application API.

The OBC (paper §3.3) is the logically-centralized control plane:

* applications register and declare logic as processing graphs scoped to
  *segments* (:mod:`repro.controller.apps`, :mod:`.segments`);
* per OBI, the controller selects the applicable graphs, merges them
  (:mod:`.aggregator`), and deploys the result;
* upstream events (alerts, keepalives) are demultiplexed to the right
  application (:mod:`.xid`, :mod:`.obc`);
* load statistics drive scaling decisions (:mod:`.stats`, :mod:`.scaling`);
* the steering module maps service chains onto the forwarding plane
  (:mod:`.steering`), placement chooses which OBIs host which NFs
  (:mod:`.placement`), and :mod:`.split` divides a graph between a
  hardware-classifier OBI and a software OBI (paper Figures 5-6);
* high availability (PROTOCOL.md §12): lease-based leadership with
  epoch fencing (:mod:`.lease`) and journal streaming to hot standbys
  with lease-epoch-fenced takeover (:mod:`.replication`).
"""

from repro.controller.aggregator import GraphAggregator
from repro.controller.apps import AppStatement, OpenBoxApplication
from repro.controller.journal import JournalCursor, JournalState, StateJournal
from repro.controller.lease import (
    InProcLeaseStore,
    Lease,
    LeaseManager,
    LeaseStore,
    LeaseUnavailable,
)
from repro.controller.migration import StateMigrator
from repro.controller.obc import ObiHandle, OpenBoxController
from repro.controller.optimizer import optimize_graph
from repro.controller.orchestrator import OrchestrationLoop
from repro.controller.reconcile import AntiEntropyLoop, ReconcileReport
from repro.controller.replication import ReplicationHub, StandbyController
from repro.controller.segments import SegmentHierarchy
from repro.controller.split import deploy_split, split_at_classifier
from repro.controller.verification import verify_application, verify_graph

__all__ = [
    "AntiEntropyLoop",
    "AppStatement",
    "GraphAggregator",
    "InProcLeaseStore",
    "JournalCursor",
    "JournalState",
    "Lease",
    "LeaseManager",
    "LeaseStore",
    "LeaseUnavailable",
    "ObiHandle",
    "OpenBoxApplication",
    "OpenBoxController",
    "OrchestrationLoop",
    "ReconcileReport",
    "ReplicationHub",
    "SegmentHierarchy",
    "StandbyController",
    "StateJournal",
    "StateMigrator",
    "deploy_split",
    "optimize_graph",
    "split_at_classifier",
    "verify_application",
    "verify_graph",
]
