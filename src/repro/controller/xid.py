"""Request multiplexing / response demultiplexing (paper §4.1).

"When an application sends a request, it provides the controller with
callback functions that are called when a response arrives back at the
controller. The controller handles multiplexing of requests and
demultiplexing of responses."

Every outgoing request is recorded under its ``xid``; when a response
(or error) with that ``xid`` arrives, the registered callback fires and
the entry is dropped. Entries also expire so a dead OBI cannot leak
callbacks forever, and :meth:`RequestMultiplexer.cancel_for_obi` sweeps
every request still pending against a peer the moment it is declared
dead — applications fail fast with a ``not_connected`` error instead of
waiting out the timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.protocol.errors import ErrorCode
from repro.protocol.messages import ErrorMessage, Message


@dataclass
class _Pending:
    app_name: str
    callback: Callable[[Message], None]
    error_callback: Callable[[ErrorMessage], None] | None
    deadline: float
    #: Which OBI the request was sent to ("" when unknown), so pending
    #: entries can be swept when that peer dies.
    obi_id: str = ""


class RequestMultiplexer:
    """Tracks in-flight application requests by transaction id."""

    def __init__(self, default_timeout: float = 30.0) -> None:
        self.default_timeout = default_timeout
        self._pending: dict[int, _Pending] = {}
        self.expired = 0
        self.unmatched = 0
        self.cancelled = 0

    def __len__(self) -> int:
        return len(self._pending)

    def register(
        self,
        xid: int,
        app_name: str,
        callback: Callable[[Message], None],
        now: float,
        error_callback: Callable[[ErrorMessage], None] | None = None,
        timeout: float | None = None,
        obi_id: str = "",
    ) -> None:
        if xid in self._pending:
            raise ValueError(f"xid {xid} already registered")
        self._pending[xid] = _Pending(
            app_name=app_name,
            callback=callback,
            error_callback=error_callback,
            deadline=now + (timeout if timeout is not None else self.default_timeout),
            obi_id=obi_id,
        )

    def dispatch(self, response: Message) -> bool:
        """Route ``response`` to its callback; True if a request matched."""
        pending = self._pending.pop(response.xid, None)
        if pending is None:
            self.unmatched += 1
            return False
        if isinstance(response, ErrorMessage):
            if pending.error_callback is not None:
                pending.error_callback(response)
            return True
        pending.callback(response)
        return True

    def owner_of(self, xid: int) -> str | None:
        pending = self._pending.get(xid)
        return pending.app_name if pending is not None else None

    def pending_for_obi(self, obi_id: str) -> list[int]:
        return [
            xid for xid, pending in self._pending.items()
            if pending.obi_id == obi_id
        ]

    def _fail(self, xid: int, pending: _Pending, code: str, detail: str) -> None:
        if pending.error_callback is not None:
            pending.error_callback(ErrorMessage(xid=xid, code=code, detail=detail))

    def cancel_for_obi(self, obi_id: str, detail: str = "") -> list[int]:
        """Fail every request still pending against ``obi_id``.

        Called when the peer is declared dead; each entry's error
        callback (if any) fires with ``not_connected``.
        """
        stale = self.pending_for_obi(obi_id)
        for xid in stale:
            pending = self._pending.pop(xid)
            self.cancelled += 1
            self._fail(
                xid, pending, ErrorCode.NOT_CONNECTED,
                detail or f"OBI {obi_id!r} declared dead",
            )
        return stale

    def expire(self, now: float) -> list[int]:
        """Drop requests whose deadline passed; returns their xids.

        Expired entries get an ``internal_error`` delivered to their
        error callback so applications learn the request timed out.
        """
        stale = [xid for xid, pending in self._pending.items() if pending.deadline < now]
        for xid in stale:
            pending = self._pending.pop(xid)
            self.expired += 1
            self._fail(
                xid, pending, ErrorCode.INTERNAL_ERROR,
                f"request xid={xid} to {pending.obi_id or 'peer'} timed out",
            )
        return stale
