"""Request multiplexing / response demultiplexing (paper §4.1).

"When an application sends a request, it provides the controller with
callback functions that are called when a response arrives back at the
controller. The controller handles multiplexing of requests and
demultiplexing of responses."

Every outgoing request is recorded under its ``xid``; when a response
(or error) with that ``xid`` arrives, the registered callback fires and
the entry is dropped. Entries also expire so a dead OBI cannot leak
callbacks forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.protocol.messages import ErrorMessage, Message


@dataclass
class _Pending:
    app_name: str
    callback: Callable[[Message], None]
    error_callback: Callable[[ErrorMessage], None] | None
    deadline: float


class RequestMultiplexer:
    """Tracks in-flight application requests by transaction id."""

    def __init__(self, default_timeout: float = 30.0) -> None:
        self.default_timeout = default_timeout
        self._pending: dict[int, _Pending] = {}
        self.expired = 0
        self.unmatched = 0

    def __len__(self) -> int:
        return len(self._pending)

    def register(
        self,
        xid: int,
        app_name: str,
        callback: Callable[[Message], None],
        now: float,
        error_callback: Callable[[ErrorMessage], None] | None = None,
        timeout: float | None = None,
    ) -> None:
        if xid in self._pending:
            raise ValueError(f"xid {xid} already registered")
        self._pending[xid] = _Pending(
            app_name=app_name,
            callback=callback,
            error_callback=error_callback,
            deadline=now + (timeout if timeout is not None else self.default_timeout),
        )

    def dispatch(self, response: Message) -> bool:
        """Route ``response`` to its callback; True if a request matched."""
        pending = self._pending.pop(response.xid, None)
        if pending is None:
            self.unmatched += 1
            return False
        if isinstance(response, ErrorMessage):
            if pending.error_callback is not None:
                pending.error_callback(response)
            return True
        pending.callback(response)
        return True

    def owner_of(self, xid: int) -> str | None:
        pending = self._pending.get(xid)
        return pending.app_name if pending is not None else None

    def expire(self, now: float) -> list[int]:
        """Drop requests whose deadline passed; returns their xids."""
        stale = [xid for xid, pending in self._pending.items() if pending.deadline < now]
        for xid in stale:
            del self._pending[xid]
            self.expired += 1
        return stale
