"""Durable controller state: write-ahead journal + compacted snapshots.

The paper's controller is *logically centralized* (§4.2), which is only
viable if it can die and come back without taking the data plane with
it. This module gives the controller a crash-consistent persistence
layer with two halves:

* an **append-only JSON-lines journal**: every state mutation (app
  registration, segment discovery, OBI connection, successful deploy,
  generation bump) is one self-describing record. Appends are batched
  to ``fsync`` every ``fsync_every`` records — the classic WAL
  throughput/durability trade, tunable down to 1 for strict durability;
* **periodic compacted snapshots**: after ``compact_every`` appends the
  whole logical state is rewritten as a single ``snapshot`` record into
  a fresh file, atomically swapped in with ``os.replace``, so the
  journal never grows without bound and replay cost stays O(state),
  not O(history).

Replay is deliberately forgiving (the fuzz suite exercises this):

* a **truncated or corrupt tail** (half-written last line after a
  crash) stops replay at the longest valid prefix — everything before
  it is recovered;
* **duplicate records** (a crash between apply and fsync can replay a
  batch) fold idempotently — registering the same app or segment twice
  is a no-op, a deploy record overwrites the previous intent for that
  OBI.

What is journaled is *intent*, not mechanism: per-OBI the canonical
digest of the intended graph plus its version epoch — enough for the
anti-entropy loop to tell a converged OBI from a stale one without
reserializing whole graphs into the log. Transaction-id high-watermarks
ride along so a recovered controller never re-issues an xid a peer may
still hold in its dedup cache, and the **controller generation** (bumped
and flushed durably on every recovery, before any message is sent) is
what lets OBIs fence off a stale predecessor (split-brain guard).
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.durable import LOCAL, Storage


@dataclass
class JournalState:
    """The logical controller state a journal encodes.

    This is the fold of a snapshot record plus every tail record after
    it; :meth:`StateJournal.replay` produces one and recovery consumes
    it. All values are plain JSON types.
    """

    #: Monotonically increasing controller generation (split-brain guard).
    generation: int = 0
    #: Registered application name -> {"priority": int}.
    apps: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Known segment paths, in discovery order.
    segments: list[str] = field(default_factory=list)
    #: obi_id -> {"segment", "callback_url", "digest", "graph_version"}.
    obis: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Highest transaction id known to have been allocated.
    xid_high: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "apps": self.apps,
            "segments": list(self.segments),
            "obis": self.obis,
            "xid_high": self.xid_high,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JournalState":
        state = cls()
        state.generation = int(data.get("generation", 0))
        state.apps = {
            str(name): dict(info)
            for name, info in dict(data.get("apps", {})).items()
        }
        state.segments = [str(path) for path in data.get("segments", [])]
        state.obis = {
            str(obi_id): dict(info)
            for obi_id, info in dict(data.get("obis", {})).items()
        }
        state.xid_high = int(data.get("xid_high", 0))
        return state

    # -- record folding -------------------------------------------------
    def apply(self, record: dict[str, Any]) -> None:
        """Fold one journal record into the state (idempotent)."""
        kind = record.get("rec")
        if kind == "snapshot":
            replacement = JournalState.from_dict(record.get("state", {}))
            self.__dict__.update(replacement.__dict__)
        elif kind == "generation":
            self.generation = max(self.generation, int(record.get("generation", 0)))
        elif kind == "app":
            name = str(record.get("name", ""))
            if record.get("op") == "unregister":
                self.apps.pop(name, None)
            elif name:
                self.apps[name] = {"priority": int(record.get("priority", 100))}
        elif kind == "segment":
            path = str(record.get("path", ""))
            if path and path not in self.segments:
                self.segments.append(path)
        elif kind == "obi":
            obi_id = str(record.get("obi_id", ""))
            if obi_id:
                entry = self.obis.setdefault(
                    obi_id, {"segment": "", "callback_url": "",
                             "digest": "", "graph_version": 0},
                )
                entry["segment"] = str(record.get("segment", entry["segment"]))
                if record.get("callback_url"):
                    entry["callback_url"] = str(record["callback_url"])
        elif kind == "obi_forgotten":
            self.obis.pop(str(record.get("obi_id", "")), None)
        elif kind == "deploy":
            obi_id = str(record.get("obi_id", ""))
            if obi_id:
                entry = self.obis.setdefault(
                    obi_id, {"segment": "", "callback_url": "",
                             "digest": "", "graph_version": 0},
                )
                entry["digest"] = str(record.get("digest", ""))
                entry["graph_version"] = int(record.get("graph_version", 0))
        # Any record may carry an xid high-watermark piggyback.
        if "xid_high" in record:
            self.xid_high = max(self.xid_high, int(record["xid_high"]))


@dataclass(frozen=True)
class JournalCursor:
    """A replication position: (segment, record offset within it).

    A journal's **segment** is its compaction incarnation: every
    :meth:`StateJournal.compact` rewrites the file and bumps the segment
    number, invalidating record offsets taken against the previous file.
    A follower whose cursor names an older segment cannot be served a
    delta — the bytes it was tailing no longer exist — so it is caught
    up with a **snapshot**: the entire current file (whose first record
    is a state snapshot) plus a fresh cursor. ``segment`` -1 is the
    null cursor ("never synced"), which always takes the snapshot path.
    """

    segment: int = -1
    offset: int = 0

    def to_dict(self) -> dict[str, int]:
        return {"segment": self.segment, "offset": self.offset}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JournalCursor":
        return cls(
            segment=int(data.get("segment", -1)),
            offset=int(data.get("offset", 0)),
        )


@dataclass
class StreamBatch:
    """What :meth:`StateJournal.read_since` produced for one follower."""

    #: Records after the cursor (or the whole file on a snapshot).
    records: list[dict[str, Any]] = field(default_factory=list)
    #: Position after applying :attr:`records`.
    cursor: JournalCursor = field(default_factory=JournalCursor)
    #: True when the batch replaces the follower's journal wholesale
    #: (cursor named a compacted-away segment, or was the null cursor).
    snapshot: bool = False


@dataclass
class ReplayResult:
    """What :meth:`StateJournal.replay` reconstructed."""

    state: JournalState
    #: Records folded into the state.
    records: int = 0
    #: True when replay stopped early at a corrupt/truncated line; the
    #: state is the fold of the longest valid prefix.
    truncated: bool = False
    #: The offending line (repr-safe excerpt), for diagnostics.
    bad_line: str = ""


class JournalError(Exception):
    """Raised for misuse (e.g. appending to a closed journal)."""


class StateJournal:
    """Append-only, fsync-batched, self-compacting JSON-lines journal."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        fsync_every: int = 8,
        compact_every: int = 256,
        storage: Storage | None = None,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.path = os.fspath(path)
        self.fsync_every = fsync_every
        self.compact_every = compact_every
        #: Durable-storage backend; every write-side syscall goes through
        #: it so the chaos engine can inject ENOSPC/EIO/lying fsyncs.
        self.storage = storage or LOCAL
        # A crash mid-compact can leave the snapshot temp file behind;
        # the journal itself is intact (the replace never happened), so
        # the stale attempt is simply discarded.
        self.storage.remove(self.path + ".compact")
        # Learn the replication position of an existing file before
        # opening it for append: the segment number rides in the head
        # snapshot record (compaction incarnation), and the offset is
        # the count of valid records already present. Journal files are
        # compaction-bounded, so this scan is O(state), not O(history).
        self.segment = 0
        self.record_count = 0
        for record in self.read_records(self.path):
            if self.record_count == 0 and record.get("rec") == "snapshot":
                self.segment = int(record.get("segment", 0))
            self.record_count += 1
        self._file = self.storage.open(self.path, "a")
        self._unsynced = 0
        self._appends_since_compact = 0
        self.appended = 0
        self.fsyncs = 0
        #: Failed append writes / failed fsyncs (storage refused); the
        #: affected records were never counted as present or durable.
        self.append_failures = 0
        self.sync_failures = 0
        self.compactions = 0
        #: Fresh segments started by :meth:`rebuild` (degraded-mode resume).
        self.rebuilds = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: dict[str, Any]) -> None:
        """Append one record; durable after at most ``fsync_every`` appends."""
        if self._closed:
            raise JournalError("journal is closed")
        try:
            self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        except (OSError, ValueError):
            # The record may be absent or torn on disk; replay's
            # longest-valid-prefix tolerance absorbs either form. It is
            # NOT counted into record_count — replication cursors must
            # only ever count records that parse.
            self.append_failures += 1
            raise
        self.appended += 1
        self.record_count += 1
        self._unsynced += 1
        self._appends_since_compact += 1
        if self._unsynced >= self.fsync_every:
            self.flush()

    def flush(self) -> None:
        """Force buffered appends to stable storage (fsync).

        Durability accounting is honest: ``_unsynced`` is only reset —
        and ``fsyncs`` only incremented — after the fsync *succeeded*.
        A refused barrier re-surfaces on the next flush instead of
        silently marking the batch durable.
        """
        if self._closed:
            return
        try:
            self.storage.fsync(self._file)
        except OSError:
            self.sync_failures += 1
            raise
        if self._unsynced:
            self.fsyncs += 1
        self._unsynced = 0

    @property
    def should_compact(self) -> bool:
        return self._appends_since_compact >= self.compact_every

    def compact(self, state: JournalState) -> None:
        """Rewrite the journal as one snapshot record, atomically.

        The snapshot is written to a sibling temp file, fsynced, then
        ``os.replace``d over the journal — a crash at any point leaves
        either the old journal or the new one, never a torn mix.
        """
        if self._closed:
            raise JournalError("journal is closed")
        # Everything the snapshot summarizes must be durable first; a
        # refused fsync aborts the compaction before any file is touched.
        self.flush()
        tmp_path = self.path + ".compact"
        try:
            with self.storage.open(tmp_path, "w") as tmp:
                tmp.write(json.dumps(
                    {"rec": "snapshot", "state": state.to_dict(),
                     "segment": self.segment + 1},
                    separators=(",", ":"),
                ) + "\n")
                self.storage.fsync(tmp)
            self._file.close()
            self.storage.replace(tmp_path, self.path)
        except OSError:
            # Failure anywhere leaves the old journal authoritative:
            # drop the temp attempt, make sure the append handle is
            # usable again, and surface the error un-counted (segment
            # and record_count describe the file that still exists).
            self.storage.remove(tmp_path)
            if getattr(self._file, "closed", False):
                self._file = self.storage.open(self.path, "a")
            raise
        self._file = self.storage.open(self.path, "a")
        self._appends_since_compact = 0
        self._unsynced = 0
        self.compactions += 1
        # Offsets taken against the old file are now meaningless:
        # followers behind this point catch up via the snapshot path.
        self.segment += 1
        self.record_count = 1

    def maybe_compact(self, state: JournalState) -> bool:
        """Compact if the tail has grown past ``compact_every`` appends."""
        if self.should_compact:
            self.compact(state)
            return True
        return False

    def rebuild(self, state: JournalState) -> None:
        """Start a fresh fsync'd segment from ``state`` (degraded resume).

        Unlike :meth:`compact`, the current journal tail is *not*
        flushed first — after a storage outage the tail is known-stale
        (appends were dropped while degraded) and the broken handle may
        not even accept a flush. The in-memory ``state`` is the
        authority; it is snapshotted to a temp file, fsynced, and
        atomically swapped over the stale journal.
        """
        if self._closed:
            raise JournalError("journal is closed")
        tmp_path = self.path + ".compact"
        try:
            with self.storage.open(tmp_path, "w") as tmp:
                tmp.write(json.dumps(
                    {"rec": "snapshot", "state": state.to_dict(),
                     "segment": self.segment + 1},
                    separators=(",", ":"),
                ) + "\n")
                self.storage.fsync(tmp)
            with contextlib.suppress(OSError, ValueError):
                self._file.close()
            self.storage.replace(tmp_path, self.path)
        except OSError:
            self.storage.remove(tmp_path)
            if getattr(self._file, "closed", False):
                with contextlib.suppress(OSError):
                    self._file = self.storage.open(self.path, "a")
            raise
        self._file = self.storage.open(self.path, "a")
        self._appends_since_compact = 0
        self._unsynced = 0
        self.segment += 1
        self.record_count = 1
        self.rebuilds += 1

    def close(self) -> None:
        if not self._closed:
            # Best-effort durability on the way out: a dying disk must
            # not leave the handle open/leaked behind a raised flush.
            with contextlib.suppress(OSError):
                self.flush()
            with contextlib.suppress(OSError, ValueError):
                self._file.close()
            self._closed = True

    # ------------------------------------------------------------------
    # Streaming replication (PROTOCOL.md §12)
    # ------------------------------------------------------------------
    def cursor(self) -> JournalCursor:
        """The current end-of-journal position (for a caught-up follower)."""
        return JournalCursor(segment=self.segment, offset=self.record_count)

    def read_since(self, cursor: JournalCursor) -> StreamBatch:
        """Records a follower at ``cursor`` is missing.

        Durability before visibility: the journal is flushed first, so a
        record a follower acknowledges can never be one the leader would
        lose in a crash (the replica would otherwise be *ahead* of its
        leader's own disk). A cursor from a compacted-away segment (or
        the null cursor) takes the catch-up snapshot path: the whole
        current file, flagged so the follower replaces its copy instead
        of appending.
        """
        if self._closed:
            raise JournalError("journal is closed")
        self.flush()
        records = list(self.read_records(self.path))
        if cursor.segment != self.segment or cursor.offset > len(records):
            return StreamBatch(
                records=records,
                cursor=JournalCursor(self.segment, len(records)),
                snapshot=True,
            )
        return StreamBatch(
            records=records[cursor.offset:],
            cursor=JournalCursor(self.segment, len(records)),
            snapshot=False,
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @staticmethod
    def read_records(path: str | os.PathLike[str]) -> Iterator[dict[str, Any]]:
        """Yield valid records up to the first corrupt/truncated line."""
        try:
            # A torn tail may hold arbitrary bytes; decode errors become
            # replacement characters, which fail JSON parsing and stop
            # the scan like any other corruption (instead of raising).
            handle = open(
                os.fspath(path), "r", encoding="utf-8", errors="replace"
            )
        except FileNotFoundError:
            return
        with handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                except ValueError:
                    return
                if not isinstance(record, dict) or "rec" not in record:
                    return
                yield record

    @classmethod
    def replay(cls, path: str | os.PathLike[str]) -> ReplayResult:
        """Fold snapshot + tail into a :class:`JournalState`.

        Stops at the first invalid line (longest-valid-prefix recovery);
        duplicate records fold idempotently, so an at-least-once writer
        is safe.
        """
        state = JournalState()
        result = ReplayResult(state=state)
        try:
            handle = open(
                os.fspath(path), "r", encoding="utf-8", errors="replace"
            )
        except FileNotFoundError:
            return result
        with handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                    if not isinstance(record, dict) or "rec" not in record:
                        raise ValueError("not a journal record")
                except ValueError:
                    result.truncated = True
                    result.bad_line = stripped[:120]
                    break
                state.apply(record)
                result.records += 1
        return result
