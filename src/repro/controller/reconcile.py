"""Anti-entropy reconciliation (PROTOCOL.md §10).

After a controller crash the journal restores *intent* (which graph each
OBI should run, by canonical digest) while the data plane kept running
*reality* (whatever was committed before the crash). This module closes
the gap the way replicated systems do it — periodic anti-entropy:

* every OBI advertises the digest and version of its running graph on
  ``Hello`` and every ``KeepAlive``;
* each reconciliation round compares that **reported** digest against
  the digest of the graph the controller would deploy right now
  (recomputed from the registered applications, not trusted from the
  journal — applications are the source of truth for intent);
* a matching digest is **converged** (or **adopted**, if the controller's
  bookkeeping lagged reality — e.g. right after recovery — which updates
  handles and the journal without any southbound push, so an already-
  correct OBI suffers no duplicate deploy side effects);
* a mismatch is **pushed** via the ordinary two-phase deploy;
* a push rejected with ``stale_generation`` flips the controller's
  ``superseded`` flag and stops the round — a newer controller owns the
  fleet and anti-entropy must not fight it.

Rounds are idempotent: once every OBI reports its intended digest,
further rounds do nothing, which is the convergence criterion
:meth:`AntiEntropyLoop.converged` checks and the chaos suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.graph import canonical_graph_digest
from repro.protocol.errors import ErrorCode, ProtocolError
from repro.transport.base import ChannelClosed

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.obc import OpenBoxController


@dataclass
class ReconcileReport:
    """What one anti-entropy round found and did."""

    at: float
    #: Every OBI examined this round.
    checked: list[str] = field(default_factory=list)
    #: Reported digest already matched intent, bookkeeping current.
    converged: list[str] = field(default_factory=list)
    #: Matched intent but controller bookkeeping lagged (post-recovery):
    #: adopted without a push.
    adopted: list[str] = field(default_factory=list)
    #: Mismatched: intended graph re-pushed.
    pushed: list[str] = field(default_factory=list)
    #: (obi_id, reason) for OBIs that could not be converged this round.
    failed: list[tuple[str, str]] = field(default_factory=list)
    #: True when a push was fenced off by a newer controller generation.
    superseded: bool = False

    @property
    def all_converged(self) -> bool:
        return not self.pushed and not self.failed and not self.superseded


class AntiEntropyLoop:
    """Periodic intended-vs-reported digest reconciliation.

    Drive :meth:`reconcile` from the orchestrator tick or any scheduler;
    :meth:`run_until_converged` iterates rounds for tests and recovery
    drills.
    """

    def __init__(self, controller: "OpenBoxController") -> None:
        self.controller = controller
        self.reports: list[ReconcileReport] = []

    # ------------------------------------------------------------------
    def _intended_digest(self, obi_id: str) -> str | None:
        """Digest of the graph that should run on ``obi_id`` (None: no
        applicable applications — nothing to reconcile)."""
        result = self.controller.compute_deployment(obi_id)
        if result is None:
            return None
        return canonical_graph_digest(result.graph.to_dict())

    def reconcile(self) -> ReconcileReport:
        """One anti-entropy round over every connected OBI."""
        report = ReconcileReport(at=self.controller.clock())
        if self.controller.superseded:
            report.superseded = True
            self.reports.append(report)
            return report
        for obi_id, handle in list(self.controller.obis.items()):
            report.checked.append(obi_id)
            if handle.reported_generation > self.controller.generation:
                # The OBI has already heard from a newer controller — we
                # are a fenced-out ghost. Stop the round *before* any
                # adopt or push: a ghost must not absorb a successor's
                # digests into its journal, let alone overwrite them.
                self.controller.superseded = True
                report.superseded = True
                report.failed.append(
                    (obi_id, f"reports generation {handle.reported_generation} "
                             f"> ours ({self.controller.generation})")
                )
                break
            try:
                intended = self._intended_digest(obi_id)
            except ProtocolError as exc:
                report.failed.append((obi_id, str(exc)))
                continue
            if intended is None:
                report.converged.append(obi_id)
                continue
            if handle.reported_digest == intended:
                if handle.intended_digest == intended and handle.deployed is not None:
                    report.converged.append(obi_id)
                    continue
                # Reality is right, bookkeeping is behind: adopt.
                try:
                    self.controller.reconcile_obi(obi_id)
                except (ChannelClosed, ProtocolError) as exc:
                    report.failed.append((obi_id, str(exc)))
                    continue
                report.adopted.append(obi_id)
                continue
            if handle.channel is None:
                report.failed.append((obi_id, "no channel"))
                continue
            try:
                self.controller.deploy(obi_id)
            except ProtocolError as exc:
                if exc.code == ErrorCode.STALE_GENERATION:
                    report.superseded = True
                    report.failed.append((obi_id, str(exc)))
                    break
                report.failed.append((obi_id, str(exc)))
                continue
            except ChannelClosed as exc:
                report.failed.append((obi_id, str(exc)))
                continue
            report.pushed.append(obi_id)
        self.reports.append(report)
        return report

    def run_until_converged(self, max_rounds: int = 10) -> list[ReconcileReport]:
        """Reconcile until a round changes nothing (or rounds run out)."""
        rounds: list[ReconcileReport] = []
        for _ in range(max_rounds):
            report = self.reconcile()
            rounds.append(report)
            if report.all_converged or report.superseded:
                break
        return rounds

    def converged(self) -> bool:
        """True when every connected OBI reports its intended digest."""
        for obi_id, handle in self.controller.obis.items():
            try:
                intended = self._intended_digest(obi_id)
            except ProtocolError:
                return False
            if intended is not None and handle.reported_digest != intended:
                return False
        return True
