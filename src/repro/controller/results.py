"""Typed results for the northbound handle API.

The original API was callback-unwrap style: applications passed an
``unwrap`` closure to :meth:`OpenBoxController.app_read` and mentally
reconstructed what the controller had done with cloned blocks. Since
both transports are synchronous RPC (the response to an application
request arrives before the call returns), that indirection bought
nothing — so the API is now synchronous and typed: each call returns a
result dataclass carrying the per-deployed-block values, any per-block
errors, and the wall-clock latency of the round trip. The callback form
survives as a thin deprecated shim on the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.protocol.messages import GlobalStatsResponse


@dataclass
class HandleError:
    """One failed handle operation against one deployed block."""

    obi_id: str
    block: str = ""
    handle: str = ""
    #: Protocol error code (``repro.protocol.errors.ErrorCode`` value).
    code: str = ""
    detail: str = ""

    def __str__(self) -> str:
        where = f"{self.obi_id}:{self.block}" if self.block else self.obi_id
        return f"{where} {self.code}: {self.detail}"


@dataclass
class HandleReadResult:
    """Outcome of reading one application block's handle on one OBI.

    Merging may have cloned the application's block; ``values`` maps
    each *deployed* block name to the value it returned, and
    :attr:`value` reproduces the old unwrap aggregation (single value /
    sum of numerics / list) for callers that don't care about clones.
    """

    app_name: str
    obi_id: str
    block: str
    handle: str
    values: dict[str, Any] = field(default_factory=dict)
    errors: list[HandleError] = field(default_factory=list)
    #: Wall-clock seconds for the full (all clones) round trip.
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.errors and bool(self.values)

    @property
    def value(self) -> Any:
        """Aggregated value across clones (the old callback argument).

        One clone returns its value directly; several numeric values sum
        (e.g. a per-branch Alert's ``count``); anything else returns the
        list of per-clone values in deployed-name order.
        """
        ordered = [self.values[name] for name in sorted(self.values)]
        if len(ordered) == 1:
            return ordered[0]
        if ordered and all(isinstance(value, (int, float)) for value in ordered):
            return sum(ordered)
        return ordered


@dataclass
class HandleWriteResult:
    """Outcome of writing one application block's handle on one OBI."""

    app_name: str
    obi_id: str
    block: str
    handle: str
    #: Deployed block names successfully written.
    written: list[str] = field(default_factory=list)
    errors: list[HandleError] = field(default_factory=list)
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.errors and bool(self.written)


@dataclass
class AppStatsView:
    """Outcome of an application's GlobalStats request against one OBI."""

    app_name: str
    obi_id: str
    stats: GlobalStatsResponse | None = None
    error: HandleError | None = None
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        return self.stats is not None and self.error is None
