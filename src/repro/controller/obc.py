"""The OpenBox controller (OBC) core.

Responsibilities (paper §3.3):

* accept OBI connections (Hello handshake), track capabilities;
* determine which application graphs apply to each OBI, merge them with
  the graph-merge algorithm, and deploy the merged graph;
* demultiplex upstream events (alerts by origin application, keepalives
  to the stats tracker, responses by transaction id);
* serve the northbound API: application registration, read/write
  requests with callbacks, stats requests, redeployment on logic change.
"""

from __future__ import annotations

import collections
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable

from repro.controller.aggregator import AggregationResult, GraphAggregator
from repro.controller.apps import OpenBoxApplication
from repro.controller.journal import JournalState, ReplayResult, StateJournal
from repro.controller.results import (
    AppStatsView,
    HandleError,
    HandleReadResult,
    HandleWriteResult,
)
from repro.controller.segments import SegmentHierarchy
from repro.controller.stats import ObiStatsTracker
from repro.controller.xid import RequestMultiplexer
from repro.core.graph import canonical_graph_digest
from repro.core.merge import MergePolicy
from repro.durable import Storage
from repro.observability.metrics import default_registry
from repro.protocol.codec import PROTOCOL_VERSION
from repro.transport.base import ChannelClosed
from repro.protocol.errors import ErrorCode, ProtocolError
from repro.protocol.messages import (
    Alert,
    ErrorMessage,
    GlobalStatsRequest,
    GlobalStatsResponse,
    HealthReport,
    Hello,
    HelloResponse,
    KeepAlive,
    LogMessage,
    Message,
    ObservabilitySnapshotResponse,
    ReadRequest,
    ReadResponse,
    SetProcessingGraphRequest,
    SetProcessingGraphResponse,
    TelemetryAck,
    TelemetryStream,
    TelemetrySubscribe,
    WriteRequest,
    WriteResponse,
    advance_xids,
    xid_watermark,
)
from repro.telemetry.bus import TelemetryBus, Watch


@dataclass
class ObiHandle:
    """The controller's record of one connected OBI."""

    obi_id: str
    segment: str
    capabilities: dict[str, list[str]]
    channel: Any
    supports_custom_modules: bool = False
    capacity_hint: float = 1.0
    callback_url: str = ""
    deployed: AggregationResult | None = None
    connected_at: float = 0.0
    #: Deployment generation, bumped on every successful SetProcessingGraph.
    generation: int = 0
    #: Canonical digest of the graph the controller intends this OBI to
    #: run (journaled; the anti-entropy loop's "should be" side).
    intended_digest: str = ""
    #: What the OBI last claimed to be running (Hello/KeepAlive/deploy
    #: response) — the anti-entropy loop's "is" side.
    reported_digest: str = ""
    reported_graph_version: int = 0
    #: Highest controller generation the OBI acknowledged seeing.
    reported_generation: int = 0


class OpenBoxController:
    """A logically-centralized OpenBox controller."""

    #: Origin stamped on controller-generated alerts (deploy failures).
    CONTROLLER_ORIGIN = "_controller"

    def __init__(
        self,
        merge_policy: MergePolicy | None = None,
        clock: Callable[[], float] | None = None,
        auto_deploy: bool = True,
        max_deploy_failures: int = 100,
        journal: StateJournal | None = None,
    ) -> None:
        self.clock = clock or time.monotonic
        self.segments = SegmentHierarchy()
        self.aggregator = GraphAggregator(self.segments, merge_policy)
        self.mux = RequestMultiplexer()
        # Forgetting an OBI sweeps its pending xid requests; liveness
        # math rides the same injectable monotonic clock as everything
        # else, never the wall clock.
        self.stats = ObiStatsTracker(mux=self.mux, clock=self.clock)
        self.applications: dict[str, OpenBoxApplication] = {}
        self.obis: dict[str, ObiHandle] = {}
        self.auto_deploy = auto_deploy
        self.alerts: list[Alert] = []
        self.logs: list[LogMessage] = []
        #: Split-brain fencing epoch: bumped (durably, before any message
        #: is sent) every time a controller recovers from a journal, so
        #: OBIs can reject a stale predecessor's pushes.
        self.generation = 1
        #: Set when a peer rejected us as stale (another controller with
        #: a higher generation owns the fleet) — stop pushing.
        self.superseded = False
        #: OBIs the journal says existed before a crash, keyed by obi_id:
        #: {"segment", "callback_url", "digest", "graph_version"}. Moved
        #: into live handles as each OBI re-establishes contact.
        self.expected_obis: dict[str, dict[str, Any]] = {}
        #: Replay diagnostics from :meth:`recover` (None on fresh start).
        self.recovered_from: ReplayResult | None = None
        self.recovery_warnings: list[str] = []
        self.journal = journal
        #: True while in journaled-read-only degraded mode: the journal
        #: storage refused a write, so state-mutating southbound pushes
        #: are fenced (OBIs keep forwarding on headless semantics) until
        #: :meth:`try_resume_journal` rebuilds a fresh durable segment.
        self.degraded = False
        self.degraded_since = 0.0
        #: Journal records shed while degraded (drop accounting; the
        #: rebuilt segment snapshots live state, so nothing is lost).
        self.journal_dropped_records = 0
        #: Successful returns from degraded mode.
        self.journal_resumes = 0
        #: Bounded audit of deploy rejections (obi_id, detail); the full
        #: count lives in :attr:`failed_deployments`.
        self.deploy_failures: collections.deque[tuple[str, str]] = collections.deque(
            maxlen=max_deploy_failures
        )
        self.failed_deployments = 0
        #: Consecutive deploy failures per OBI, reset on success; the
        #: orchestrator's failover stage treats a persistently failing
        #: instance like a dead one.
        self.consecutive_deploy_failures: dict[str, int] = {}
        # Control-plane loop metrics on the process-wide registry (the
        # controller has no per-OBI registry; per-OBI series arrive via
        # ObservabilitySnapshot pulls instead).
        registry = default_registry()
        self._m_deploys = registry.counter("controller_deployments_total")
        self._m_deploy_failures = registry.counter(
            "controller_deploy_failures_total"
        )
        self._m_alerts = registry.counter("controller_alerts_received_total")
        self._m_stats_polls = registry.counter("controller_stats_polls_total")
        self._m_obsv_polls = registry.counter(
            "controller_observability_polls_total"
        )
        self._m_app_requests = registry.counter("controller_app_requests_total")
        self._m_deploy_latency = registry.histogram("controller_deploy_seconds")
        #: Streaming telemetry (PROTOCOL.md §13): pushed TelemetryStream
        #: batches fold here; watch()/subscribe() fan matching events out
        #: to northbound consumers without any polling sweep.
        self.telemetry = TelemetryBus()
        #: Per-OBI subscription parameters the controller asked for
        #: (window/topics), echoed back in every ack.
        self._telemetry_subscriptions: dict[str, dict[str, Any]] = {}
        #: Pending NACK rewinds (obi_id -> cursor): the next pushed batch
        #: from that OBI is refused and its cursor rewound — the ops/test
        #: hook for forcing an at-least-once replay.
        self._pending_nacks: dict[str, int] = {}
        self._m_streams = registry.counter("controller_telemetry_streams_total")
        self._m_stream_records = registry.counter(
            "controller_telemetry_records_total"
        )
        if journal is not None:
            # A fresh journaled controller durably claims generation 1.
            # (Last in __init__: a storage failure here lands on the
            # fully-wired degraded path, not a half-built object.)
            self._journal(
                {"rec": "generation", "generation": self.generation}, flush=True
            )

    # ------------------------------------------------------------------
    # Durable state (PROTOCOL.md §10)
    # ------------------------------------------------------------------
    def _journal(self, record: dict[str, Any], flush: bool = False) -> None:
        """Append a record to the journal (no-op when not journaling).

        A storage failure (ENOSPC, EIO, a dead handle) does **not**
        crash the control loop: the controller enters journaled-read-only
        degraded mode — the record is shed (counted), deploys are fenced,
        and a ``_controller`` alert fires. Nothing is ultimately lost:
        :meth:`try_resume_journal` rebuilds the journal from live state
        once storage heals.
        """
        if self.journal is None:
            return
        if self.degraded:
            self.journal_dropped_records += 1
            return
        try:
            self.journal.append(record)
            if flush:
                self.journal.flush()
            self.journal.maybe_compact(self._journal_state())
        except (OSError, ValueError) as exc:
            # ValueError covers writes through a handle a failed compact
            # had to close; both mean the same thing — storage is gone.
            self.journal_dropped_records += 1
            self._enter_degraded(str(exc) or type(exc).__name__)

    def _enter_degraded(self, detail: str) -> None:
        """Shed to journaled-read-only mode and raise the operator alert."""
        if self.degraded:
            return
        self.degraded = True
        self.degraded_since = self.clock()
        self._handle_alert(Alert(
            obi_id="",
            origin_app=self.CONTROLLER_ORIGIN,
            message=(
                f"journal storage failed ({detail}); controller entering "
                "journaled-read-only degraded mode — deploys fenced, OBIs "
                "continue on headless semantics until storage heals"
            ),
            severity="critical",
        ))

    def try_resume_journal(self) -> bool:
        """Attempt to leave degraded mode (called from the orchestrator).

        One successful :meth:`StateJournal.rebuild` — a fresh fsync'd
        segment snapshotting the *live* controller state, which absorbed
        every record shed while degraded — makes the journal whole and
        lifts the deploy fence. Returns True when no longer degraded.
        """
        if not self.degraded:
            return True
        if self.journal is None:
            self.degraded = False
            return True
        try:
            self.journal.rebuild(self._journal_state())
        except OSError:
            return False
        self.degraded = False
        self.journal_resumes += 1
        self._handle_alert(Alert(
            obi_id="",
            origin_app=self.CONTROLLER_ORIGIN,
            message=(
                "journal storage healed; rebuilt as fresh segment "
                f"{self.journal.segment} ({self.journal_dropped_records} "
                "records shed while degraded, state re-snapshotted)"
            ),
            severity="info",
        ))
        return True

    def _journal_state(self) -> JournalState:
        """The controller's current logical state, for compaction."""
        state = JournalState(generation=self.generation)
        state.apps = {
            name: {"priority": app.priority}
            for name, app in self.applications.items()
        }
        state.segments = self.segments.all_paths()
        for obi_id, handle in self.obis.items():
            state.obis[obi_id] = {
                "segment": handle.segment,
                "callback_url": handle.callback_url,
                "digest": handle.intended_digest,
                "graph_version": handle.generation,
            }
        for obi_id, info in self.expected_obis.items():
            state.obis.setdefault(obi_id, dict(info))
        state.xid_high = xid_watermark()
        return state

    def close(self) -> None:
        """Flush and close the journal (a SIGKILL never gets to call
        this — that is what replay is for — but clean shutdowns should)."""
        if self.journal is not None:
            self.journal.close()

    @classmethod
    def recover(
        cls,
        path: str,
        applications: list[OpenBoxApplication] | tuple = (),
        merge_policy: MergePolicy | None = None,
        clock: Callable[[], float] | None = None,
        auto_deploy: bool = True,
        fsync_every: int = 8,
        compact_every: int = 256,
        storage: "Storage | None" = None,
    ) -> "OpenBoxController":
        """Rebuild a controller from its journal after a crash.

        Replays snapshot + tail (longest valid prefix), restores segment
        topology and per-OBI intended state, advances the xid allocator
        past the journaled high-watermark, durably bumps the controller
        generation *before* anything is sent (split-brain fencing), and
        re-registers the supplied application objects (code cannot live
        in a journal — the journal only validates the set by name).

        OBIs are *not* contacted here: they reappear in ``self.obis`` as
        they re-Hello (or are re-dialed via their journaled callback
        URLs), and the anti-entropy loop converges each one — adopting
        its reported graph when it already matches intent, re-pushing
        when it does not.
        """
        replay = StateJournal.replay(path)
        state = replay.state
        controller = cls(
            merge_policy=merge_policy,
            clock=clock,
            auto_deploy=auto_deploy,
        )
        controller.recovered_from = replay
        controller.generation = state.generation + 1
        advance_xids(state.xid_high)
        for segment_path in state.segments:
            controller.segments.add(segment_path)
        controller.expected_obis = {
            obi_id: dict(info) for obi_id, info in state.obis.items()
        }
        # Fence the new generation durably before any message goes out.
        controller.journal = StateJournal(
            path, fsync_every=fsync_every, compact_every=compact_every,
            storage=storage,
        )
        controller._journal(
            {"rec": "generation", "generation": controller.generation,
             "xid_high": xid_watermark()},
            flush=True,
        )
        # Re-register application code; deployment waits for reconnects.
        previous_auto = controller.auto_deploy
        controller.auto_deploy = False
        supplied: set[str] = set()
        for app in applications:
            controller.register_application(app)
            supplied.add(app.name)
        controller.auto_deploy = previous_auto
        for missing in sorted(set(state.apps) - supplied):
            controller.recovery_warnings.append(
                f"journal names application {missing!r} but it was not "
                "supplied to recover(); its graphs will not be deployed"
            )
        for extra in sorted(supplied - set(state.apps)):
            controller.recovery_warnings.append(
                f"application {extra!r} was not in the journal; treating "
                "it as newly registered"
            )
        if replay.truncated:
            controller.recovery_warnings.append(
                f"journal tail was corrupt ({replay.bad_line!r}); recovered "
                f"the longest valid prefix ({replay.records} records)"
            )
        return controller

    def adopt_epoch(self, epoch: int) -> None:
        """Adopt a lease epoch as the controller generation (§12).

        For lease-managed controllers the store-minted epoch *is* the
        fencing token OBIs check, so a freshly promoted standby raises
        its generation to the lease epoch — journaled and fsynced
        before returning, i.e. before any OBI can see a message
        stamped with it. Adopting an epoch at or below the current
        generation is a no-op (a renewal never moves the fence).
        """
        if epoch <= self.generation:
            return
        self.generation = int(epoch)
        self._journal(
            {"rec": "generation", "generation": self.generation,
             "xid_high": xid_watermark()},
            flush=True,
        )

    @property
    def epoch(self) -> int:
        """Alias: the generation viewed as a lease epoch (§12)."""
        return self.generation

    # ------------------------------------------------------------------
    # Northbound: application management
    # ------------------------------------------------------------------
    def register_application(self, app: OpenBoxApplication) -> None:
        if app.name in self.applications:
            raise ValueError(f"application {app.name!r} already registered")
        for statement in app.statements():
            # Scope sanity at registration time: a statement naming a
            # segment no current or future OBI of the known topology can
            # fall under would silently match nothing forever — fail
            # loudly instead. An empty hierarchy declines to judge
            # (registering apps before any OBI connects is supported).
            if statement.segment and not self.segments.could_match(
                statement.segment
            ):
                raise ValueError(
                    f"application {app.name!r} statement scopes segment "
                    f"{statement.segment!r}, which matches no known segment "
                    f"(known: {self.segments.all_paths() or ['<none>']}); "
                    "declare it with segments.add() first"
                )
        self.applications[app.name] = app
        app.controller = self
        self._journal({
            "rec": "app", "op": "register",
            "name": app.name, "priority": app.priority,
        })
        app.on_start(self)
        if self.auto_deploy:
            self.redeploy_all()

    def unregister_application(self, name: str) -> None:
        app = self.applications.pop(name, None)
        if app is not None:
            app.controller = None
            self._journal({"rec": "app", "op": "unregister", "name": name})
            if self.auto_deploy:
                self.redeploy_all()

    def redeploy_app(self, app: OpenBoxApplication) -> None:
        """An application's logic changed; redeploy affected OBIs."""
        for handle in self.obis.values():
            if any(
                statement.applies_to(handle.obi_id, handle.segment, self.segments)
                for statement in app.statements()
            ):
                self.deploy(handle.obi_id)

    # ------------------------------------------------------------------
    # Southbound: OBI lifecycle
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> Message | None:
        """Entry point for everything arriving from the data plane."""
        try:
            return self._dispatch(message)
        except ProtocolError as exc:
            return ErrorMessage(xid=message.xid, code=exc.code, detail=exc.detail)

    def _dispatch(self, message: Message) -> Message | None:
        if isinstance(message, Hello):
            return self._handle_hello(message)
        if isinstance(message, KeepAlive):
            self.stats.record_keepalive(message.obi_id, self.clock())
            handle = self.obis.get(message.obi_id)
            if handle is not None:
                handle.reported_digest = message.graph_digest
                handle.reported_graph_version = message.graph_version
                handle.reported_generation = max(
                    handle.reported_generation, message.controller_generation
                )
                if message.controller_generation > self.generation:
                    self.superseded = True
            return None
        if isinstance(message, Alert):
            self._handle_alert(message)
            return None
        if isinstance(message, HealthReport):
            self.stats.record_health(message, self.clock())
            handle = self.obis.get(message.obi_id)
            if handle is not None and message.graph_digest:
                handle.reported_digest = message.graph_digest
            return None
        if isinstance(message, LogMessage):
            self.logs.append(message)
            return None
        if isinstance(message, TelemetryStream):
            return self._handle_telemetry_stream(message)
        # Anything else is a response to an app-initiated request.
        if self.mux.dispatch(message):
            return None
        raise ProtocolError(
            ErrorCode.UNKNOWN_MESSAGE,
            f"controller cannot handle unsolicited {message.TYPE}",
        )

    def _handle_hello(self, hello: Hello) -> Message:
        if hello.version.split(".")[0] != PROTOCOL_VERSION.split(".")[0]:
            raise ProtocolError(
                ErrorCode.UNSUPPORTED_VERSION,
                f"OBI speaks {hello.version}, controller speaks {PROTOCOL_VERSION}",
            )
        if hello.controller_generation > self.generation:
            # The OBI has already obeyed a newer controller: this one is
            # the stale side of a split brain. Record it and stand down.
            self.superseded = True
        handle = ObiHandle(
            obi_id=hello.obi_id,
            segment=hello.segment,
            capabilities=hello.capabilities,
            channel=None,
            supports_custom_modules=hello.supports_custom_modules,
            capacity_hint=hello.capacity_hint,
            callback_url=hello.callback_url,
            connected_at=self.clock(),
            reported_digest=hello.graph_digest,
            reported_graph_version=hello.graph_version,
            reported_generation=hello.controller_generation,
        )
        existing = self.obis.get(hello.obi_id)
        if existing is not None:
            handle.channel = existing.channel
            handle.deployed = existing.deployed
            handle.intended_digest = existing.intended_digest
            handle.generation = existing.generation
        expected = self.expected_obis.pop(hello.obi_id, None)
        if expected is not None:
            # A journaled OBI coming back after our crash: restore the
            # pre-crash intent so anti-entropy can judge convergence.
            handle.intended_digest = expected.get("digest", "")
            handle.generation = int(expected.get("graph_version", 0))
        self.obis[hello.obi_id] = handle
        self.segments.add(hello.segment)
        self._journal({"rec": "segment", "path": hello.segment})
        self._journal({
            "rec": "obi", "obi_id": hello.obi_id,
            "segment": hello.segment, "callback_url": hello.callback_url,
            "xid_high": xid_watermark(),
        }, flush=True)
        self.stats.register(hello.obi_id, self.clock())
        for app in self.applications.values():
            app.on_obi_connected(hello.obi_id)
        if self.auto_deploy and handle.channel is not None:
            self.reconcile_obi(hello.obi_id)
        return HelloResponse(
            xid=hello.xid,
            ok=True,
            detail="hello ack",
            controller_generation=self.generation,
        )

    def connect_obi(self, obi_id: str, channel: Any) -> None:
        """Bind the downstream channel for an OBI (after its Hello).

        With the in-process transport the same channel carries both
        directions; with REST this is a RestPeerChannel to the OBI's
        callback URL.
        """
        handle = self._handle_of(obi_id)
        handle.channel = channel
        if self.auto_deploy:
            self.reconcile_obi(obi_id)

    def disconnect_obi(self, obi_id: str) -> None:
        if self.obis.pop(obi_id, None) is not None:
            for app in self.applications.values():
                app.on_obi_disconnected(obi_id)
            self._journal({"rec": "obi_forgotten", "obi_id": obi_id})
        self.stats.forget(obi_id)

    def _handle_of(self, obi_id: str) -> ObiHandle:
        handle = self.obis.get(obi_id)
        if handle is None:
            raise ProtocolError(ErrorCode.NOT_CONNECTED, f"unknown OBI {obi_id!r}")
        return handle

    def _handle_alert(self, alert: Alert) -> None:
        """Demultiplex an alert to its originating application (§6)."""
        self.alerts.append(alert)
        self._m_alerts.inc()
        app = self.applications.get(alert.origin_app)
        if app is not None:
            app.on_alert(alert)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def compute_deployment(self, obi_id: str) -> AggregationResult | None:
        """The merged graph that should run on ``obi_id`` right now."""
        handle = self._handle_of(obi_id)
        return self.aggregator.aggregate(
            list(self.applications.values()), handle.obi_id, handle.segment
        )

    def _record_deploy_failure(self, obi_id: str, detail: str) -> None:
        """Track a failed deployment and surface it on the alert path."""
        self.deploy_failures.append((obi_id, detail))
        self.failed_deployments += 1
        self._m_deploy_failures.inc()
        self.consecutive_deploy_failures[obi_id] = (
            self.consecutive_deploy_failures.get(obi_id, 0) + 1
        )
        self._handle_alert(Alert(
            obi_id=obi_id,
            origin_app=self.CONTROLLER_ORIGIN,
            message=f"deployment to {obi_id!r} failed: {detail}",
            severity="error",
        ))

    def deploy(self, obi_id: str) -> AggregationResult | None:
        """Merge and push the applicable graphs to one OBI."""
        if self.degraded:
            # Journaled-read-only: a deploy the journal cannot record is
            # a deploy a recovered controller would not know about —
            # exactly the intent-divergence the journal exists to
            # prevent. OBIs keep forwarding on what they already run.
            raise ProtocolError(
                ErrorCode.DEGRADED,
                f"deploy to {obi_id!r} fenced: controller is in "
                "journaled-read-only degraded mode (journal storage "
                "failed); will resume when storage heals",
            )
        handle = self._handle_of(obi_id)
        if handle.channel is None:
            raise ProtocolError(ErrorCode.NOT_CONNECTED, f"OBI {obi_id!r} has no channel")
        result = self.compute_deployment(obi_id)
        if result is None:
            return None
        graph_dict = result.graph.to_dict()
        digest = canonical_graph_digest(graph_dict)
        started = self.clock()
        try:
            response = handle.channel.request(SetProcessingGraphRequest(
                graph=graph_dict,
                controller_generation=self.generation,
                graph_digest=digest,
            ))
        except ChannelClosed as exc:
            self._record_deploy_failure(obi_id, f"channel failed: {exc}")
            raise ProtocolError(
                ErrorCode.NOT_CONNECTED, f"OBI {obi_id!r} unreachable: {exc}"
            ) from exc
        finally:
            self._m_deploy_latency.observe(self.clock() - started)
        if isinstance(response, SetProcessingGraphResponse) and response.ok:
            handle.deployed = result
            handle.generation += 1
            handle.intended_digest = digest
            handle.reported_digest = response.graph_digest or digest
            handle.reported_graph_version = (
                response.graph_version or handle.generation
            )
            handle.reported_generation = max(
                handle.reported_generation, self.generation
            )
            self.consecutive_deploy_failures.pop(obi_id, None)
            self._m_deploys.inc()
            self._journal({
                "rec": "deploy", "obi_id": obi_id, "digest": digest,
                "graph_version": handle.generation,
                "xid_high": xid_watermark(),
            }, flush=True)
            return result
        code = str(getattr(response, "code", ""))
        if code == ErrorCode.STALE_GENERATION:
            # The OBI has obeyed a newer controller; we are the stale
            # side of a split brain. Record it and stop claiming the
            # fleet — do not count this as an OBI-side deploy failure.
            self.superseded = True
            raise ProtocolError(
                ErrorCode.STALE_GENERATION,
                f"OBI {obi_id!r} rejected generation {self.generation}: "
                f"{getattr(response, 'detail', '')}",
            )
        detail = getattr(response, "detail", "") or code
        self._record_deploy_failure(obi_id, str(detail))
        raise ProtocolError(
            ErrorCode.INVALID_GRAPH, f"OBI {obi_id!r} rejected graph: {detail}"
        )

    def reconcile_obi(self, obi_id: str) -> AggregationResult | None:
        """Converge one OBI on the intended graph (anti-entropy primitive).

        Computes what *should* run, then compares canonical digests: if
        the OBI already reports exactly that graph (e.g. it kept serving
        headless across a controller crash), the deployment is **adopted**
        — controller-side bookkeeping and the journal are updated with no
        southbound push, so recovery causes no duplicate deploy side
        effects. Otherwise it falls through to a normal :meth:`deploy`.
        """
        handle = self._handle_of(obi_id)
        result = self.compute_deployment(obi_id)
        if result is None:
            return None
        digest = canonical_graph_digest(result.graph.to_dict())
        if handle.reported_digest and handle.reported_digest == digest:
            handle.deployed = result
            handle.intended_digest = digest
            if handle.generation == 0:
                handle.generation = max(1, handle.reported_graph_version)
            self._journal({
                "rec": "deploy", "obi_id": obi_id, "digest": digest,
                "graph_version": handle.generation,
                "xid_high": xid_watermark(),
            }, flush=True)
            return result
        return self.deploy(obi_id)

    def redeploy_all(self) -> None:
        """Deploy to every connected OBI; one failing OBI (recorded via
        the deploy-failure path) must not block deployment to the rest."""
        errors: list[ProtocolError] = []
        for obi_id, handle in list(self.obis.items()):
            if handle.channel is not None:
                try:
                    self.deploy(obi_id)
                except ProtocolError as exc:
                    errors.append(exc)
        if errors and len(errors) == sum(
            1 for h in self.obis.values() if h.channel is not None
        ):
            # Every single OBI refused: the new application logic itself
            # is bad — surface it to the registering caller.
            raise errors[0]

    # ------------------------------------------------------------------
    # Northbound: application-initiated requests (multiplexed, §4.1)
    # ------------------------------------------------------------------
    def _send_request(
        self,
        app: OpenBoxApplication,
        obi_id: str,
        message: Message,
        callback: Callable[[Message], None] | None,
        error_callback: Callable[[ErrorMessage], None] | None = None,
    ) -> None:
        handle = self._handle_of(obi_id)
        if handle.channel is None:
            raise ProtocolError(ErrorCode.NOT_CONNECTED, f"OBI {obi_id!r} has no channel")
        if callback is not None:
            self.mux.register(
                message.xid, app.name, callback, self.clock(),
                error_callback=error_callback,
                obi_id=obi_id,
            )
        try:
            response = handle.channel.request(message)
        except ChannelClosed as exc:
            # Fail the pending entry immediately (fires the app's error
            # callback) instead of leaking it until expiry.
            if callback is not None:
                self.mux.dispatch(ErrorMessage(
                    xid=message.xid,
                    code=ErrorCode.NOT_CONNECTED,
                    detail=f"OBI {obi_id!r} unreachable: {exc}",
                ))
            raise ProtocolError(
                ErrorCode.NOT_CONNECTED, f"OBI {obi_id!r} unreachable: {exc}"
            ) from exc
        # The transports are synchronous RPC, so the response arrives
        # immediately; route it through the demultiplexer exactly as an
        # asynchronously delivered response would be.
        if callback is not None:
            self.mux.dispatch(response)

    def resolve_blocks(self, app_name: str, obi_id: str, block: str) -> list[str]:
        """Deployed block names realizing application block ``block``.

        Merging renames (and may clone) application blocks, so requests
        are routed via each deployed block's ``origin_block``/``origin_app``
        provenance. A block merged *across* applications (e.g. a
        cross-product classifier) is no longer individually addressable —
        by design, since its state belongs to several tenants (paper §6).
        """
        handle = self._handle_of(obi_id)
        if handle.deployed is None:
            return []
        graph = handle.deployed.graph
        if block in graph.blocks and graph.blocks[block].origin_app == app_name:
            return [block]
        return [
            deployed.name for deployed in graph.blocks.values()
            if deployed.origin_block == block and deployed.origin_app == app_name
        ]

    def _resolve_targets(
        self, app: OpenBoxApplication, obi_id: str, block: str
    ) -> tuple[ObiHandle, list[str]]:
        """Channel + deployed clone names for an app's block, or raise."""
        targets = self.resolve_blocks(app.name, obi_id, block)
        if not targets:
            raise ProtocolError(
                ErrorCode.UNKNOWN_BLOCK,
                f"application {app.name!r} has no deployed block {block!r} on {obi_id!r}",
            )
        handle = self._handle_of(obi_id)
        if handle.channel is None:
            raise ProtocolError(
                ErrorCode.NOT_CONNECTED, f"OBI {obi_id!r} has no channel"
            )
        return handle, targets

    def app_read(
        self,
        app: OpenBoxApplication,
        obi_id: str,
        block: str,
        handle_name: str,
    ) -> HandleReadResult:
        """Read a handle on an application's block; returns a typed result.

        If merging cloned the block, ``result.values`` holds every
        clone's value and ``result.value`` aggregates them (single value
        / sum of numerics / list). Per-clone failures land in
        ``result.errors`` instead of raising.
        """
        obi, targets = self._resolve_targets(app, obi_id, block)
        self._m_app_requests.inc()
        started = self.clock()
        result = HandleReadResult(
            app_name=app.name, obi_id=obi_id, block=block, handle=handle_name
        )
        for target in targets:
            try:
                response = obi.channel.request(
                    ReadRequest(block=target, handle=handle_name)
                )
            except ChannelClosed as exc:
                result.errors.append(HandleError(
                    obi_id=obi_id,
                    block=target,
                    handle=handle_name,
                    code=ErrorCode.NOT_CONNECTED,
                    detail=str(exc),
                ))
                continue
            if isinstance(response, ReadResponse):
                result.values[target] = response.value
            else:
                result.errors.append(HandleError(
                    obi_id=obi_id,
                    block=target,
                    handle=handle_name,
                    code=getattr(response, "code", ErrorCode.INTERNAL_ERROR),
                    detail=getattr(response, "detail", f"unexpected {response.TYPE}"),
                ))
        result.latency = self.clock() - started
        return result

    def app_write(
        self,
        app: OpenBoxApplication,
        obi_id: str,
        block: str,
        handle_name: str,
        value: Any,
    ) -> HandleWriteResult:
        """Write a handle on an application's block (all deployed clones)."""
        obi, targets = self._resolve_targets(app, obi_id, block)
        self._m_app_requests.inc()
        started = self.clock()
        result = HandleWriteResult(
            app_name=app.name, obi_id=obi_id, block=block, handle=handle_name
        )
        for target in targets:
            try:
                response = obi.channel.request(
                    WriteRequest(block=target, handle=handle_name, value=value)
                )
            except ChannelClosed as exc:
                result.errors.append(HandleError(
                    obi_id=obi_id,
                    block=target,
                    handle=handle_name,
                    code=ErrorCode.NOT_CONNECTED,
                    detail=str(exc),
                ))
                continue
            if isinstance(response, WriteResponse):
                if response.ok:
                    result.written.append(target)
                else:
                    result.errors.append(HandleError(
                        obi_id=obi_id,
                        block=target,
                        handle=handle_name,
                        code=ErrorCode.HANDLE_NOT_WRITABLE,
                        detail="OBI refused the write",
                    ))
            else:
                result.errors.append(HandleError(
                    obi_id=obi_id,
                    block=target,
                    handle=handle_name,
                    code=getattr(response, "code", ErrorCode.INTERNAL_ERROR),
                    detail=getattr(response, "detail", f"unexpected {response.TYPE}"),
                ))
        result.latency = self.clock() - started
        return result

    def app_stats(
        self,
        app: OpenBoxApplication,
        obi_id: str,
    ) -> AppStatsView:
        """Fetch GlobalStats for an application; returns a typed view.

        Success is also recorded on the stats tracker and delivered to
        the app's ``on_stats`` hook.
        """
        handle = self._handle_of(obi_id)
        if handle.channel is None:
            raise ProtocolError(
                ErrorCode.NOT_CONNECTED, f"OBI {obi_id!r} has no channel"
            )
        self._m_app_requests.inc()
        started = self.clock()
        view = AppStatsView(app_name=app.name, obi_id=obi_id)
        try:
            response = handle.channel.request(GlobalStatsRequest())
        except ChannelClosed as exc:
            view.error = HandleError(
                obi_id=obi_id, code=ErrorCode.NOT_CONNECTED, detail=str(exc)
            )
            view.latency = self.clock() - started
            return view
        view.latency = self.clock() - started
        if isinstance(response, GlobalStatsResponse):
            view.stats = response
            self.stats.record_stats(response, self.clock())
            app.on_stats(response)
        else:
            view.error = HandleError(
                obi_id=obi_id,
                code=getattr(response, "code", ErrorCode.INTERNAL_ERROR),
                detail=getattr(response, "detail", f"unexpected {response.TYPE}"),
            )
        return view

    # ------------------------------------------------------------------
    # Controller-initiated statistics polling
    # ------------------------------------------------------------------
    def poll_stats(self, obi_id: str) -> GlobalStatsResponse | None:
        """Fetch and record GlobalStats from one OBI."""
        handle = self._handle_of(obi_id)
        if handle.channel is None:
            return None
        self._m_stats_polls.inc()
        response = handle.channel.request(GlobalStatsRequest())
        if isinstance(response, GlobalStatsResponse):
            self.stats.record_stats(response, self.clock())
            return response
        return None

    def health(self, obi_id: str) -> HealthReport | None:
        """Latest data-plane health beacon received from ``obi_id``."""
        view = self.stats.view(obi_id)
        return view.last_health if view is not None else None

    # ------------------------------------------------------------------
    # Streaming telemetry (PROTOCOL.md §13)
    # ------------------------------------------------------------------
    def _handle_telemetry_stream(self, stream: TelemetryStream) -> Message:
        """Fold one pushed batch; the response is the ack (or a fence).

        A stream stamped with an epoch below this controller's
        generation was opened by a deposed predecessor — it is refused
        ``stale_generation`` so the OBI tears the subscription down
        (the live controller re-subscribes under its own epoch).
        """
        if stream.epoch and stream.epoch < self.generation:
            return TelemetryAck(
                xid=stream.xid,
                subscriber=stream.subscriber,
                ok=False,
                cursor=0,
                error=ErrorCode.STALE_GENERATION,
            )
        if stream.epoch > self.generation:
            # The OBI subscribed under a newer controller: we are the
            # stale side. Record it; the data itself is still folded.
            self.superseded = True
        rewind = self._pending_nacks.pop(stream.obi_id, None)
        if rewind is not None:
            self.telemetry.reset(stream.obi_id, rewind)
            return TelemetryAck(
                xid=stream.xid,
                subscriber=stream.subscriber,
                ok=False,
                cursor=rewind,
            )
        handle = self.obis.get(stream.obi_id)
        segment = handle.segment if handle is not None else ""
        folded = self.telemetry.apply_stream(stream, segment=segment)
        self._m_streams.inc()
        self._m_stream_records.inc(folded)
        snapshot = self.telemetry.snapshot_response(stream.obi_id)
        if snapshot is not None:
            # Feed the existing per-OBI stats views incrementally —
            # push replaces the poll sweep without changing consumers.
            self.stats.record_observability(snapshot, self.clock())
        subscription = self._telemetry_subscriptions.get(stream.obi_id, {})
        return TelemetryAck(
            xid=stream.xid,
            subscriber=stream.subscriber,
            ok=True,
            cursor=self.telemetry.last_seq(stream.obi_id),
            window=int(subscription.get("window", 64)),
        )

    def subscribe_telemetry(
        self,
        obi_id: str,
        topics: list[str] | None = None,
        window: int = 64,
        cursor: int | None = None,
        drain: bool = False,
    ) -> TelemetryStream | None:
        """Open (or refresh) the telemetry subscription on one OBI.

        The response — the first batch — is folded before returning.
        ``cursor`` None picks the safe default: resume the OBI-side
        cursor when this controller has folded state for the OBI, else
        start from 0 so a freshly promoted controller replays the OBI's
        retained history (any evicted prefix arrives as a counted gap
        plus a fresh baseline — degraded but never silently wrong).
        """
        handle = self._handle_of(obi_id)
        if handle.channel is None:
            return None
        if cursor is None:
            cursor = -1 if self.telemetry.last_seq(obi_id) else 0
        self._telemetry_subscriptions[obi_id] = {
            "topics": list(topics or []),
            "window": window,
        }
        response = handle.channel.request(TelemetrySubscribe(
            subscriber="controller",
            topics=list(topics or []),
            cursor=cursor,
            window=window,
            drain=drain,
            controller_generation=self.generation,
        ))
        if isinstance(response, ErrorMessage):
            if response.code == ErrorCode.STALE_GENERATION:
                self.superseded = True
            return None
        if isinstance(response, TelemetryStream):
            self._handle_telemetry_stream(response)
            return response
        return None

    def _ack_telemetry(self, obi_id: str) -> None:
        """Push the folded high-water mark back as the OBI-side cursor.

        Needed after a subscribe/drain round trip: the batch arrived as
        the *response* to our request, so the OBI never saw our ack and
        its cursor has not moved yet.
        """
        handle = self.obis.get(obi_id)
        if handle is None or handle.channel is None:
            return
        subscription = self._telemetry_subscriptions.get(obi_id, {})
        try:
            handle.channel.request(TelemetryAck(
                subscriber="controller",
                ok=True,
                cursor=self.telemetry.last_seq(obi_id),
                window=int(subscription.get("window", 64)),
            ))
        except ChannelClosed:
            # The cursor stays put; the records replay on reconnect.
            pass

    def request_telemetry_rewind(self, obi_id: str, cursor: int = 0) -> None:
        """Refuse the next pushed batch and rewind to ``cursor``.

        The NACK path of §13: the next TelemetryStream from ``obi_id``
        is answered ``ok=False`` with this cursor, the OBI rewinds, and
        the interval replays (folding is idempotent, so the re-delivery
        is harmless). ``cursor=0`` also discards the folded state and
        rebuilds it from the baseline the replay starts with.
        """
        self._pending_nacks[obi_id] = cursor

    def watch(
        self,
        topics: list[str] | None = None,
        obi_ids: list[str] | None = None,
        segments: list[str] | None = None,
        apps: list[str] | None = None,
        max_pending: int = 1024,
    ) -> Watch:
        """Northbound iterator subscription over telemetry events.

        Events are delivered as they are folded from pushed streams;
        segment filters match whole subtrees ("core" matches
        "core/east"). Close the watch when done.
        """
        return self.telemetry.watch(
            topics=topics,
            obi_ids=obi_ids,
            segments=segments,
            apps=apps,
            max_pending=max_pending,
        )

    def subscribe(
        self,
        callback: Callable[[dict[str, Any]], None],
        topics: list[str] | None = None,
        obi_ids: list[str] | None = None,
        segments: list[str] | None = None,
        apps: list[str] | None = None,
    ) -> Callable[[], None]:
        """Northbound callback subscription; returns an unsubscribe hook."""
        return self.telemetry.subscribe(
            callback,
            topics=topics,
            obi_ids=obi_ids,
            segments=segments,
            apps=apps,
        )

    def telemetry_snapshot(
        self, obi_id: str, include_traces: bool = True, max_traces: int = 0
    ) -> ObservabilitySnapshotResponse | None:
        """One-shot: drain the OBI's telemetry ring, return folded state.

        Subscribe-with-drain, ack, and read back the folded per-OBI
        state shaped exactly like the old pull response — the modern
        replacement for :meth:`poll_observability`.
        """
        handle = self._handle_of(obi_id)
        if handle.channel is None:
            return None
        self._m_obsv_polls.inc()
        stream = self.subscribe_telemetry(obi_id, drain=True)
        if stream is None:
            return None
        self._ack_telemetry(obi_id)
        return self.telemetry.snapshot_response(
            obi_id, include_traces=include_traces, max_traces=max_traces
        )

    # ------------------------------------------------------------------
    # Observability (PROTOCOL.md §9 — deprecated polling wrappers)
    # ------------------------------------------------------------------
    def poll_observability(
        self, obi_id: str, include_traces: bool = True, max_traces: int = 0
    ) -> ObservabilitySnapshotResponse | None:
        """Deprecated: one-shot drain over the subscribe API (§13)."""
        warnings.warn(
            "poll_observability is deprecated; use telemetry_snapshot() or "
            "the watch()/subscribe() streaming API",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.telemetry_snapshot(
            obi_id, include_traces=include_traces, max_traces=max_traces
        )

    def poll_observability_all(
        self, include_traces: bool = True, max_traces: int = 0
    ) -> dict[str, ObservabilitySnapshotResponse]:
        """Deprecated: drain every reachable OBI via the subscribe API."""
        warnings.warn(
            "poll_observability_all is deprecated; use telemetry_snapshot() "
            "per OBI or the watch()/subscribe() streaming API",
            DeprecationWarning,
            stacklevel=2,
        )
        snapshots: dict[str, ObservabilitySnapshotResponse] = {}
        for obi_id, handle in list(self.obis.items()):
            if handle.channel is None:
                continue
            try:
                response = self.telemetry_snapshot(
                    obi_id, include_traces=include_traces, max_traces=max_traces
                )
            except ChannelClosed:
                continue
            if response is not None:
                snapshots[obi_id] = response
        return snapshots

    def attribute_trace(
        self, obi_id: str, trace: dict[str, Any]
    ) -> dict[str, list[dict[str, Any]]]:
        """Group a serialized trace's spans by originating application.

        Attribution rides the ``origin_app`` provenance the aggregator
        stamps before merging, cross-checked against the deployment the
        controller pushed: a span whose block no longer exists in the
        deployed graph (trace from an older generation) still groups by
        its recorded origin. Blocks the merge synthesized across tenants
        group under ``""``.
        """
        handle = self._handle_of(obi_id)
        origins = (
            handle.deployed.origin_map() if handle.deployed is not None else {}
        )
        grouped: dict[str, list[dict[str, Any]]] = {}
        for span in trace.get("spans", []):
            origin = span.get("origin_app") or origins.get(span.get("block")) or ""
            grouped.setdefault(origin, []).append(span)
        return grouped
