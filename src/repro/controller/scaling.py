"""Scaling and provisioning decisions (paper §3.3, §5.4.1).

The controller scales OBIs the way the paper's evaluation does: the
merged firewall+IPS graph runs on two OBI replicas "multiplexed by the
network for load balancing", and under-utilized instances can be merged
and taken down. :class:`ScalingManager` is the decision engine — it
observes per-OBI load and emits provision/deprovision actions through a
pluggable :class:`Provisioner` (the simulator implements one; a real
deployment would call its VM orchestrator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.controller.stats import ObiStatsTracker
from repro.observability.metrics import default_registry


class Provisioner(Protocol):
    """Environment hooks the scaling manager drives."""

    def provision(self, like_obi_id: str) -> str:
        """Start a replica configured like ``like_obi_id``; returns its id."""

    def deprovision(self, obi_id: str) -> None:
        """Shut an OBI down."""


@dataclass
class ScalingPolicy:
    """Thresholds for the hysteresis loop.

    Scale up when smoothed load exceeds ``scale_up_load``; scale down a
    replica when the *group's* mean load falls below ``scale_down_load``
    and more than ``min_replicas`` replicas remain. ``cooldown`` is the
    minimum time between actions for a group.
    """

    scale_up_load: float = 0.8
    scale_down_load: float = 0.3
    min_replicas: int = 1
    max_replicas: int = 8
    cooldown: float = 30.0
    smoothing_window: int = 5


@dataclass
class ScalingAction:
    """A decision taken by the manager (also kept as an audit trail)."""

    kind: str  # "scale_up" | "scale_down"
    group: str
    obi_id: str
    at: float
    load: float


class ScalingManager:
    """Per-group replica scaling with hysteresis.

    A *group* is a set of OBI replicas running the same merged graph
    (e.g. the two OBIs of Figure 7(c)). Groups are registered by the
    controller when it deploys graphs.
    """

    def __init__(
        self,
        tracker: ObiStatsTracker,
        provisioner: Provisioner,
        policy: ScalingPolicy | None = None,
    ) -> None:
        self.tracker = tracker
        self.provisioner = provisioner
        self.policy = policy or ScalingPolicy()
        self._groups: dict[str, list[str]] = {}
        self._last_action: dict[str, float] = {}
        self.actions: list[ScalingAction] = []
        registry = default_registry()
        self._m_scale_up = registry.counter(
            "controller_scaling_actions_total", kind="scale_up"
        )
        self._m_scale_down = registry.counter(
            "controller_scaling_actions_total", kind="scale_down"
        )

    def register_group(self, group: str, obi_ids: list[str]) -> None:
        self._groups[group] = list(obi_ids)

    def group_members(self, group: str) -> list[str]:
        return list(self._groups.get(group, ()))

    def add_member(self, group: str, obi_id: str) -> None:
        """Add a replica provisioned outside a scaling decision
        (e.g. a failover replacement)."""
        members = self._groups.setdefault(group, [])
        if obi_id not in members:
            members.append(obi_id)

    def remove_member(self, group: str, obi_id: str) -> None:
        """Drop a replica that is gone (dead or externally removed)."""
        members = self._groups.get(group)
        if members is not None and obi_id in members:
            members.remove(obi_id)

    def group_of(self, obi_id: str) -> str | None:
        for group, members in self._groups.items():
            if obi_id in members:
                return group
        return None

    def _group_loads(self, group: str) -> list[tuple[str, float]]:
        loads: list[tuple[str, float]] = []
        for obi_id in self._groups.get(group, ()):
            view = self.tracker.view(obi_id)
            # Effective load, not raw smoothed CPU: an OBI whose health
            # reports show admission-gate shedding counts as saturated
            # even before its CPU samples catch up.
            load = view.effective_load(self.policy.smoothing_window) if view else 0.0
            loads.append((obi_id, load))
        return loads

    def evaluate(self, now: float) -> list[ScalingAction]:
        """Run one decision round over every group."""
        actions: list[ScalingAction] = []
        for group in list(self._groups):
            action = self._evaluate_group(group, now)
            if action is not None:
                actions.append(action)
        return actions

    def _evaluate_group(self, group: str, now: float) -> ScalingAction | None:
        last = self._last_action.get(group, float("-inf"))
        if now - last < self.policy.cooldown:
            return None
        loads = self._group_loads(group)
        if not loads:
            return None
        mean_load = sum(load for _id, load in loads) / len(loads)
        members = self._groups[group]

        if (
            mean_load > self.policy.scale_up_load
            and len(members) < self.policy.max_replicas
        ):
            template = max(loads, key=lambda item: item[1])[0]
            new_id = self.provisioner.provision(template)
            members.append(new_id)
            action = ScalingAction(
                kind="scale_up", group=group, obi_id=new_id, at=now, load=mean_load
            )
            self._m_scale_up.inc()
        elif (
            mean_load < self.policy.scale_down_load
            and len(members) > self.policy.min_replicas
        ):
            victim = min(loads, key=lambda item: item[1])[0]
            self.provisioner.deprovision(victim)
            members.remove(victim)
            action = ScalingAction(
                kind="scale_down", group=group, obi_id=victim, at=now, load=mean_load
            )
            self._m_scale_down.inc()
        else:
            return None

        self._last_action[group] = now
        self.actions.append(action)
        return action
