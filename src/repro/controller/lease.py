"""Lease-based controller leadership with epoch fencing (PROTOCOL.md §12).

The paper's controller is logically centralized (§4.2); PR 5 made one
instance crash-safe, but nothing prevented *two* instances from both
believing they own the fleet. This module supplies the missing
arbitration: a **lease** — time-bounded exclusive leadership granted by
a pluggable store — plus a monotonic **epoch** minted by the store on
every change of ownership.

The epoch is the fencing token. For lease-managed controllers it *is*
the controller generation that rides on every southbound message
(``controller_generation``) and on the replication stream
(``JournalStream.epoch``): OBIs and standby replicas reject anything
stamped with an epoch below the highest they have witnessed, so a
deposed leader — even one that never noticed losing its lease — can
never have a write accepted anywhere that matters.

Safety does not depend on clocks being synchronized between
controllers: only the *store* evaluates expiry, against whatever clock
the caller passes (tests drive a fake clock; a real deployment would
back :class:`LeaseStore` with etcd/ZooKeeper, whose server evaluates
TTLs). A leader partitioned from the store simply fails to renew —
modeled by :meth:`InProcLeaseStore.partition` raising
:class:`LeaseUnavailable` — and its lease lapses in absentia; its
stale epoch then does the actual fencing.

Liveness rule (the classic one): a standby may take over only after
the incumbent's lease has **expired** at the store, never merely when
the incumbent looks slow. The takeover mints epoch+1, and the new
leader journals that epoch durably *before* contacting any OBI
(:meth:`repro.controller.obc.OpenBoxController.adopt_epoch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


class LeaseUnavailable(Exception):
    """The lease store could not be reached (partition, crash)."""


@dataclass(frozen=True)
class Lease:
    """One grant of leadership: who, under which epoch, until when."""

    owner: str
    #: Monotonic fencing token, bumped by the store on every change of
    #: ownership (never on renewal).
    epoch: int
    #: Expiry instant on the *store's* clock.
    expires_at: float


class LeaseStore:
    """Pluggable leadership arbiter.

    Implementations must guarantee: at most one unexpired lease exists
    at a time, and epochs are strictly monotonic across acquisitions.
    All methods take ``now`` explicitly — the store's notion of time is
    the only one that matters, and injecting it keeps tests
    deterministic.
    """

    def acquire(self, owner: str, ttl: float, now: float) -> Lease | None:
        """Grant ``owner`` the lease iff none is currently valid.

        Returns the (new-epoch) lease, the owner's existing lease if it
        already holds one, or None when another owner's lease is live.
        """
        raise NotImplementedError

    def renew(self, owner: str, ttl: float, now: float) -> Lease | None:
        """Extend ``owner``'s unexpired lease (same epoch), else None."""
        raise NotImplementedError

    def peek(self, now: float) -> Lease | None:
        """The currently valid lease, if any (expired ones are None)."""
        raise NotImplementedError

    def release(self, owner: str, now: float) -> bool:
        """Voluntarily drop ``owner``'s lease (clean shutdown handoff)."""
        raise NotImplementedError


class InProcLeaseStore(LeaseStore):
    """Deterministic single-process lease store.

    The reference implementation the chaos suite arbitrates with: no
    threads, no wall clock, and an explicit :meth:`partition` switch
    per owner so tests can model a leader that is alive but cut off
    from the store (every call raises :class:`LeaseUnavailable` while
    partitioned — the leader cannot renew *and* cannot observe who
    holds the lease now).
    """

    def __init__(self) -> None:
        self._lease: Lease | None = None
        self._epoch = 0
        self._partitioned: set[str] = set()
        self.acquisitions = 0
        self.renewals = 0
        self.rejected = 0

    # -- chaos controls -------------------------------------------------
    def partition(self, owner: str) -> None:
        """Cut ``owner`` off from the store (its calls start raising)."""
        self._partitioned.add(owner)

    def heal(self, owner: str) -> None:
        self._partitioned.discard(owner)

    def _check_reachable(self, owner: str) -> None:
        if owner in self._partitioned:
            raise LeaseUnavailable(f"{owner!r} is partitioned from the lease store")

    # -- LeaseStore -----------------------------------------------------
    def acquire(self, owner: str, ttl: float, now: float) -> Lease | None:
        self._check_reachable(owner)
        current = self._lease
        if current is not None and current.expires_at > now:
            if current.owner == owner:
                return current
            self.rejected += 1
            return None
        self._epoch += 1
        self._lease = Lease(owner=owner, epoch=self._epoch, expires_at=now + ttl)
        self.acquisitions += 1
        return self._lease

    def renew(self, owner: str, ttl: float, now: float) -> Lease | None:
        self._check_reachable(owner)
        current = self._lease
        if current is None or current.owner != owner or current.expires_at <= now:
            # An expired lease cannot be renewed, only re-acquired —
            # re-acquisition mints a fresh epoch, which is what keeps a
            # slow leader from resurrecting its old fencing token.
            return None
        self._lease = Lease(owner=owner, epoch=current.epoch, expires_at=now + ttl)
        self.renewals += 1
        return self._lease

    def peek(self, now: float) -> Lease | None:
        current = self._lease
        if current is None or current.expires_at <= now:
            return None
        return current

    def release(self, owner: str, now: float) -> bool:
        self._check_reachable(owner)
        current = self._lease
        if current is not None and current.owner == owner:
            self._lease = None
            return True
        return False


class LeaseManager:
    """One controller's view of the leadership lease.

    Drive :meth:`tick` periodically (the orchestration loop does):
    while leading it renews; while following it attempts acquisition,
    which only succeeds once the incumbent's lease has expired at the
    store. Store unreachability (partition) is absorbed — the manager
    reports not-leader and counts the failure, it never raises into
    the control loop.
    """

    def __init__(
        self,
        owner: str,
        store: LeaseStore,
        ttl: float = 30.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be > 0")
        self.owner = owner
        self.store = store
        self.ttl = ttl
        self.clock = clock
        self.lease: Lease | None = None
        self.acquisitions = 0
        self.renewals = 0
        #: Times leadership was observably lost (held, then gone).
        self.losses = 0
        self.store_failures = 0

    def _now(self, now: float | None) -> float:
        if now is not None:
            return now
        if self.clock is None:
            raise ValueError("no clock configured; pass now= explicitly")
        return self.clock()

    def is_leader(self, now: float | None = None) -> bool:
        """Locally-held lease still unexpired? (No store round trip —
        this is the cheap check the hot path may make between ticks.)"""
        lease = self.lease
        return lease is not None and lease.expires_at > self._now(now)

    @property
    def epoch(self) -> int:
        """Epoch of the currently held lease (0 when not leading)."""
        return self.lease.epoch if self.lease is not None else 0

    def tick(self, now: float | None = None) -> Lease | None:
        """Renew-or-acquire; returns the held lease or None."""
        moment = self._now(now)
        held_before = self.lease is not None
        try:
            if self.lease is not None:
                renewed = self.store.renew(self.owner, self.ttl, moment)
                if renewed is not None:
                    self.lease = renewed
                    self.renewals += 1
                    return renewed
                # Couldn't renew: the lease lapsed (and someone else may
                # own a newer epoch). Fall through to an acquire attempt.
                self.lease = None
            acquired = self.store.acquire(self.owner, self.ttl, moment)
        except LeaseUnavailable:
            self.store_failures += 1
            if self.lease is not None:
                # Keep the lease object until it expires on its own:
                # being partitioned from the store does not instantly
                # end a still-valid grant — but it will lapse, and
                # without renewal this manager demotes itself then.
                if self.lease.expires_at <= moment:
                    self.lease = None
                    self.losses += 1
                return self.lease
            return None
        if acquired is not None:
            if self.lease is None or acquired.epoch != self.lease.epoch:
                self.acquisitions += 1
            self.lease = acquired
            return acquired
        if held_before:
            self.losses += 1
        self.lease = None
        return None

    def release(self, now: float | None = None) -> None:
        """Voluntarily hand the lease back (clean shutdown)."""
        moment = self._now(now)
        if self.lease is not None:
            try:
                self.store.release(self.owner, moment)
            except LeaseUnavailable:
                self.store_failures += 1
            self.lease = None
