"""Traffic steering: mapping flows to OBI service chains (paper §3.3).

"In an SDN network, the OBC can be attached to a traffic-steering
application to control chaining of instances and packet forwarding
between them." The paper implements this as an OpenDaylight plugin; here
the steering module programs the simulated forwarding plane directly:

* a *chain* is an ordered list of steering hops;
* each hop names a replica group; replicas are picked per flow with
  consistent hashing (so a flow sticks to one replica — stateful NFs
  need flow affinity) weighted by replica capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b

from repro.net.flow import FiveTuple
from repro.net.packet import Packet


@dataclass
class SteeringHop:
    """One hop of a service chain: a load-balanced OBI replica group."""

    group: str
    replicas: list[str]
    weights: dict[str, float] = field(default_factory=dict)

    def pick(self, flow_key: int) -> str:
        """Choose a replica for a flow (highest-random-weight hashing).

        Rendezvous hashing keeps most flows pinned to their replica when
        the replica set changes — important for session storage locality.
        """
        if not self.replicas:
            raise ValueError(f"steering hop {self.group!r} has no replicas")
        best_id = None
        best_score = -1.0
        for obi_id in self.replicas:
            digest = blake2b(
                f"{flow_key}:{obi_id}".encode(), digest_size=8
            ).digest()
            score = int.from_bytes(digest, "big") / float(1 << 64)
            weight = self.weights.get(obi_id, 1.0)
            weighted = score ** (1.0 / weight) if weight > 0 else -1.0
            if weighted > best_score:
                best_score = weighted
                best_id = obi_id
        assert best_id is not None
        return best_id


@dataclass
class ServiceChain:
    """An ordered sequence of steering hops applied to matching flows."""

    name: str
    hops: list[SteeringHop]

    def route(self, packet: Packet) -> list[str]:
        """The OBI sequence this packet's flow traverses."""
        tuple5 = FiveTuple.of(packet)
        flow_key = hash(tuple5.bidirectional_key()) if tuple5 is not None else 0
        return [hop.pick(flow_key) for hop in self.hops]


class TrafficSteering:
    """The controller's steering table: classifier from flows to chains.

    Chains are selected by VLAN id (tenant networks) or by a default;
    richer flow-space rules can be layered on by registering a custom
    ``selector`` callable.
    """

    def __init__(self) -> None:
        self.chains: dict[str, ServiceChain] = {}
        self._by_vlan: dict[int, str] = {}
        self._default: str | None = None
        self._selector = None

    def register_chain(self, chain: ServiceChain, vlan: int | None = None,
                       default: bool = False) -> None:
        self.chains[chain.name] = chain
        if vlan is not None:
            self._by_vlan[vlan] = chain.name
        if default or self._default is None:
            self._default = chain.name

    def set_selector(self, selector) -> None:
        """Install ``selector(packet) -> chain name | None``."""
        self._selector = selector

    def chain_for(self, packet: Packet) -> ServiceChain | None:
        if self._selector is not None:
            name = self._selector(packet)
            if name is not None:
                return self.chains.get(name)
        eth = packet.eth
        tag = eth.vlan if eth is not None else None
        if tag is not None and tag.vid in self._by_vlan:
            return self.chains[self._by_vlan[tag.vid]]
        if self._default is not None:
            return self.chains[self._default]
        return None

    def route(self, packet: Packet) -> list[str]:
        """The OBI sequence for this packet (empty = forward directly)."""
        chain = self.chain_for(packet)
        return chain.route(packet) if chain is not None else []

    def update_replicas(self, group: str, replicas: list[str]) -> None:
        """Propagate a scaling action into every chain using ``group``."""
        for chain in self.chains.values():
            for hop in chain.hops:
                if hop.group == group:
                    hop.replicas = list(replicas)
