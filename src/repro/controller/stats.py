"""OBI liveness and load tracking.

The controller "can request system information, such as CPU load and
memory usage, from OBIs. It can use this information to scale and
provision additional service instances, or merge the tasks of multiple
underutilized instances and take some of them down" (paper §3.3).

:class:`ObiStatsTracker` records keepalives and the latest GlobalStats
per OBI; the scaling manager consumes its view, and the orchestrator's
failover stage consumes :meth:`ObiStatsTracker.dead_obis` — liveness is
evidenced by *any* message from the OBI (keepalive or a stats
response), so a silent-but-polled instance is not declared dead while
one that answers nothing for ``liveness_timeout`` is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.observability.metrics import merge_snapshots
from repro.protocol.messages import (
    GlobalStatsResponse,
    HealthReport,
    ObservabilitySnapshotResponse,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.xid import RequestMultiplexer


@dataclass
class ObiLoadView:
    """The controller's current knowledge about one OBI."""

    obi_id: str
    last_keepalive: float = 0.0
    #: Last time *any* evidence of liveness arrived (keepalive, stats,
    #: or a health report).
    last_heard: float = 0.0
    keepalives: int = 0
    last_stats: GlobalStatsResponse | None = None
    stats_history: list[tuple[float, float]] = field(default_factory=list)
    #: Latest data-plane health beacon (quarantine/shed/suppression
    #: counters, PROTOCOL.md §7).
    last_health: HealthReport | None = None
    #: True while the OBI reports overload evidence: running degraded or
    #: actively shedding packets since the previous health report.
    overloaded: bool = False
    #: Latest pulled observability snapshot (PROTOCOL.md §9): the OBI's
    #: metrics registry plus its recent sampled packet traces.
    last_observability: ObservabilitySnapshotResponse | None = None

    @property
    def cpu_load(self) -> float:
        return self.last_stats.cpu_load if self.last_stats is not None else 0.0

    @property
    def quarantined_blocks(self) -> list[str]:
        return list(self.last_health.quarantined_blocks) if self.last_health else []

    @property
    def fastpath_hit_rate(self) -> float:
        """Flow-cache hit rate the OBI last reported.

        Informational for scaling decisions: the OBI already discounts
        fast-path hits in the cpu_load it reports (a cache hit skips
        the classifier work), so the smoothed-load samples account for
        the cache; this exposes *why* a busy OBI reports low load.
        """
        return self.last_health.fastpath_hit_rate if self.last_health else 0.0

    def add_sample(self, now: float, load: float, limit: int) -> None:
        """Append a load sample, enforcing ``limit`` on every append."""
        self.stats_history.append((now, load))
        excess = len(self.stats_history) - limit
        if excess > 0:
            del self.stats_history[:excess]

    def smoothed_load(self, window: int = 5) -> float:
        """Mean of the last ``window`` CPU-load samples (0 if none)."""
        recent = self.stats_history[-window:]
        if not recent:
            return 0.0
        return sum(load for _ts, load in recent) / len(recent)

    def effective_load(self, window: int = 5) -> float:
        """Load as the scaling loop should see it.

        An OBI shedding packets at its admission gate is at capacity no
        matter what its smoothed CPU samples say (samples lag, and a shed
        packet consumes no CPU) — overload evidence pins the effective
        load to 1.0 so the scale-up threshold is guaranteed to trip.
        """
        smoothed = self.smoothed_load(window)
        return 1.0 if self.overloaded else smoothed


class ObiStatsTracker:
    """Tracks liveness and load for every connected OBI.

    When constructed with the controller's :class:`RequestMultiplexer`,
    forgetting an OBI also sweeps every request still pending against
    it, so callbacks fail fast instead of leaking until expiry.
    """

    def __init__(
        self,
        liveness_timeout: float = 30.0,
        history_limit: int = 1000,
        mux: "RequestMultiplexer | None" = None,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.liveness_timeout = liveness_timeout
        self.history_limit = history_limit
        self.mux = mux
        # Injectable monotonic clock: liveness math must never read the
        # wall clock directly, so virtual-time tests stay deterministic.
        self.clock = clock or time.monotonic
        self._views: dict[str, ObiLoadView] = {}
        #: Audit log of declared failures: (obi_id, when declared).
        self.failures: list[tuple[str, float]] = []

    def register(self, obi_id: str, now: float) -> ObiLoadView:
        view = self._views.get(obi_id)
        if view is None:
            view = ObiLoadView(obi_id=obi_id, last_keepalive=now, last_heard=now)
            self._views[obi_id] = view
        return view

    def forget(self, obi_id: str) -> None:
        self._views.pop(obi_id, None)
        if self.mux is not None:
            self.mux.cancel_for_obi(obi_id)

    def record_failure(self, obi_id: str, now: float) -> None:
        """Audit that ``obi_id`` was declared failed at ``now``."""
        self.failures.append((obi_id, now))

    def record_keepalive(self, obi_id: str, now: float) -> None:
        view = self.register(obi_id, now)
        view.last_keepalive = now
        view.last_heard = max(view.last_heard, now)
        view.keepalives += 1

    def record_stats(self, stats: GlobalStatsResponse, now: float) -> None:
        view = self.register(stats.obi_id, now)
        view.last_stats = stats
        view.last_heard = max(view.last_heard, now)
        view.add_sample(now, stats.cpu_load, self.history_limit)

    def record_health(self, report: HealthReport, now: float) -> None:
        """Fold a data-plane health beacon into the OBI's view.

        Overload evidence is shedding *progress* (packets_shed grew since
        the previous report) or currently-degraded mode; a historical
        shed counter alone does not keep an OBI marked overloaded
        forever.
        """
        view = self.register(report.obi_id, now)
        previous = view.last_health
        shed_before = previous.packets_shed if previous is not None else 0
        view.overloaded = report.degraded or report.packets_shed > shed_before
        view.last_health = report
        view.last_heard = max(view.last_heard, now)

    def record_observability(
        self, snapshot: ObservabilitySnapshotResponse, now: float
    ) -> None:
        """Retain an OBI's pulled observability snapshot (liveness too —
        an instance answering a snapshot pull is plainly alive)."""
        view = self.register(snapshot.obi_id, now)
        view.last_observability = snapshot
        view.last_heard = max(view.last_heard, now)

    def aggregate_observability(self) -> dict[str, Any]:
        """Fleet-wide view of the latest snapshot from every OBI.

        Counters and gauges sum across instances, same-shape histograms
        merge bucket-wise (:func:`repro.observability.metrics.merge_snapshots`),
        and every retained trace is tagged with its source OBI.
        """
        snapshots = [
            view.last_observability
            for view in self._views.values()
            if view.last_observability is not None
        ]
        traces: list[dict[str, Any]] = []
        for snapshot in snapshots:
            for trace in snapshot.traces:
                tagged = dict(trace)
                tagged["obi_id"] = snapshot.obi_id
                traces.append(tagged)
        return {
            "obis": {
                snapshot.obi_id: {
                    "graph_version": snapshot.graph_version,
                    "packets_seen": snapshot.packets_seen,
                    "packets_sampled": snapshot.packets_sampled,
                    "sample_rate": snapshot.sample_rate,
                }
                for snapshot in snapshots
            },
            "metrics": merge_snapshots([s.metrics for s in snapshots]),
            "traces": traces,
        }

    def view(self, obi_id: str) -> ObiLoadView | None:
        return self._views.get(obi_id)

    def all_views(self) -> list[ObiLoadView]:
        return list(self._views.values())

    def is_live(self, obi_id: str, now: float | None = None) -> bool:
        if now is None:
            now = self.clock()
        view = self._views.get(obi_id)
        return view is not None and now - view.last_heard <= self.liveness_timeout

    def live_obis(self, now: float | None = None) -> list[str]:
        if now is None:
            now = self.clock()
        return [
            view.obi_id for view in self._views.values()
            if now - view.last_heard <= self.liveness_timeout
        ]

    def dead_obis(self, now: float | None = None) -> list[str]:
        if now is None:
            now = self.clock()
        return [
            view.obi_id for view in self._views.values()
            if now - view.last_heard > self.liveness_timeout
        ]
