"""OBI liveness and load tracking.

The controller "can request system information, such as CPU load and
memory usage, from OBIs. It can use this information to scale and
provision additional service instances, or merge the tasks of multiple
underutilized instances and take some of them down" (paper §3.3).

:class:`ObiStatsTracker` records keepalives and the latest GlobalStats
per OBI; the scaling manager consumes its view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocol.messages import GlobalStatsResponse


@dataclass
class ObiLoadView:
    """The controller's current knowledge about one OBI."""

    obi_id: str
    last_keepalive: float = 0.0
    keepalives: int = 0
    last_stats: GlobalStatsResponse | None = None
    stats_history: list[tuple[float, float]] = field(default_factory=list)

    @property
    def cpu_load(self) -> float:
        return self.last_stats.cpu_load if self.last_stats is not None else 0.0

    def smoothed_load(self, window: int = 5) -> float:
        """Mean of the last ``window`` CPU-load samples (0 if none)."""
        recent = self.stats_history[-window:]
        if not recent:
            return 0.0
        return sum(load for _ts, load in recent) / len(recent)


class ObiStatsTracker:
    """Tracks liveness and load for every connected OBI."""

    def __init__(self, liveness_timeout: float = 30.0, history_limit: int = 1000) -> None:
        self.liveness_timeout = liveness_timeout
        self.history_limit = history_limit
        self._views: dict[str, ObiLoadView] = {}

    def register(self, obi_id: str, now: float) -> ObiLoadView:
        view = self._views.get(obi_id)
        if view is None:
            view = ObiLoadView(obi_id=obi_id, last_keepalive=now)
            self._views[obi_id] = view
        return view

    def forget(self, obi_id: str) -> None:
        self._views.pop(obi_id, None)

    def record_keepalive(self, obi_id: str, now: float) -> None:
        view = self.register(obi_id, now)
        view.last_keepalive = now
        view.keepalives += 1

    def record_stats(self, stats: GlobalStatsResponse, now: float) -> None:
        view = self.register(stats.obi_id, now)
        view.last_stats = stats
        view.stats_history.append((now, stats.cpu_load))
        if len(view.stats_history) > self.history_limit:
            del view.stats_history[: -self.history_limit]

    def view(self, obi_id: str) -> ObiLoadView | None:
        return self._views.get(obi_id)

    def all_views(self) -> list[ObiLoadView]:
        return list(self._views.values())

    def live_obis(self, now: float) -> list[str]:
        return [
            view.obi_id for view in self._views.values()
            if now - view.last_keepalive <= self.liveness_timeout
        ]

    def dead_obis(self, now: float) -> list[str]:
        return [
            view.obi_id for view in self._views.values()
            if now - view.last_keepalive > self.liveness_timeout
        ]
