"""Session-state migration between OBI replicas (paper §3.4.2).

"Frameworks such as OpenNF [18] can be used as-is to allow replication
and migration of OBIs along with their stored data, to ensure correct
behavior of applications in such cases."

This module implements the controller-side mechanism OpenNF would drive:
export the session storage of one OBI, import it into another, with
loss-free semantics for the scaling events this repo performs
(scale-out: copy state so reassigned flows keep their session data;
scale-in: fold the victim's state back into the survivors).

The protocol grows two message pairs (ExportState / ImportState), which
the OBI serves from its session storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.protocol.errors import ErrorCode, ProtocolError
from repro.protocol.messages import ExportStateRequest, ExportStateResponse, ImportStateRequest, ImportStateResponse

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.obc import OpenBoxController


@dataclass
class MigrationReport:
    """What a migration moved."""

    source: str
    target: str
    flows_exported: int
    flows_imported: int


class StateMigrator:
    """Moves per-flow session state between OBIs through the protocol."""

    def __init__(self, controller: "OpenBoxController") -> None:
        self.controller = controller
        self.reports: list[MigrationReport] = []

    def _channel(self, obi_id: str) -> Any:
        handle = self.controller.obis.get(obi_id)
        if handle is None or handle.channel is None:
            raise ProtocolError(ErrorCode.NOT_CONNECTED, f"OBI {obi_id!r} unavailable")
        return handle.channel

    def export_state(self, obi_id: str) -> list[dict[str, Any]]:
        """Snapshot ``obi_id``'s session storage (one entry per flow)."""
        response = self._channel(obi_id).request(ExportStateRequest())
        if not isinstance(response, ExportStateResponse):
            raise ProtocolError(
                ErrorCode.INTERNAL_ERROR,
                f"unexpected export response: {type(response).__name__}",
            )
        return response.state

    def import_state(self, obi_id: str, state: list[dict[str, Any]]) -> int:
        """Install exported state into ``obi_id``; returns flows imported."""
        response = self._channel(obi_id).request(ImportStateRequest(state=state))
        if not isinstance(response, ImportStateResponse):
            raise ProtocolError(
                ErrorCode.INTERNAL_ERROR,
                f"unexpected import response: {type(response).__name__}",
            )
        return response.flows_imported

    def migrate(self, source: str, target: str) -> MigrationReport:
        """Copy all of ``source``'s session state to ``target``.

        Used on scale-out (before steering moves flows to the new
        replica) and scale-in (before a victim is deprovisioned).
        """
        state = self.export_state(source)
        imported = self.import_state(target, state)
        report = MigrationReport(
            source=source, target=target,
            flows_exported=len(state), flows_imported=imported,
        )
        self.reports.append(report)
        return report
