"""Session-state migration between OBI replicas (paper §3.4.2).

"Frameworks such as OpenNF [18] can be used as-is to allow replication
and migration of OBIs along with their stored data, to ensure correct
behavior of applications in such cases."

This module implements the controller-side mechanism OpenNF would drive:
export the session storage of one OBI, import it into another, with
loss-free semantics for the scaling events this repo performs
(scale-out: copy state so reassigned flows keep their session data;
scale-in: fold the victim's state back into the survivors).

The protocol grows two message pairs (ExportState / ImportState), which
the OBI serves from its session storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.protocol.errors import ErrorCode, ProtocolError
from repro.protocol.messages import (
    Alert,
    ExportStateRequest,
    ExportStateResponse,
    ImportStateRequest,
    ImportStateResponse,
    StateCheckpointRequest,
    StateCheckpointResponse,
    StateHandoffRequest,
    StateHandoffResponse,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.obc import OpenBoxController


@dataclass
class MigrationReport:
    """What a migration moved."""

    source: str
    target: str
    flows_exported: int
    flows_imported: int
    #: Entries the importer refused, keyed by reason ("malformed",
    #: "expired", "capacity"). Empty on a loss-free transfer.
    rejected: dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.flows_imported >= self.flows_exported


class StateMigrator:
    """Moves per-flow session state between OBIs through the protocol."""

    def __init__(self, controller: "OpenBoxController") -> None:
        self.controller = controller
        self.reports: list[MigrationReport] = []

    def _channel(self, obi_id: str) -> Any:
        handle = self.controller.obis.get(obi_id)
        if handle is None or handle.channel is None:
            raise ProtocolError(ErrorCode.NOT_CONNECTED, f"OBI {obi_id!r} unavailable")
        return handle.channel

    def export_state(self, obi_id: str) -> list[dict[str, Any]]:
        """Snapshot ``obi_id``'s session storage (one entry per flow)."""
        response = self._channel(obi_id).request(ExportStateRequest())
        if not isinstance(response, ExportStateResponse):
            raise ProtocolError(
                ErrorCode.INTERNAL_ERROR,
                f"unexpected export response: {type(response).__name__}",
            )
        return response.state

    def import_state(self, obi_id: str, state: list[dict[str, Any]]) -> int:
        """Install exported state into ``obi_id``; returns flows imported."""
        return self.import_state_checked(obi_id, state).flows_imported

    def import_state_checked(
        self, obi_id: str, state: list[dict[str, Any]]
    ) -> ImportStateResponse:
        """Install exported state; returns the full response (rejections)."""
        response = self._channel(obi_id).request(ImportStateRequest(state=state))
        if not isinstance(response, ImportStateResponse):
            raise ProtocolError(
                ErrorCode.INTERNAL_ERROR,
                f"unexpected import response: {type(response).__name__}",
            )
        return response

    def export_checkpoint(self, obi_id: str) -> dict[str, Any]:
        """Snapshot ``obi_id``'s flow state with its generation number.

        Returns ``{"generation": int, "entries": [...]}`` — the shape
        the orchestrator stores per OBI and feeds to :meth:`handoff`
        when that OBI later dies (PROTOCOL.md §11).
        """
        response = self._channel(obi_id).request(StateCheckpointRequest())
        if not isinstance(response, StateCheckpointResponse):
            raise ProtocolError(
                ErrorCode.INTERNAL_ERROR,
                f"unexpected checkpoint response: {type(response).__name__}",
            )
        return {
            "generation": response.state_generation,
            "entries": response.state,
        }

    def handoff(
        self,
        source: str,
        target: str,
        generation: int,
        entries: list[dict[str, Any]],
    ) -> StateHandoffResponse:
        """Install a dead ``source``'s checkpoint into ``target``, fenced.

        The target remembers the highest generation imported per source;
        a stale checkpoint (a partitioned ghost's leftovers) comes back
        ``stale=True`` instead of clobbering newer state.
        """
        response = self._channel(target).request(StateHandoffRequest(
            source_obi=source, state_generation=generation, state=entries,
        ))
        if not isinstance(response, StateHandoffResponse):
            raise ProtocolError(
                ErrorCode.INTERNAL_ERROR,
                f"unexpected handoff response: {type(response).__name__}",
            )
        return response

    def _alert_partial(self, report: MigrationReport) -> None:
        """Surface a lossy transfer as a controller-origin alert."""
        detail = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(report.rejected.items())
        ) or "unknown"
        self.controller._handle_alert(Alert(
            obi_id=report.target,
            origin_app=self.controller.CONTROLLER_ORIGIN,
            message=(
                f"state migration {report.source!r} -> {report.target!r} "
                f"partial: imported {report.flows_imported}/"
                f"{report.flows_exported} flows (rejected: {detail})"
            ),
            severity="warning",
        ))

    def migrate(self, source: str, target: str) -> MigrationReport:
        """Copy all of ``source``'s session state to ``target``.

        Used on scale-out (before steering moves flows to the new
        replica) and scale-in (before a victim is deprovisioned).
        Verifies the importer accepted every exported flow — a partial
        transfer raises a ``_controller`` alert with the per-reason
        rejection counts so the operator knows state was lost.
        """
        state = self.export_state(source)
        response = self.import_state_checked(target, state)
        report = MigrationReport(
            source=source, target=target,
            flows_exported=len(state),
            flows_imported=response.flows_imported,
            rejected=dict(response.rejected),
        )
        if not report.complete:
            self._alert_partial(report)
        self.reports.append(report)
        return report
