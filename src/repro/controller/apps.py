"""The northbound application API (paper §3.4).

"An application defines a single network function (NF) by statement
declarations. Each statement consists of a location specifier, which
specifies a network segment or a specific OBI, and a processing graph
associated with this location. Applications are event-driven."

Subclass :class:`OpenBoxApplication`, implement :meth:`statements`, and
optionally override the event hooks. Applications never see each other's
logic — the controller is the only party that observes merged graphs
(paper §6, tenant isolation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.graph import ProcessingGraph
from repro.protocol.messages import Alert, GlobalStatsResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.obc import OpenBoxController
    from repro.controller.results import (
        AppStatsView,
        HandleReadResult,
        HandleWriteResult,
    )


@dataclass(frozen=True)
class AppStatement:
    """One location-scoped processing-graph declaration.

    ``segment`` scopes by segment path; ``obi_id`` pins to one instance.
    Exactly one of the two may be set (``segment=""`` with no obi_id
    means network-wide); setting both raises — the obi_id used to win
    silently, leaving the segment a lie. Statements naming a segment
    unknown to the controller's hierarchy are additionally rejected at
    ``register_application`` time.
    """

    graph: ProcessingGraph
    segment: str = ""
    obi_id: str | None = None

    def __post_init__(self) -> None:
        if self.obi_id is not None and self.segment:
            raise ValueError(
                f"AppStatement scopes both segment {self.segment!r} and "
                f"obi_id {self.obi_id!r}; set exactly one (an obi_id already "
                "pins the statement to that instance regardless of segment)"
            )

    def applies_to(self, obi_id: str, obi_segment: str, hierarchy: Any) -> bool:
        if self.obi_id is not None:
            return self.obi_id == obi_id
        return hierarchy.in_scope(obi_segment, self.segment)


class OpenBoxApplication:
    """Base class for OpenBox applications.

    ``priority`` orders applications in the logical service chain: lower
    values run earlier (the firewall typically precedes the IPS). The
    controller preserves this order when merging (paper §3.4.1:
    "preserving application priority and ordering").

    ``mergeable=False`` marks an application whose logic changes too
    frequently to be worth merging (paper §3.4); the controller chains
    such graphs naively instead of merging them with their neighbors.
    """

    def __init__(self, name: str, priority: int = 100, mergeable: bool = True) -> None:
        self.name = name
        self.priority = priority
        self.mergeable = mergeable
        self.controller: "OpenBoxController | None" = None
        self.alerts_received: list[Alert] = []

    # ------------------------------------------------------------------
    # To implement in subclasses
    # ------------------------------------------------------------------
    def statements(self) -> list[AppStatement]:
        """Declare the application's processing graphs."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Event hooks (called by the controller)
    # ------------------------------------------------------------------
    def on_start(self, controller: "OpenBoxController") -> None:
        """Called when the application is registered."""

    def on_alert(self, alert: Alert) -> None:
        """An Alert originating from this application's blocks arrived."""
        self.alerts_received.append(alert)

    def on_obi_connected(self, obi_id: str) -> None:
        """A new OBI this application applies to came online."""

    def on_obi_disconnected(self, obi_id: str) -> None:
        """An OBI went away (scale-in, failure, admin action)."""

    def on_stats(self, stats: GlobalStatsResponse) -> None:
        """A GlobalStats response this application requested arrived."""

    # ------------------------------------------------------------------
    # Downstream requests (through the controller, paper §4.1)
    # ------------------------------------------------------------------
    def request_read(
        self,
        obi_id: str,
        block: str,
        handle: str,
    ) -> "HandleReadResult":
        """Invoke a read handle in the data plane.

        Returns a typed :class:`~repro.controller.results.HandleReadResult`
        carrying per-clone values, per-block errors, and round-trip
        latency; ``result.value`` gives the aggregated value.
        """
        return self._require_controller().app_read(self, obi_id, block, handle)

    def request_write(
        self,
        obi_id: str,
        block: str,
        handle: str,
        value: Any,
    ) -> "HandleWriteResult":
        """Invoke a write handle in the data plane; returns a typed result."""
        return self._require_controller().app_write(
            self, obi_id, block, handle, value
        )

    def request_stats(self, obi_id: str) -> "AppStatsView":
        """Request load information from an OBI (paper §3.4 example)."""
        return self._require_controller().app_stats(self, obi_id)

    def update_logic(self) -> None:
        """Signal that :meth:`statements` changed; triggers redeployment.

        This is the downstream reconfiguration path of paper §3.4: e.g.
        an IPS that detected an attack tightens its policies.
        """
        self._require_controller().redeploy_app(self)

    def _require_controller(self) -> "OpenBoxController":
        if self.controller is None:
            raise RuntimeError(f"application {self.name!r} is not registered")
        return self.controller


class FunctionApplication(OpenBoxApplication):
    """Adapter: wrap a plain graph-producing function as an application.

    Convenient for tests and quick experiments::

        app = FunctionApplication("fw", lambda: [AppStatement(graph)])
    """

    def __init__(
        self,
        name: str,
        statements_fn: Callable[[], list[AppStatement]],
        priority: int = 100,
        mergeable: bool = True,
    ) -> None:
        super().__init__(name, priority=priority, mergeable=mergeable)
        self._statements_fn = statements_fn

    def statements(self) -> list[AppStatement]:
        return self._statements_fn()
