"""The orchestration loop: failover → stats → scaling → migration → steering.

The paper's controller "can use this information to scale and provision
additional service instances, or merge the tasks of multiple
underutilized instances and take some of them down" (§3.3). This module
closes that loop as one periodic tick:

0. **failover** — any group member that has not been heard from within
   the stats tracker's ``liveness_timeout`` (no keepalive, no stats
   response), or whose deployments keep failing, is declared dead: its
   last exported session state is imported into a live survivor (or a
   freshly provisioned replacement), the group and steering tables are
   shrunk around it, and its pending xid requests are cancelled;
1. poll ``GlobalStats`` from every live OBI in each managed group —
   a successful poll is liveness evidence, a failed one is not;
2. let the :class:`~repro.controller.scaling.ScalingManager` decide;
3. on **scale-up**: copy session state from the template replica to the
   new one (so reassigned flows keep their verdicts — the OpenNF hook),
   then widen the steering hop;
4. on **scale-down**: fold the victim's session state into a surviving
   replica *before* the provisioner tears it down, then narrow steering;
5. sweep expired application requests from the xid multiplexer.

Drive it from any scheduler: ``scheduler.schedule_every(p, loop.tick)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.controller.migration import StateMigrator
from repro.controller.reconcile import AntiEntropyLoop
from repro.controller.scaling import ScalingAction, ScalingManager
from repro.controller.steering import TrafficSteering
from repro.protocol.errors import ProtocolError
from repro.transport.base import ChannelClosed

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.lease import LeaseManager
    from repro.controller.obc import OpenBoxController
    from repro.controller.replication import ReplicationHub


@dataclass
class TickReport:
    """What one orchestration tick observed and did."""

    at: float
    polled: list[str] = field(default_factory=list)
    poll_failures: list[str] = field(default_factory=list)
    actions: list[ScalingAction] = field(default_factory=list)
    migrations: list[tuple[str, str]] = field(default_factory=list)
    #: OBIs declared dead this tick.
    dead: list[str] = field(default_factory=list)
    #: Group members whose health reports show overload (degraded mode
    #: or admission-gate shedding) as of this tick.
    overloaded: list[str] = field(default_factory=list)
    #: (dead OBI, survivor that absorbed its role; "" if none found).
    failovers: list[tuple[str, str]] = field(default_factory=list)
    #: xids of application requests that timed out this tick.
    expired_xids: list[int] = field(default_factory=list)
    #: Cumulative controller-wide deploy-failure count at tick end.
    failed_deployments: int = 0
    #: Anti-entropy results this tick (PROTOCOL.md §10): OBIs whose
    #: running graph was adopted without a push, and OBIs that had the
    #: intended graph re-pushed because their reported digest diverged.
    reconcile_adopted: list[str] = field(default_factory=list)
    reconcile_pushed: list[str] = field(default_factory=list)
    #: Leadership this tick (PROTOCOL.md §12). Always True when the
    #: controller is not lease-managed; when it is, a tick without the
    #: lease does *nothing* southbound and stops here.
    leader: bool = True
    #: Epoch of the held lease (0 when not leading / not lease-managed).
    lease_epoch: int = 0
    #: Standbys that acknowledged the journal stream this tick.
    replicated: list[str] = field(default_factory=list)
    #: True when the controller spent this tick in journaled-read-only
    #: degraded mode (journal storage down; deploys fenced).
    degraded: bool = False
    #: True when this tick's resume probe rebuilt the journal and left
    #: degraded mode (a fresh fsync'd segment now holds live state).
    journal_resumed: bool = False


class OrchestrationLoop:
    """Periodic controller housekeeping over scaling groups."""

    def __init__(
        self,
        controller: "OpenBoxController",
        scaling: ScalingManager,
        steering: TrafficSteering | None = None,
        migrate_state: bool = True,
        #: Declare an OBI failed after this many consecutive deploy
        #: failures even if its keepalives still arrive (a live process
        #: that can no longer be (re)configured is not serving policy).
        deploy_failure_threshold: int = 3,
        #: Run an anti-entropy round each tick, converging every OBI's
        #: reported graph digest to current intent (PROTOCOL.md §10).
        anti_entropy: bool = True,
        #: Leadership lease (PROTOCOL.md §12): when set, every tick
        #: renews it first and a tick without the lease does nothing.
        lease: "LeaseManager | None" = None,
        #: Journal replication to hot standbys: when set, every leading
        #: tick ends by streaming the tick's journal delta.
        replication: "ReplicationHub | None" = None,
    ) -> None:
        self.controller = controller
        self.scaling = scaling
        self.steering = steering
        self.migrator = StateMigrator(controller) if migrate_state else None
        self.deploy_failure_threshold = deploy_failure_threshold
        self.reconciler = AntiEntropyLoop(controller) if anti_entropy else None
        self.lease = lease
        self.replication = replication
        self.reports: list[TickReport] = []
        #: Last successful state checkpoint per OBI, as
        #: ``{"generation": int, "entries": [...]}`` — the failover
        #: stage hands this to a survivor because a dead OBI can no
        #: longer be asked for its state. Legacy plain-list snapshots
        #: (pre-checkpoint format) are still understood.
        self.snapshots: dict[str, Any] = {}

    @staticmethod
    def _snapshot_entries(state: Any) -> list:
        """Flow entries of a snapshot, whatever its format."""
        if isinstance(state, dict):
            return state.get("entries", [])
        return state or []

    @staticmethod
    def _snapshot_generation(state: Any) -> int:
        return state.get("generation", 0) if isinstance(state, dict) else 0

    # ------------------------------------------------------------------
    # Stage 1: stats polling (also refreshes liveness evidence)
    # ------------------------------------------------------------------
    def _poll_stage(self, report: TickReport) -> None:
        for group in list(self.scaling._groups):
            for obi_id in self.scaling.group_members(group):
                if obi_id not in self.controller.obis:
                    continue
                try:
                    if self.controller.poll_stats(obi_id) is not None:
                        report.polled.append(obi_id)
                except (ChannelClosed, ProtocolError):
                    report.poll_failures.append(obi_id)

    # ------------------------------------------------------------------
    # Stage 0: failure detection and failover
    # ------------------------------------------------------------------
    def _failed_members(self, now: float) -> list[tuple[str, str]]:
        """(group, obi) pairs that must be failed over this tick."""
        dead = set(self.controller.stats.dead_obis(now))
        dead.update(
            obi_id
            for obi_id, count in self.controller.consecutive_deploy_failures.items()
            if count >= self.deploy_failure_threshold
        )
        failed: list[tuple[str, str]] = []
        for group in list(self.scaling._groups):
            for obi_id in self.scaling.group_members(group):
                if obi_id in dead and obi_id in self.controller.obis:
                    failed.append((group, obi_id))
        return failed

    def _failover_stage(self, report: TickReport, now: float) -> None:
        for group, obi_id in self._failed_members(now):
            report.dead.append(obi_id)
            self.controller.stats.record_failure(obi_id, now)
            members = self.scaling.group_members(group)
            survivor = next(
                (
                    m for m in members
                    if m != obi_id
                    and m in self.controller.obis
                    and self.controller.stats.is_live(m, now)
                ),
                None,
            )
            if survivor is None:
                # Last replica of its group died: provision a fresh
                # replacement (while the dead handle still exists as a
                # template), exactly as §3.3's "provision additional
                # service instances" prescribes.
                try:
                    survivor = self.scaling.provisioner.provision(obi_id)
                    self.scaling.add_member(group, survivor)
                except Exception:  # noqa: BLE001 - provisioning is best-effort
                    survivor = None
            # Hand the dead member's last checkpoint to the survivor so
            # re-steered flows keep their verdicts. The handoff carries
            # the checkpoint's state generation: if a partitioned ghost
            # of the same OBI already handed over newer state, the
            # survivor rejects this one as stale instead of regressing.
            state = self.snapshots.pop(obi_id, None)
            entries = self._snapshot_entries(state)
            if self.migrator is not None and survivor is not None and entries:
                try:
                    outcome = self.migrator.handoff(
                        obi_id, survivor,
                        self._snapshot_generation(state), entries,
                    )
                    if outcome.accepted:
                        report.migrations.append((obi_id, survivor))
                except (ChannelClosed, ProtocolError):
                    pass
            self.scaling.remove_member(group, obi_id)
            # Disconnecting cancels the dead OBI's pending xid requests
            # (via the stats tracker's mux hook) and notifies apps.
            self.controller.disconnect_obi(obi_id)
            if survivor is not None:
                # Re-run aggregation/deploy so the survivor carries the
                # current merged graph for the affected segment.
                try:
                    self.controller.deploy(survivor)
                except (ChannelClosed, ProtocolError):
                    pass
            if self.steering is not None:
                self.steering.update_replicas(
                    group, self.scaling.group_members(group)
                )
            report.failovers.append((obi_id, survivor or ""))

    # ------------------------------------------------------------------
    # Session-state snapshots (consumed by failover and scale-down)
    # ------------------------------------------------------------------
    def _snapshot_stage(self) -> None:
        if self.migrator is None:
            return
        for group in list(self.scaling._groups):
            for obi_id in self.scaling.group_members(group):
                if obi_id not in self.controller.obis:
                    continue
                try:
                    self.snapshots[obi_id] = self.migrator.export_checkpoint(
                        obi_id
                    )
                except (ChannelClosed, ProtocolError):
                    # Keep the previous snapshot: stale state beats none.
                    pass

    def tick(self) -> TickReport:
        """One round: poll, fail over, decide, migrate, re-steer."""
        now = self.controller.clock()
        report = TickReport(at=now)

        # -1. Leadership first: renew (or try to acquire) the lease.
        # Without it this controller does *nothing* this tick — no
        # polls, no deploys, no reconciliation — because every one of
        # those is an act of ownership the lease arbitrates (§12).
        if self.lease is not None:
            held = self.lease.tick(now)
            report.leader = held is not None
            if held is None:
                self.reports.append(report)
                return report
            report.lease_epoch = held.epoch
            # A fresh acquisition's epoch becomes the fencing token,
            # journaled durably before anything southbound below.
            self.controller.adopt_epoch(held.epoch)

        # -0.5. Storage health: while in journaled-read-only degraded
        # mode, every tick probes whether the journal storage healed and
        # rebuilds a fresh segment the moment it has — this is what makes
        # degradation *graceful* (automatic resume, no operator action).
        if self.controller.degraded:
            report.journal_resumed = self.controller.try_resume_journal()
        report.degraded = self.controller.degraded

        # 1. Poll stats first — answering a poll is proof of life, so a
        # healthy-but-quiet OBI is never misdeclared dead; a hung one
        # fails its poll and stays silent, so stage 0 catches it.
        self._poll_stage(report)

        # Record which members report data-plane overload: their
        # effective load is pinned at 1.0, so the scaling stage below
        # sees them as saturated regardless of lagging CPU samples.
        for group in list(self.scaling._groups):
            for obi_id in self.scaling.group_members(group):
                view = self.controller.stats.view(obi_id)
                if view is not None and view.overloaded:
                    report.overloaded.append(obi_id)

        # 0. Declare and recover from failures.
        self._failover_stage(report, now)

        # 0b. Anti-entropy: converge every survivor's reported graph
        # digest to current intent — catches OBIs that served headless
        # through a controller restart (adopted, no push) and ones that
        # missed a redeploy (re-pushed).
        # A degraded controller skips anti-entropy pushes: re-pushing a
        # graph it cannot journal would diverge intent from the record.
        if (
            self.reconciler is not None
            and not self.controller.superseded
            and not self.controller.degraded
        ):
            reconcile = self.reconciler.reconcile()
            report.reconcile_adopted = list(reconcile.adopted)
            report.reconcile_pushed = list(reconcile.pushed)

        # Snapshot session state for scale-down and the *next* failover.
        self._snapshot_stage()

        # 2-4. Scaling decisions with state-aware choreography.
        for action in self.scaling.evaluate(now):
            report.actions.append(action)
            members = self.scaling.group_members(action.group)
            if self.migrator is not None:
                if action.kind == "scale_up":
                    template = next(
                        (m for m in members
                         if m != action.obi_id and m in self.controller.obis),
                        None,
                    )
                    if template is not None:
                        self.migrator.migrate(template, action.obi_id)
                        report.migrations.append((template, action.obi_id))
                elif action.kind == "scale_down":
                    survivor = next(
                        (m for m in members if m in self.controller.obis), None
                    )
                    state = self.snapshots.get(action.obi_id)
                    entries = self._snapshot_entries(state)
                    if survivor is not None and entries:
                        self.migrator.import_state(survivor, entries)
                        report.migrations.append((action.obi_id, survivor))
            if self.steering is not None:
                self.steering.update_replicas(action.group, members)

        # 5. Sweep application requests that outlived their deadline.
        report.expired_xids = self.controller.mux.expire(now)
        report.failed_deployments = self.controller.failed_deployments

        # 6. Ship this tick's journal delta to the hot standbys, so the
        # replication lag at any crash is bounded by one tick.
        if self.replication is not None and not self.controller.superseded:
            report.replicated = self.replication.sync()
            if self.lease is not None and self.lease.lease is not None:
                self.replication.announce(
                    lease_remaining=max(
                        self.lease.lease.expires_at - now, 0.0
                    )
                )

        self.reports.append(report)
        return report
