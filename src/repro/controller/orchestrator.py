"""The orchestration loop: stats → scaling → migration → steering.

The paper's controller "can use this information to scale and provision
additional service instances, or merge the tasks of multiple
underutilized instances and take some of them down" (§3.3). This module
closes that loop as one periodic tick:

1. poll ``GlobalStats`` from every live OBI in each managed group;
2. let the :class:`~repro.controller.scaling.ScalingManager` decide;
3. on **scale-up**: copy session state from the template replica to the
   new one (so reassigned flows keep their verdicts — the OpenNF hook),
   then widen the steering hop;
4. on **scale-down**: fold the victim's session state into a surviving
   replica *before* the provisioner tears it down, then narrow steering.

Drive it from any scheduler: ``scheduler.schedule_every(p, loop.tick)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.controller.migration import StateMigrator
from repro.controller.scaling import ScalingAction, ScalingManager
from repro.controller.steering import TrafficSteering

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.obc import OpenBoxController


@dataclass
class TickReport:
    """What one orchestration tick observed and did."""

    at: float
    polled: list[str] = field(default_factory=list)
    actions: list[ScalingAction] = field(default_factory=list)
    migrations: list[tuple[str, str]] = field(default_factory=list)


class OrchestrationLoop:
    """Periodic controller housekeeping over scaling groups."""

    def __init__(
        self,
        controller: "OpenBoxController",
        scaling: ScalingManager,
        steering: TrafficSteering | None = None,
        migrate_state: bool = True,
    ) -> None:
        self.controller = controller
        self.scaling = scaling
        self.steering = steering
        self.migrator = StateMigrator(controller) if migrate_state else None
        self.reports: list[TickReport] = []

    def tick(self) -> TickReport:
        """One round: poll, decide, migrate, re-steer."""
        now = self.controller.clock()
        report = TickReport(at=now)

        # 1. Poll stats for every group member still connected.
        for group in list(self.scaling._groups):
            for obi_id in self.scaling.group_members(group):
                if obi_id in self.controller.obis:
                    if self.controller.poll_stats(obi_id) is not None:
                        report.polled.append(obi_id)

        # 2-4. Scaling decisions with state-aware choreography.
        #
        # Scale-down needs the victim's state saved *before* the
        # provisioner deprovisions it, so we pre-snapshot every member;
        # the snapshot for the chosen victim is imported afterwards.
        snapshots: dict[str, list] = {}
        if self.migrator is not None:
            for group in list(self.scaling._groups):
                for obi_id in self.scaling.group_members(group):
                    if obi_id in self.controller.obis:
                        snapshots[obi_id] = self.migrator.export_state(obi_id)

        for action in self.scaling.evaluate(now):
            report.actions.append(action)
            members = self.scaling.group_members(action.group)
            if self.migrator is not None:
                if action.kind == "scale_up":
                    template = next(
                        (m for m in members
                         if m != action.obi_id and m in self.controller.obis),
                        None,
                    )
                    if template is not None:
                        self.migrator.migrate(template, action.obi_id)
                        report.migrations.append((template, action.obi_id))
                elif action.kind == "scale_down":
                    survivor = next(
                        (m for m in members if m in self.controller.obis), None
                    )
                    state = snapshots.get(action.obi_id)
                    if survivor is not None and state:
                        self.migrator.import_state(survivor, state)
                        report.migrations.append((action.obi_id, survivor))
            if self.steering is not None:
                self.steering.update_replicas(action.group, members)

        self.reports.append(report)
        return report
