"""Splitting a processing graph between OBIs (paper §3.1, Figures 5-6).

"An OBI may be in charge of only part of a processing graph. ... each
OBI attaches metadata (using some encapsulation technique) to the packet
before sending it to the next OBI."

The canonical split — reproduced in Figure 6 — is at a header classifier
that has a hardware (TCAM) implementation: the first OBI performs only
the classification and ships the result as NSH metadata; the second OBI
decodes the metadata and applies the corresponding processing path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocks import Block, BlockClass
from repro.core.graph import GraphValidationError, ProcessingGraph

#: Metadata key carrying the upstream classification result.
CLASSIFY_RESULT_KEY = "openbox.classify_result"


@dataclass
class SplitGraphs:
    """The two halves of a split processing graph."""

    first: ProcessingGraph
    second: ProcessingGraph
    spi: int
    metadata_key: str = CLASSIFY_RESULT_KEY


def split_at_classifier(
    graph: ProcessingGraph,
    classifier_name: str,
    spi: int = 1,
    first_implementation: str | None = "tcam",
    trunk_device: str = "sfc0",
) -> SplitGraphs:
    """Split ``graph`` at ``classifier_name`` into two OBI graphs.

    The first graph contains everything up to and including the
    classifier; each classifier outcome is recorded with ``SetMetadata``,
    NSH-encapsulated, and emitted on ``trunk_device`` (Figure 6(a)). The
    second graph decapsulates, routes on the metadata with a
    ``MetadataClassifier``, and continues with the original subtrees
    (Figure 6(b)).

    ``first_implementation`` pins the classifier's implementation in the
    first OBI (default: the simulated TCAM — the hardware-accelerator
    use case the paper motivates the split with).
    """
    if classifier_name not in graph.blocks:
        raise GraphValidationError(f"no block named {classifier_name!r}")
    classifier = graph.blocks[classifier_name]
    if classifier.block_class != BlockClass.CLASSIFIER:
        raise GraphValidationError(f"{classifier_name!r} is not a classifier")

    descendants = _strict_descendants(graph, classifier_name)
    upstream = set(graph.blocks) - descendants - {classifier_name}
    # A clean split needs the classifier to dominate its subtrees: no
    # edges from upstream blocks into the descendants.
    for connector in graph.connectors:
        if connector.src in upstream and connector.dst in descendants:
            raise GraphValidationError(
                f"block {connector.dst!r} is reachable around the classifier; "
                f"cannot split at {classifier_name!r}"
            )

    # ---------------- First OBI: classify + export metadata ----------
    first = ProcessingGraph(f"{graph.name}:classify")
    for name in upstream | {classifier_name}:
        block = graph.blocks[name]
        clone = block.clone(name=block.name)
        if name == classifier_name and first_implementation is not None:
            clone.implementation = first_implementation
        first.add_block(clone)
    for connector in graph.connectors:
        if connector.src in first.blocks and connector.dst in first.blocks:
            first.connect(connector.src, connector.dst, connector.src_port)

    encap = Block("NshEncapsulate", name="split_encap", config={"spi": spi})
    trunk = Block("ToDevice", name="split_out", config={"devname": trunk_device})
    first.add_blocks([encap, trunk])
    first.connect(encap, trunk, 0)

    classifier_ports = sorted(
        connector.src_port for connector in graph.out_connectors(classifier_name)
    )

    def drops_immediately(port: int) -> bool:
        """True iff the subtree on ``port`` is a bare absorbing Discard.

        "Only if the packet requires further processing does the first
        OBI store the classification result as metadata" (paper §3.1) —
        packets whose fate is already decided are dropped locally instead
        of being shipped to the second OBI.
        """
        successor = graph.successor_on_port(classifier_name, port)
        return (
            successor is not None
            and graph.blocks[successor].type == "Discard"
            and not graph.out_connectors(successor)
        )

    forwarded_ports: list[int] = []
    for port in classifier_ports:
        if drops_immediately(port):
            local_drop = Block("Discard", name=f"split_drop_{port}")
            first.add_block(local_drop)
            first.connect(classifier_name, local_drop, port)
            continue
        forwarded_ports.append(port)
        marker = Block(
            "SetMetadata",
            name=f"split_mark_{port}",
            config={"values": {CLASSIFY_RESULT_KEY: port}},
        )
        first.add_block(marker)
        first.connect(classifier_name, marker, port)
        first.connect(marker, encap, 0)
    if not forwarded_ports:
        raise GraphValidationError(
            "every classifier branch drops; splitting is pointless"
        )
    first.validate()

    # ---------------- Second OBI: import metadata + continue ---------
    second = ProcessingGraph(f"{graph.name}:process")
    entry = Block("FromDevice", name="split_in", config={"devname": trunk_device})
    decap = Block("NshDecapsulate", name="split_decap", config={})
    router = Block(
        "MetadataClassifier",
        name="split_router",
        config={
            "key": CLASSIFY_RESULT_KEY,
            "rules": {str(port): index for index, port in enumerate(forwarded_ports)},
            "default_port": 0,
        },
    )
    second.add_blocks([entry, decap, router])
    second.connect(entry, decap, 0)
    second.connect(decap, router, 0)

    # Only subtrees of forwarded branches travel to the second OBI;
    # locally-dropped branches' Discard blocks stay out of it.
    forwarded_descendants: set[str] = set()
    stack = [
        graph.successor_on_port(classifier_name, port) for port in forwarded_ports
    ]
    stack = [name for name in stack if name is not None]
    while stack:
        current = stack.pop()
        if current in forwarded_descendants:
            continue
        forwarded_descendants.add(current)
        stack.extend(connector.dst for connector in graph.out_connectors(current))

    for name in forwarded_descendants:
        second.add_block(graph.blocks[name].clone(name=name))
    for connector in graph.connectors:
        if connector.src in forwarded_descendants and connector.dst in forwarded_descendants:
            second.connect(connector.src, connector.dst, connector.src_port)
    for index, port in enumerate(forwarded_ports):
        successor = graph.successor_on_port(classifier_name, port)
        if successor is not None:
            second.connect(router.name, successor, index)
    second.validate()

    return SplitGraphs(first=first, second=second, spi=spi)


def deploy_split(
    controller,
    hw_obi_id: str,
    sw_obi_ids: list[str],
    classifier_name: str | None = None,
    spi: int = 1,
    trunk_device: str = "sfc0",
) -> SplitGraphs:
    """Compute, split, and deploy one OBI group's merged graph.

    The Figure 5 deployment in one call: the merged graph that would run
    on ``hw_obi_id`` is split at ``classifier_name`` (default: its first
    header classifier); the classification half goes to the hardware OBI
    with the TCAM implementation, the processing half to every software
    replica. The caller wires the forwarding plane (e.g. a multiplexer
    on ``trunk_device``) — see ``examples/distributed_dataplane.py``.
    """
    from repro.protocol.errors import ErrorCode, ProtocolError
    from repro.protocol.messages import SetProcessingGraphRequest

    deployment = controller.compute_deployment(hw_obi_id)
    if deployment is None:
        raise ProtocolError(
            ErrorCode.INVALID_GRAPH, f"no applications apply to {hw_obi_id!r}"
        )
    merged = deployment.graph
    if classifier_name is None:
        classifier_name = next(
            (block.name for block in merged.blocks.values()
             if block.type == "HeaderClassifier"),
            None,
        )
        if classifier_name is None:
            raise ProtocolError(
                ErrorCode.INVALID_GRAPH,
                f"merged graph for {hw_obi_id!r} has no HeaderClassifier to split at",
            )
    split = split_at_classifier(
        merged, classifier_name, spi=spi, trunk_device=trunk_device
    )

    def push(obi_id: str, graph: ProcessingGraph) -> None:
        handle = controller.obis[obi_id]
        response = handle.channel.request(
            SetProcessingGraphRequest(graph=graph.to_dict())
        )
        if not getattr(response, "ok", False):
            raise ProtocolError(
                ErrorCode.INVALID_GRAPH,
                f"OBI {obi_id!r} rejected split graph: {response}",
            )

    push(hw_obi_id, split.first)
    for obi_id in sw_obi_ids:
        push(obi_id, split.second)
    return split


def _strict_descendants(graph: ProcessingGraph, name: str) -> set[str]:
    seen: set[str] = set()
    stack = [connector.dst for connector in graph.out_connectors(name)]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(connector.dst for connector in graph.out_connectors(current))
    return seen
