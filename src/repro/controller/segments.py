"""Hierarchical network segments (paper §3.3).

"Different segments can describe different departments, administrative
domains, or tenants ... Segments are hierarchical, so a segment can
contain sub-segments. Each OBI belongs to a specific segment."

Segments are named by slash-separated paths, e.g. ``corp/engineering``.
An application statement scoped to ``corp`` applies to every OBI in
``corp`` or any sub-segment — the micro-segmentation model the paper
calls out.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _parts(path: str) -> tuple[str, ...]:
    return tuple(part for part in path.strip("/").split("/") if part)


@dataclass
class Segment:
    """A node in the segment tree."""

    name: str
    path: str
    parent: "Segment | None" = None
    children: dict[str, "Segment"] = field(default_factory=dict)
    #: Per-segment free-form policy attributes (tenant, SLA class, ...).
    attributes: dict[str, str] = field(default_factory=dict)


class SegmentHierarchy:
    """The segment tree plus scope queries."""

    def __init__(self) -> None:
        self._root = Segment(name="", path="")
        self._by_path: dict[tuple[str, ...], Segment] = {(): self._root}

    def add(self, path: str, **attributes: str) -> Segment:
        """Create (or fetch) the segment at ``path``, creating ancestors."""
        parts = _parts(path)
        node = self._root
        for depth, name in enumerate(parts):
            key = parts[: depth + 1]
            child = self._by_path.get(key)
            if child is None:
                child = Segment(
                    name=name,
                    path="/".join(key),
                    parent=node,
                )
                node.children[name] = child
                self._by_path[key] = child
            node = child
        node.attributes.update(attributes)
        return node

    def get(self, path: str) -> Segment | None:
        return self._by_path.get(_parts(path))

    def exists(self, path: str) -> bool:
        return _parts(path) in self._by_path

    def in_scope(self, obi_segment: str, scope: str) -> bool:
        """True iff an OBI in ``obi_segment`` is covered by ``scope``.

        The empty scope means "everywhere". An OBI in a segment unknown
        to the hierarchy is still matched by prefix, so registration
        order (segments vs OBIs) does not matter.
        """
        scope_parts = _parts(scope)
        obi_parts = _parts(obi_segment)
        return obi_parts[: len(scope_parts)] == scope_parts

    def could_match(self, scope: str) -> bool:
        """Could any OBI of the known topology fall under ``scope``?

        True when ``scope`` is an ancestor-or-self of a known segment
        (it covers that segment's OBIs) or a descendant of one (an OBI
        may connect deeper than any declared path). An *empty* hierarchy
        declines to judge and matches everything — validation only bites
        once a topology has been declared.
        """
        scope_parts = _parts(scope)
        if not scope_parts:
            return True
        known = [key for key in self._by_path if key]
        if not known:
            return True
        return any(
            key[: len(scope_parts)] == scope_parts
            or scope_parts[: len(key)] == key
            for key in known
        )

    def descendants(self, path: str) -> list[Segment]:
        """The segment at ``path`` and everything below it."""
        start = self.get(path)
        if start is None:
            return []
        result: list[Segment] = []
        stack = [start]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(node.children.values())
        return result

    def all_paths(self) -> list[str]:
        return sorted(
            "/".join(key) for key in self._by_path if key
        )
