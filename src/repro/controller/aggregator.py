"""Per-OBI graph selection and merging.

"Upon connection of an OBI, the OBC determines the processing graphs
that apply to this OBI in accordance with its location in the segment
hierarchy. Then, for each OBI, the controller merges the corresponding
graphs to a single graph and sends this merged processing graph to the
instance" (paper §3.3).

Applications flagged non-mergeable ("Applications that are expected to
change their logic too frequently may be marked so that the merge
algorithm will not be applied on them", §3.4) are chained naively in
priority order; runs of consecutive mergeable applications are fully
merged.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import groupby

from repro.controller.apps import OpenBoxApplication
from repro.controller.segments import SegmentHierarchy
from repro.core.graph import ProcessingGraph
from repro.core.merge import MergePolicy, MergeResult, merge_graphs, naive_merge


def _stamp_ownership(graph: ProcessingGraph, app_name: str) -> ProcessingGraph:
    """Copy ``graph`` with every unlabeled block owned by ``app_name``.

    Ownership labels survive merging (clones keep them), which is how
    the controller later routes handle requests and demultiplexes alerts;
    blocks the merge synthesizes itself (cross-product classifiers of
    several tenants) end up with no owner and stay unaddressable.
    """
    stamped = graph.copy()
    for block in stamped.blocks.values():
        if block.origin_app is None:
            block.origin_app = app_name
    return stamped


@dataclass
class AggregationResult:
    """The deployable graph for one OBI plus merge provenance."""

    graph: ProcessingGraph
    app_names: list[str]
    merge_results: list[MergeResult]

    @property
    def used_naive(self) -> bool:
        return any(result.used_naive for result in self.merge_results)

    def origin_map(self) -> dict[str, str | None]:
        """Deployed block name -> originating application.

        The provenance view trace attribution rides on: ``None`` marks a
        block the merge synthesized across tenants (e.g. a cross-product
        classifier), which belongs to no single application.
        """
        return {
            name: block.origin_app for name, block in self.graph.blocks.items()
        }


class GraphAggregator:
    """Builds each OBI's deployed graph from the application set."""

    def __init__(
        self,
        hierarchy: SegmentHierarchy,
        policy: MergePolicy | None = None,
        optimize: bool = True,
    ) -> None:
        self.hierarchy = hierarchy
        self.policy = policy or MergePolicy()
        #: Apply the §6 control-level optimizations to deployable graphs.
        self.optimize = optimize

    def applicable_graphs(
        self,
        applications: list[OpenBoxApplication],
        obi_id: str,
        obi_segment: str,
    ) -> list[tuple[OpenBoxApplication, ProcessingGraph]]:
        """Graphs applying to an OBI, ordered by application priority.

        Priority ties break by application name so deployment is
        deterministic regardless of registration order.
        """
        selected: list[tuple[OpenBoxApplication, ProcessingGraph]] = []
        for app in sorted(applications, key=lambda a: (a.priority, a.name)):
            for statement in app.statements():
                if statement.applies_to(obi_id, obi_segment, self.hierarchy):
                    selected.append((app, _stamp_ownership(statement.graph, app.name)))
        return selected

    def aggregate(
        self,
        applications: list[OpenBoxApplication],
        obi_id: str,
        obi_segment: str,
    ) -> AggregationResult | None:
        """Build the merged graph for one OBI; None if nothing applies."""
        selected = self.applicable_graphs(applications, obi_id, obi_segment)
        if not selected:
            return None

        # Merge consecutive runs of mergeable apps; chain runs naively.
        merge_results: list[MergeResult] = []
        run_graphs: list[ProcessingGraph] = []
        for mergeable, run in groupby(selected, key=lambda item: item[0].mergeable):
            graphs = [graph for _app, graph in run]
            if mergeable:
                result = merge_graphs(graphs, self.policy)
                merge_results.append(result)
                run_graphs.append(result.graph)
            else:
                run_graphs.extend(graphs)

        # Copy so the deployed graph never aliases an application's own
        # statement graph (applications may mutate theirs later).
        final = run_graphs[0].copy() if len(run_graphs) == 1 else naive_merge(run_graphs)
        if self.optimize:
            from repro.controller.optimizer import optimize_graph
            optimize_graph(final)
        final.validate()
        return AggregationResult(
            graph=final,
            app_names=[app.name for app, _graph in selected],
            merge_results=merge_results,
        )
