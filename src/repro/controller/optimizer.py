"""Control-level graph optimization beyond merging (paper §6).

"The OBC can provide optimization to user-defined processing graphs, in
addition to that provided by the merge algorithm ... it could reorder
blocks or merge them, or even remove or replace blocks."

These rewrites are semantics-preserving on arbitrary DAGs (unlike the
compression pass, which needs tree form) and are applied by the
controller to each deployable graph:

* **rule pruning** — each HeaderClassifier's rule set is run through
  duplicate/shadow elimination;
* **no-op elision** — blocks that provably do nothing (empty SetMetadata,
  substitution-less rewriters, zero DelayShaper, pass-through Tee) are
  spliced out;
* **trivial-classifier elision** — a classifier with no rules routes
  every packet to its default port: replace with a direct edge;
* **dead-branch pruning** — classifier ports no rule (nor the default)
  maps to, and blocks unreachable from the entry, are removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocks import Block
from repro.core.classify.header import HeaderRuleSet
from repro.core.graph import ProcessingGraph


@dataclass
class OptimizationReport:
    """What the optimizer changed."""

    rules_pruned: int = 0
    noop_blocks_removed: int = 0
    trivial_classifiers_removed: int = 0
    dead_blocks_removed: int = 0
    details: list[str] = field(default_factory=list)

    @property
    def total_changes(self) -> int:
        return (
            self.rules_pruned + self.noop_blocks_removed
            + self.trivial_classifiers_removed + self.dead_blocks_removed
        )


def _is_noop(block: Block) -> bool:
    if block.type == "SetMetadata":
        return not block.config.get("values")
    if block.type == "HeaderPayloadRewriter":
        return not block.config.get("substitutions")
    if block.type == "DelayShaper":
        return float(block.config.get("delay", 0.0)) == 0.0
    if block.type == "NetworkHeaderFieldRewriter":
        return not block.config.get("fields")
    return False


def _splice_out(graph: ProcessingGraph, name: str) -> bool:
    """Remove a single-output block, rewiring parents to its child.

    Only applies when the block emits on port 0 to exactly one child;
    returns False when the shape does not allow a safe splice.
    """
    outs = graph.out_connectors(name)
    if len(outs) != 1 or outs[0].src_port != 0:
        return False
    child = outs[0].dst
    for connector in graph.in_connectors(name):
        graph.remove_connector(connector)
        graph.connect(connector.src, child, connector.src_port)
    graph.remove_block(name)
    return True


def _prune_classifier_rules(graph: ProcessingGraph, report: OptimizationReport) -> None:
    for block in graph.blocks.values():
        if block.type != "HeaderClassifier":
            continue
        ruleset = HeaderRuleSet.from_config(block.config)
        pruned = ruleset.prune_shadowed().prune_default_tail()
        removed = len(ruleset) - len(pruned)
        if removed > 0:
            block.config.update(pruned.to_config())
            report.rules_pruned += removed
            report.details.append(
                f"pruned {removed} shadowed/duplicate rules from {block.name}"
            )


def _remove_noops(graph: ProcessingGraph, report: OptimizationReport) -> None:
    changed = True
    while changed:
        changed = False
        for name in list(graph.blocks):
            block = graph.blocks.get(name)
            if block is None or not _is_noop(block):
                continue
            if _splice_out(graph, name):
                report.noop_blocks_removed += 1
                report.details.append(f"removed no-op block {name} ({block.type})")
                changed = True


def _remove_trivial_classifiers(
    graph: ProcessingGraph, report: OptimizationReport
) -> None:
    for name in list(graph.blocks):
        block = graph.blocks.get(name)
        if block is None or block.type != "HeaderClassifier":
            continue
        if block.config.get("rules"):
            continue
        default = int(block.config.get("default_port", 0))
        child = graph.successor_on_port(name, default)
        if child is None:
            continue
        # Detach non-default children first so the splice is unambiguous.
        for connector in graph.out_connectors(name):
            if connector.src_port != default:
                graph.remove_connector(connector)
        for connector in graph.in_connectors(name):
            graph.remove_connector(connector)
            graph.connect(connector.src, child, connector.src_port)
        graph.remove_block(name)
        report.trivial_classifiers_removed += 1
        report.details.append(f"elided rule-less classifier {name}")


def _prune_dead(graph: ProcessingGraph, report: OptimizationReport) -> None:
    # Dead classifier ports: no rule (and not the default) maps there.
    for name in list(graph.blocks):
        block = graph.blocks.get(name)
        if block is None or block.type != "HeaderClassifier":
            continue
        live = {int(rule.get("port", 0)) for rule in block.config.get("rules", ())}
        live.add(int(block.config.get("default_port", 0)))
        for connector in graph.out_connectors(name):
            if connector.src_port not in live:
                graph.remove_connector(connector)
                report.details.append(
                    f"cut dead port {connector.src_port} of {name}"
                )
    # Unreachable blocks.
    roots = graph.roots()
    entry_roots = [
        name for name in roots
        if graph.blocks[name].type in ("FromDevice", "FromDump")
    ] or roots[:1]
    reachable: set[str] = set()
    stack = list(entry_roots)
    while stack:
        current = stack.pop()
        if current in reachable:
            continue
        reachable.add(current)
        stack.extend(graph.successors(current))
    for name in [name for name in graph.blocks if name not in reachable]:
        graph.remove_block(name)
        report.dead_blocks_removed += 1
        report.details.append(f"removed unreachable block {name}")


def optimize_graph(graph: ProcessingGraph) -> OptimizationReport:
    """Apply all control-level optimizations to ``graph`` in place."""
    report = OptimizationReport()
    _prune_classifier_rules(graph, report)
    _remove_trivial_classifiers(graph, report)
    _remove_noops(graph, report)
    _prune_dead(graph, report)
    graph.validate()
    return report
