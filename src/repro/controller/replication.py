"""Controller replication: journal streaming to hot standbys (§12).

PR 5's crash recovery rebuilt a controller from its *local* journal —
fine when the host survives, useless when it does not. This module
replicates the journal to standby controllers while the leader is
alive, so leadership can move in seconds instead of waiting for a
human and a disk:

* the **leader** runs a :class:`ReplicationHub` that tails its own
  :class:`~repro.controller.journal.StateJournal` with segment-offset
  cursors (:meth:`StateJournal.read_since`) and ships deltas as
  ``JournalStream`` messages — or a full catch-up **snapshot** when a
  replica's cursor predates a compaction;
* each **standby** runs a :class:`StandbyController`: not a live
  controller at all, but a journal sink that fsyncs every streamed
  record into its own local journal file and acks durable progress
  with ``ReplicaAck``. The standby holds no OBI connections, pushes
  nothing, and answers nothing but the replication protocol — it
  cannot split the brain because it has no mouth;
* on failover (the incumbent's lease expired — see
  :mod:`repro.controller.lease`), :meth:`StandbyController.take_over`
  turns the replica journal into a live controller via the *existing*
  :meth:`OpenBoxController.recover` path, then durably adopts the new
  lease epoch as its controller generation **before any OBI contact**
  — the same fencing OBIs already enforce, now minted by the lease
  store instead of a local counter.

Epoch fencing runs in both directions: a stream stamped with an epoch
below the replica's high-water mark is rejected ``stale_generation``
(a deposed leader must not overwrite its likely successor's journal),
and a ``ReplicaAck`` carrying a higher epoch than the leader's own
tells the leader it has been superseded without waiting for an OBI to
say so.
"""

from __future__ import annotations

import collections
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.controller.journal import (
    JournalCursor,
    JournalState,
    StateJournal,
)
from repro.durable import LOCAL, Storage
from repro.protocol.errors import ErrorCode
from repro.protocol.messages import (
    ErrorMessage,
    JournalStream,
    LeaseAnnounce,
    Message,
    ReplicaAck,
)
from repro.transport.base import ChannelClosed

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.lease import Lease
    from repro.controller.obc import OpenBoxController


@dataclass
class ReplicaLink:
    """The leader's bookkeeping for one attached standby."""

    replica_id: str
    channel: Any
    #: Highest cursor the replica has durably acknowledged.
    cursor: JournalCursor = field(default_factory=JournalCursor)
    #: Streams shipped / acks received / send failures, for lag views.
    streams_sent: int = 0
    acks: int = 0
    failures: int = 0


class ReplicationHub:
    """Leader-side journal streaming to attached standbys.

    Drive :meth:`sync` from the orchestration tick (wired there by
    default): each call flushes the leader journal, computes every
    replica's missing suffix from its acknowledged cursor, and ships
    it. Failures are absorbed — a slow or dead replica never blocks
    the control loop; it just falls behind and is caught up (by delta
    or snapshot) when reachable again.
    """

    def __init__(
        self,
        controller: "OpenBoxController",
        leader_id: str = "leader",
        endpoints: list[str] | None = None,
    ) -> None:
        if controller.journal is None:
            raise ValueError("replication requires a journaled controller")
        self.controller = controller
        self.leader_id = leader_id
        #: Ordered controller endpoints advertised in LeaseAnnounce —
        #: the re-homing dial list OBIs fall back on at failover.
        self.endpoints = list(endpoints or [])
        self.replicas: dict[str, ReplicaLink] = {}

    # ------------------------------------------------------------------
    def attach(self, replica_id: str, channel: Any) -> ReplicaLink:
        """Register a standby; first sync ships a full snapshot."""
        link = ReplicaLink(replica_id=replica_id, channel=channel)
        self.replicas[replica_id] = link
        return link

    def detach(self, replica_id: str) -> None:
        self.replicas.pop(replica_id, None)

    def lag(self, replica_id: str) -> int:
        """Records the replica trails the leader journal by (same
        segment), or -1 when it needs a snapshot catch-up."""
        link = self.replicas.get(replica_id)
        journal = self.controller.journal
        if link is None or journal is None:
            return -1
        if link.cursor.segment != journal.segment:
            return -1
        return max(journal.record_count - link.cursor.offset, 0)

    def _absorb_ack(self, link: ReplicaLink, response: Message | None) -> bool:
        if isinstance(response, ReplicaAck):
            link.cursor = JournalCursor(response.segment, response.offset)
            link.acks += 1
            if response.epoch > self.controller.generation:
                self.controller.superseded = True
            return True
        if (
            isinstance(response, ErrorMessage)
            and response.code == ErrorCode.STALE_GENERATION
        ):
            # The replica has witnessed a newer leader: we are deposed.
            self.controller.superseded = True
        link.failures += 1
        return False

    def sync(self, replica_id: str | None = None) -> list[str]:
        """Stream pending records; returns the replicas that acked.

        A deposed leader (``superseded``) streams nothing — its journal
        must not overwrite a successor's replica. A *degraded* leader
        (journal storage refusing writes) streams nothing either: the
        on-disk journal is known-stale, and ``read_since`` could not
        flush it anyway; replicas catch up via the snapshot path once
        the journal is rebuilt.
        """
        if self.controller.superseded or self.controller.journal is None:
            return []
        if self.controller.degraded:
            return []
        acked: list[str] = []
        targets = (
            [self.replicas[replica_id]]
            if replica_id is not None and replica_id in self.replicas
            else list(self.replicas.values())
        )
        for link in targets:
            try:
                batch = self.controller.journal.read_since(link.cursor)
            except OSError as exc:
                # The leader's own disk refused the pre-stream flush:
                # same condition _journal sheds on — degrade, stop.
                self.controller._enter_degraded(str(exc))
                return acked
            if not batch.records and not batch.snapshot:
                acked.append(link.replica_id)  # already caught up
                continue
            stream = JournalStream(
                leader_id=self.leader_id,
                epoch=self.controller.generation,
                snapshot=batch.snapshot,
                segment=batch.cursor.segment,
                offset=batch.cursor.offset,
                records=batch.records,
            )
            try:
                response = link.channel.request(stream)
            except ChannelClosed:
                link.failures += 1
                continue
            link.streams_sent += 1
            if self._absorb_ack(link, response):
                acked.append(link.replica_id)
        return acked

    def announce(self, lease_remaining: float = 0.0) -> list[str]:
        """Send LeaseAnnounce (leadership + re-homing endpoints) to
        every standby and every connected OBI; returns who heard it."""
        heard: list[str] = []
        message_of = lambda: LeaseAnnounce(  # noqa: E731 - fresh xid per send
            leader_id=self.leader_id,
            epoch=self.controller.generation,
            lease_remaining=lease_remaining,
            endpoints=list(self.endpoints),
        )
        for link in self.replicas.values():
            try:
                link.channel.notify(message_of())
            except ChannelClosed:
                link.failures += 1
                continue
            heard.append(link.replica_id)
        for obi_id, handle in list(self.controller.obis.items()):
            if handle.channel is None:
                continue
            try:
                handle.channel.notify(message_of())
            except ChannelClosed:
                continue
            heard.append(obi_id)
        return heard


class StandbyController:
    """A hot standby: a durable, fenced sink for the leader's journal.

    Wire ``handle_message`` as the channel handler on the standby's
    endpoint. Every ``JournalStream`` batch is fsynced into the local
    replica journal before it is acked (``fsync_every=1``: an acked
    record is never lost), duplicates from retried streams are absorbed
    by xid dedup, and stale-epoch streams are fenced. At failover,
    :meth:`take_over` promotes the replica journal into a live
    controller through ``OpenBoxController.recover``.
    """

    def __init__(
        self,
        replica_id: str,
        journal_path: str | os.PathLike[str],
        clock: Callable[[], float] | None = None,
        storage: Storage | None = None,
    ) -> None:
        self.replica_id = replica_id
        self.path = os.fspath(journal_path)
        self.clock = clock
        self.storage = storage or LOCAL
        # A crash mid-catch-up can leave the snapshot temp file behind;
        # the replica journal itself is intact (the replace never
        # happened), so the stale attempt is discarded.
        self.storage.remove(self.path + ".catchup")
        self.journal = StateJournal(
            self.path, fsync_every=1, storage=self.storage
        )
        #: Highest leader epoch witnessed on the stream; the fence.
        self.highest_epoch = 0
        # A replica journal inherited from a previous run already
        # encodes the epoch fence: restore it so a deposed leader
        # cannot stream to a freshly restarted standby.
        replayed = StateJournal.replay(self.path)
        if replayed.records:
            self.highest_epoch = replayed.state.generation
        self.leader_id = ""
        self.endpoints: list[str] = []
        self.records_applied = 0
        self.snapshots_received = 0
        self.streams_received = 0
        self.stale_streams_rejected = 0
        self.duplicate_streams = 0
        #: Streams refused because the replica's own disk failed.
        self.storage_failures = 0
        self._response_cache: collections.OrderedDict[int, Message] = (
            collections.OrderedDict()
        )
        self._response_cache_limit = 64
        self.promoted = False

    # ------------------------------------------------------------------
    def state(self) -> JournalState:
        """The logical controller state the replica currently encodes."""
        return StateJournal.replay(self.path).state

    def cursor(self) -> JournalCursor:
        return self.journal.cursor()

    # ------------------------------------------------------------------
    def _replace_journal(self, records: list[dict[str, Any]]) -> None:
        """Snapshot catch-up: atomically replace the replica journal.

        Failure anywhere leaves the old replica journal authoritative:
        the temp attempt is removed, the journal handle reopened, and
        the error propagates so the stream is *not* acked (the leader
        retries the snapshot later).
        """
        self.journal.close()
        tmp_path = self.path + ".catchup"
        try:
            with self.storage.open(tmp_path, "w") as tmp:
                for record in records:
                    tmp.write(
                        json.dumps(record, separators=(",", ":")) + "\n"
                    )
                self.storage.fsync(tmp)
            self.storage.replace(tmp_path, self.path)
        except OSError:
            self.storage.remove(tmp_path)
            self.journal = StateJournal(
                self.path, fsync_every=1, storage=self.storage
            )
            raise
        self.journal = StateJournal(
            self.path, fsync_every=1, storage=self.storage
        )

    def _ack(self, xid: int) -> ReplicaAck:
        cursor = self.journal.cursor()
        return ReplicaAck(
            xid=xid,
            replica_id=self.replica_id,
            epoch=self.highest_epoch,
            segment=cursor.segment,
            offset=cursor.offset,
        )

    def handle_message(self, message: Message) -> Message | None:
        """Replication protocol endpoint (JournalStream, LeaseAnnounce)."""
        if self.promoted:
            # A promoted standby's journal belongs to a live controller
            # now; late streams from the old leader are fenced.
            return ErrorMessage(
                xid=message.xid,
                code=ErrorCode.STALE_GENERATION,
                detail=f"replica {self.replica_id!r} was promoted at epoch "
                       f"{self.highest_epoch}",
            )
        if isinstance(message, LeaseAnnounce):
            if message.epoch and message.epoch < self.highest_epoch:
                self.stale_streams_rejected += 1
                return ErrorMessage(
                    xid=message.xid,
                    code=ErrorCode.STALE_GENERATION,
                    detail=f"epoch {message.epoch} is stale; replica has "
                           f"witnessed {self.highest_epoch}",
                )
            self.highest_epoch = max(self.highest_epoch, message.epoch)
            self.leader_id = message.leader_id
            if message.endpoints:
                self.endpoints = list(message.endpoints)
            return self._ack(message.xid)
        if isinstance(message, JournalStream):
            return self._apply_stream(message)
        return ErrorMessage(
            xid=message.xid,
            code=ErrorCode.UNKNOWN_MESSAGE,
            detail=f"standby cannot handle {message.TYPE}",
        )

    def _apply_stream(self, stream: JournalStream) -> Message:
        # Fence before dedup, exactly like the OBI's generation guard:
        # a deposed leader's xids belong to a dead number space.
        if stream.epoch and stream.epoch < self.highest_epoch:
            self.stale_streams_rejected += 1
            return ErrorMessage(
                xid=stream.xid,
                code=ErrorCode.STALE_GENERATION,
                detail=f"stream epoch {stream.epoch} is stale; replica has "
                       f"witnessed {self.highest_epoch}",
            )
        cached = self._response_cache.get(stream.xid)
        if cached is not None:
            self.duplicate_streams += 1
            return cached
        self.highest_epoch = max(self.highest_epoch, stream.epoch)
        if stream.leader_id:
            self.leader_id = stream.leader_id
        self.streams_received += 1
        try:
            if stream.snapshot:
                self._replace_journal(stream.records)
                self.snapshots_received += 1
            else:
                for record in stream.records:
                    self.journal.append(record)
                self.journal.flush()
        except OSError as exc:
            # Replica storage refused: the batch is NOT acked (the
            # cursor the leader holds stays put and the records are
            # re-streamed later). Not cached either — a retry of this
            # xid must retry the write, not replay the refusal.
            self.storage_failures += 1
            return ErrorMessage(
                xid=stream.xid,
                code=ErrorCode.INTERNAL_ERROR,
                detail=f"replica storage failed: {exc}",
            )
        self.records_applied += len(stream.records)
        response = self._ack(stream.xid)
        self._response_cache[stream.xid] = response
        while len(self._response_cache) > self._response_cache_limit:
            self._response_cache.popitem(last=False)
        return response

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def take_over(
        self,
        lease: "Lease",
        applications: list | tuple = (),
        **recover_kwargs: Any,
    ) -> "OpenBoxController":
        """Promote the replica journal into a live controller.

        Preconditions are the caller's lease discipline: ``lease`` must
        be a grant from the store (only possible after the incumbent's
        lease expired). Recovery replays the replica journal (PR 5's
        longest-valid-prefix machinery, unchanged), then the lease
        epoch is journaled durably as the controller generation —
        **before any OBI contact** — so every southbound message the
        new leader ever sends is fenced above the old leader's.
        """
        from repro.controller.obc import OpenBoxController

        if lease.epoch < self.highest_epoch:
            raise ValueError(
                f"refusing takeover with stale epoch {lease.epoch}: replica "
                f"has witnessed {self.highest_epoch}"
            )
        self.journal.close()
        controller = OpenBoxController.recover(
            self.path,
            applications=applications,
            clock=recover_kwargs.pop("clock", self.clock),
            **recover_kwargs,
        )
        controller.adopt_epoch(lease.epoch)
        self.promoted = True
        self.highest_epoch = max(self.highest_epoch, lease.epoch)
        return controller
