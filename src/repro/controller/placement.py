"""NF placement across candidate OBIs.

The paper defers the full placement problem to Slick [2] ("the solutions
to the placement problems presented in [2] can be implemented in the
OpenBox control plane"); this module implements the controller-side
mechanism plus a sensible default policy:

* candidates are filtered by capability (an OBI must implement every
  block type in the graph) and segment scope;
* among feasible OBIs, a greedy scorer prefers (1) co-locating graphs of
  the same chain — which is what enables merging — and (2) the most
  spare capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graph import ProcessingGraph


@dataclass
class PlacementCandidate:
    """A data-plane location available for placement."""

    obi_id: str
    segment: str
    capabilities: set[str]
    capacity: float = 1.0
    expected_load: float = 0.0
    hosted_chains: set[str] = field(default_factory=set)

    @property
    def spare_capacity(self) -> float:
        return max(0.0, self.capacity - self.expected_load)


@dataclass
class PlacementDecision:
    obi_id: str
    score: float
    colocated: bool


class PlacementError(ValueError):
    """No feasible OBI exists for the graph."""


class PlacementEngine:
    """Greedy capability- and load-aware placement."""

    #: Score bonus for placing on an OBI already hosting the same chain
    #: (co-location enables the merge optimizations of §2.2).
    COLOCATION_BONUS = 0.5

    def __init__(self, candidates: list[PlacementCandidate] | None = None) -> None:
        self.candidates: dict[str, PlacementCandidate] = {}
        for candidate in candidates or []:
            self.add_candidate(candidate)

    def add_candidate(self, candidate: PlacementCandidate) -> None:
        self.candidates[candidate.obi_id] = candidate

    def remove_candidate(self, obi_id: str) -> None:
        self.candidates.pop(obi_id, None)

    def feasible(
        self, graph: ProcessingGraph, segment_filter: str | None = None
    ) -> list[PlacementCandidate]:
        """Candidates that support every block type in ``graph``."""
        needed = {block.type for block in graph.blocks.values()}
        result = []
        for candidate in self.candidates.values():
            if segment_filter is not None and not candidate.segment.startswith(
                segment_filter
            ):
                continue
            if needed <= candidate.capabilities:
                result.append(candidate)
        return result

    def place(
        self,
        graph: ProcessingGraph,
        chain: str = "",
        expected_load: float = 0.1,
        segment_filter: str | None = None,
    ) -> PlacementDecision:
        """Pick the best OBI for ``graph`` and account its load there."""
        feasible = self.feasible(graph, segment_filter)
        if not feasible:
            raise PlacementError(
                f"no OBI supports all block types of graph {graph.name!r}"
            )
        best: tuple[float, bool, PlacementCandidate] | None = None
        for candidate in feasible:
            if candidate.spare_capacity < expected_load:
                continue
            colocated = bool(chain) and chain in candidate.hosted_chains
            score = candidate.spare_capacity / max(candidate.capacity, 1e-9)
            if colocated:
                score += self.COLOCATION_BONUS
            if best is None or score > best[0]:
                best = (score, colocated, candidate)
        if best is None:
            raise PlacementError(
                f"no OBI has {expected_load:.2f} spare capacity for {graph.name!r}"
            )
        score, colocated, candidate = best
        candidate.expected_load += expected_load
        if chain:
            candidate.hosted_chains.add(chain)
        return PlacementDecision(
            obi_id=candidate.obi_id, score=score, colocated=colocated
        )

    def place_chain(
        self,
        graphs: list[ProcessingGraph],
        chain: str,
        expected_load: float = 0.1,
        segment_filter: str | None = None,
    ) -> list[PlacementDecision]:
        """Place every NF of a chain, preferring co-location."""
        return [
            self.place(graph, chain=chain, expected_load=expected_load,
                       segment_filter=segment_filter)
            for graph in graphs
        ]
