"""The durable-storage seam: every fsync in the repo goes through here.

The crash-safety machinery (controller journal, flow-state checkpoints,
the replication sink) was written directly against ``open`` /
``os.fsync`` / ``os.replace`` — which made its *failure* behaviour
untestable: an ENOSPC raised straight through the orchestration loop
and no test could ever produce one. :class:`Storage` is the injectable
backend those modules now write through. The default implementation is
a trivial passthrough to the OS; the chaos engine substitutes
:class:`repro.chaos.storage.FaultyStorage`, which injects EIO, ENOSPC,
fsyncs that lie, torn replaces, and slow I/O — and can simulate a
power-loss ``crash()`` that discards everything past the last honest
fsync.

Only the *write* path is abstracted (open-for-write, fsync, replace,
remove). Reads stay plain ``open``: replay after a crash always runs
against whatever bytes really survived, which is exactly what the
fault model manipulates.
"""

from __future__ import annotations

import contextlib
import os
from typing import IO, Any


class Storage:
    """Durable file operations (OS passthrough; subclass to inject faults).

    All paths are plain strings/PathLike; all files are text-mode UTF-8
    (the journal format is JSON lines). Subclasses may wrap the returned
    file objects — callers must only rely on ``write``/``flush``/
    ``close``/``fileno`` and must route durability through
    :meth:`fsync`, never ``os.fsync`` directly.
    """

    def open(self, path: str | os.PathLike[str], mode: str = "a") -> IO[str]:
        """Open ``path`` for writing (append/truncate per ``mode``)."""
        return open(os.fspath(path), mode, encoding="utf-8")

    def fsync(self, handle: Any) -> None:
        """Flush ``handle`` and force its bytes to stable storage.

        Raises ``OSError`` when the device refuses; a successful return
        is the durability promise callers account against.
        """
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: str | os.PathLike[str],
                dst: str | os.PathLike[str]) -> None:
        """Atomically rename ``src`` over ``dst`` (the snapshot swap)."""
        os.replace(os.fspath(src), os.fspath(dst))

    def remove(self, path: str | os.PathLike[str]) -> None:
        """Best-effort unlink (cleanup of temp files; missing is fine)."""
        with contextlib.suppress(FileNotFoundError):
            os.remove(os.fspath(path))

    def exists(self, path: str | os.PathLike[str]) -> bool:
        return os.path.exists(os.fspath(path))


#: Shared default backend — stateless, so one instance serves everyone.
LOCAL = Storage()
