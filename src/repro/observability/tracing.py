"""Sampled per-packet trace spans with application attribution.

The controller's demultiplexing story (paper §4.1: alerts and responses
are routed back to the *originating application* via merge provenance)
is invisible at packet granularity — ``PacketHistory`` records the block
path but not who owns each hop or what it cost. A :class:`PacketTrace`
fixes that: for a sampled packet the engine records one
:class:`TraceSpan` per element visit — enter/exit timestamps, the output
port(s) taken, fast-path replay markers, and fault-containment events —
each stamped with the element's ``origin_app`` (the provenance the
aggregator preserves through merging).

Tracing is strictly observational: a traced traversal produces a
byte-identical :class:`~repro.obi.engine.PacketOutcome` to an untraced
one (property-tested), and the disabled path costs one ``is None`` check
per element visit. Sampling is deterministic — 1-in-N by packet counter,
no RNG, no wall clock in the decision — so two replays of the same
workload sample the same packets.
"""

from __future__ import annotations

import collections
from typing import Any, Callable


class TraceSpan:
    """One element visit inside a sampled packet traversal."""

    __slots__ = (
        "index", "parent", "block", "origin_app",
        "enter", "exit", "ports", "replayed", "event",
    )

    def __init__(
        self, index: int, parent: int, block: str, origin_app: str | None,
        enter: float,
    ) -> None:
        self.index = index
        #: Index of the span that emitted the packet to this element
        #: (-1 for the graph's entry element); forks (Mirror/Tee) give
        #: several spans the same parent, forming the trace tree.
        self.parent = parent
        self.block = block
        #: Merge provenance: which application contributed this block.
        self.origin_app = origin_app
        self.enter = enter
        self.exit = enter
        #: Output ports emitted, in emission order (empty = absorbed).
        self.ports: list[int] = []
        #: True when the fast path replayed a cached decision instead of
        #: running the element's match computation.
        self.replayed = False
        #: Robustness annotation: ``quarantine-bypass``, ``fault:<policy>``,
        #: or ``degraded-bypass``; None for a clean visit.
        self.event: str | None = None

    @property
    def duration(self) -> float:
        return self.exit - self.enter

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "parent": self.parent,
            "block": self.block,
            "origin_app": self.origin_app,
            "enter": self.enter,
            "exit": self.exit,
            "ports": list(self.ports),
            "replayed": self.replayed,
            "event": self.event,
        }


class PacketTrace:
    """All spans of one sampled packet, plus its verdict."""

    __slots__ = (
        "seq", "packet_summary", "spans", "started", "finished",
        "dropped", "punted", "fastpath", "alerts", "errors",
    )

    def __init__(self, seq: int, packet_summary: str, started: float) -> None:
        #: Ordinal among *sampled* packets (not all packets).
        self.seq = seq
        self.packet_summary = packet_summary
        self.spans: list[TraceSpan] = []
        self.started = started
        self.finished = started
        self.dropped = False
        self.punted = False
        #: True when the traversal replayed cached flow decisions.
        self.fastpath = False
        self.alerts = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # Engine hooks (hot only for sampled packets)
    # ------------------------------------------------------------------
    def enter(
        self, block: str, origin_app: str | None, parent: int, now: float
    ) -> TraceSpan:
        span = TraceSpan(len(self.spans), parent, block, origin_app, now)
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return self.finished - self.started

    def by_app(self) -> dict[str, list[TraceSpan]]:
        """Spans grouped by originating application (demultiplexed view).

        Blocks the merge synthesized across tenants (no provenance) land
        under ``""`` — shared infrastructure, owned by no one app.
        """
        grouped: dict[str, list[TraceSpan]] = {}
        for span in self.spans:
            grouped.setdefault(span.origin_app or "", []).append(span)
        return grouped

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "packet": self.packet_summary,
            "started": self.started,
            "finished": self.finished,
            "dropped": self.dropped,
            "punted": self.punted,
            "fastpath": self.fastpath,
            "alerts": self.alerts,
            "errors": self.errors,
            "spans": [span.to_dict() for span in self.spans],
        }

    def format_tree(self) -> str:
        return render_trace_tree(self.to_dict())


def render_trace_tree(trace: dict[str, Any]) -> str:
    """Pretty-print a serialized trace as an indented span tree.

    Works on the wire form (plain dicts), so the ``obsv`` CLI can render
    snapshots pulled from any OBI without reconstructing objects.
    """
    spans = trace.get("spans", [])
    lines = [
        f"packet {trace.get('packet', '?')}  "
        f"({'fastpath, ' if trace.get('fastpath') else ''}"
        f"{'dropped' if trace.get('dropped') else 'punted' if trace.get('punted') else 'forwarded'}, "
        f"{(trace.get('finished', 0.0) - trace.get('started', 0.0)) * 1e6:.1f} µs, "
        f"{len(spans)} spans)"
    ]
    children: dict[int, list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent", -1), []).append(span)

    def walk(parent: int, depth: int) -> None:
        for span in children.get(parent, ()):
            marks = []
            if span.get("replayed"):
                marks.append("replayed")
            if span.get("event"):
                marks.append(span["event"])
            app = span.get("origin_app") or "-"
            ports = ",".join(str(p) for p in span.get("ports", ())) or "∅"
            lines.append(
                "  " * (depth + 1)
                + f"{span.get('block')} [{app}] -> port {ports} "
                f"({(span.get('exit', 0.0) - span.get('enter', 0.0)) * 1e6:.1f} µs"
                + (", " + ", ".join(marks) if marks else "")
                + ")"
            )
            walk(span["index"], depth + 1)

    walk(-1, 0)
    return "\n".join(lines)


class PacketTracer:
    """Deterministic 1-in-N packet sampler owning a bounded trace ring.

    Owned by the OBI (like the flow cache and robustness state) so
    traces and sampling counters survive graph redeployments. A
    ``sample_rate`` of 0 is the hard off-switch — :meth:`should_sample`
    is never consulted because the instance installs no tracer at all —
    and the engine's per-element cost collapses to one None check.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        buffer: int = 64,
        clock: Callable[[], float] | None = None,
    ) -> None:
        import time

        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        #: Sample every Nth packet; 0 disables sampling entirely.
        self.interval = int(round(1.0 / sample_rate)) if sample_rate > 0 else 0
        self.clock = clock or time.monotonic
        self.recent: collections.deque[PacketTrace] = collections.deque(
            maxlen=max(1, buffer)
        )
        self.seen = 0
        self.sampled = 0

    def should_sample(self) -> bool:
        """Deterministic decision for the next packet (counts it seen)."""
        self.seen += 1
        if self.interval == 0:
            return False
        return self.interval == 1 or self.seen % self.interval == 1

    def begin(self, packet_summary: str) -> PacketTrace:
        self.sampled += 1
        return PacketTrace(self.sampled, packet_summary, self.clock())

    def finish(self, trace: PacketTrace, outcome: Any) -> None:
        """Stamp the verdict and retain the trace in the ring."""
        trace.finished = self.clock()
        trace.dropped = outcome.dropped
        trace.punted = outcome.punted
        trace.alerts = len(outcome.alerts)
        trace.errors = len(outcome.errors)
        self.recent.append(trace)

    def traces(self, limit: int = 0) -> list[dict[str, Any]]:
        """The most recent traces, serialized (``limit`` 0 = all kept)."""
        retained = list(self.recent)
        if limit > 0:
            retained = retained[-limit:]
        return [trace.to_dict() for trace in retained]
