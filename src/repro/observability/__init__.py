"""Observability plane: metrics registry + sampled per-packet tracing.

See ``docs/DESIGN.md`` (Observability) and ``docs/PROTOCOL.md`` §9 for
how snapshots travel from OBIs to the controller.
"""

from repro.observability.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    diff_snapshots,
    merge_snapshots,
    set_default_registry,
)
from repro.observability.tracing import (
    PacketTrace,
    PacketTracer,
    TraceSpan,
    render_trace_tree,
)

__all__ = [
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "merge_snapshots",
    "diff_snapshots",
    "PacketTrace",
    "PacketTracer",
    "TraceSpan",
    "render_trace_tree",
]
