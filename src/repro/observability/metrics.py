"""Process-wide metrics registry: counters, gauges, histograms.

The paper's controller "collects statistics from instances" (§4.1) but
never says what a statistic *is*; this module pins it down for the whole
reproduction. Every layer — the element traversal, the flow-decision
fast path, OBI admission, the transports, and the controller's
deploy/scaling/stats loops — registers named instruments here and bumps
them through cheap pre-resolved handles, so the hot path pays one
attribute increment per event and nothing else.

Three instrument kinds, Prometheus-shaped on purpose (the snapshot dict
maps 1:1 onto an exposition format if a real scraper is ever bolted on):

* :class:`Counter` — monotonic event count (``inc``).
* :class:`Gauge` — last-write-wins level (``set``).
* :class:`Histogram` — fixed bucket boundaries declared at registration;
  **no wall-clock values ever appear in metric keys**, only in observed
  samples, so snapshots from different machines/times diff cleanly.

Registries are instantiable (each OBI owns one, so an
``ObservabilitySnapshot`` is per-instance) and there is one process-wide
default (:func:`default_registry`) for code without a natural owner —
transport channels and controller loops. Increments are plain int/float
``+=`` under the GIL: statistically exact for CPython's atomic cases and
close enough for telemetry everywhere else; instrument *creation* is
locked.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterable

#: Default latency boundaries (seconds): 10 µs .. 5 s, roughly log-spaced.
LATENCY_BUCKETS = (
    0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

#: Default boundaries for small cardinalities (path lengths, batch sizes).
SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def _key(name: str, labels: dict[str, Any]) -> str:
    """Canonical instrument key: ``name`` or ``name{k=v,...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins level (cache entries, degraded flag, ...)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution over fixed, registration-time bucket boundaries.

    ``counts[i]`` counts observations ``<= boundaries[i]``; the final
    slot is the overflow bucket (everything above the last boundary) —
    no ``+inf`` sentinel, so snapshots stay strict-JSON serializable.
    """

    __slots__ = ("key", "boundaries", "counts", "count", "sum")

    def __init__(self, key: str, boundaries: Iterable[float]) -> None:
        self.key = key
        self.boundaries = tuple(sorted(boundaries))
        if not self.boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Upper-boundary estimate of the ``q`` quantile (0 if empty)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for boundary, bucket in zip(self.boundaries, self.counts):
            seen += bucket
            if seen >= target:
                return boundary
        return self.boundaries[-1]


class MetricsRegistry:
    """Named instruments with cached handles and a JSON-able snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument registration (idempotent: same key -> same object)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter(key))
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(key))
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(key, buckets)
                )
        return instrument

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every instrument (JSON-serializable)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument (handles stay valid)."""
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0
            for gauge in self._gauges.values():
                gauge.value = 0.0
            for histogram in self._histograms.values():
                histogram.counts = [0] * (len(histogram.boundaries) + 1)
                histogram.count = 0
                histogram.sum = 0.0


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------
_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (transports, controller loops)."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default
    previous, _default = _default, registry
    return previous


# ----------------------------------------------------------------------
# Snapshot algebra (used by stats aggregation and `repro.tools.obsv`)
# ----------------------------------------------------------------------
def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Fleet view: sum counters/gauges and merge same-shape histograms."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0) + value
        for key, hist in snapshot.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None or merged["boundaries"] != hist["boundaries"]:
                # First sight (or incompatible shape: keep the newest).
                histograms[key] = {
                    "boundaries": list(hist["boundaries"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                }
                continue
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], hist["counts"])
            ]
            merged["count"] += hist["count"]
            merged["sum"] += hist["sum"]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def diff_snapshots(
    before: dict[str, Any], after: dict[str, Any]
) -> dict[str, Any]:
    """Counter/histogram deltas and gauge changes between two snapshots.

    Keys absent from ``before`` diff against zero; keys absent from
    ``after`` are dropped (the instrument disappeared with its owner).
    """
    b_counters = before.get("counters", {})
    counters = {
        key: value - b_counters.get(key, 0)
        for key, value in after.get("counters", {}).items()
        if value != b_counters.get(key, 0)
    }
    b_gauges = before.get("gauges", {})
    gauges = {
        key: {"from": b_gauges.get(key, 0), "to": value}
        for key, value in after.get("gauges", {}).items()
        if value != b_gauges.get(key, 0)
    }
    histograms: dict[str, Any] = {}
    b_hists = before.get("histograms", {})
    for key, hist in after.get("histograms", {}).items():
        base = b_hists.get(key)
        if base is not None and base["boundaries"] == hist["boundaries"]:
            delta_count = hist["count"] - base["count"]
            delta_sum = hist["sum"] - base["sum"]
        else:
            delta_count, delta_sum = hist["count"], hist["sum"]
        if delta_count:
            histograms[key] = {"count": delta_count, "sum": delta_sum}
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
