"""A per-class rate-limiter OpenBox application.

The shaper-class NF of paper Table 1 (``BpsShaper``: "Limit data rate")
as a full application: traffic classes are defined by source CIDR, each
class gets its own token-bucket rate, and unclassified traffic passes
unshaped (or is capped by an optional default rate).

Because shapers may not be crossed by classifier merging (§2.2.1), this
application also serves as a merge-boundary fixture in tests.
"""

from __future__ import annotations

from repro.controller.apps import AppStatement, OpenBoxApplication
from repro.core.blocks import Block
from repro.core.classify.rules import HeaderRule, Prefix
from repro.core.graph import ProcessingGraph


class RateLimiterApp(OpenBoxApplication):
    """Per-subnet bandwidth caps (bits/second token buckets)."""

    def __init__(
        self,
        name: str,
        limits: list[tuple[str, float]],
        default_bps: float | None = None,
        segment: str = "",
        obi_id: str | None = None,
        priority: int = 50,
        in_device: str = "in",
        out_device: str = "out",
    ) -> None:
        """``limits`` is an ordered list of ``(source CIDR, bps)``; first
        match wins. ``default_bps`` caps everything else (None = no cap).
        """
        if not limits and default_bps is None:
            raise ValueError("rate limiter needs at least one limit")
        super().__init__(name, priority=priority)
        self.limits = list(limits)
        self.default_bps = default_bps
        self.segment = segment
        self.obi_id = obi_id
        self.in_device = in_device
        self.out_device = out_device

    def build_graph(self) -> ProcessingGraph:
        graph = ProcessingGraph(self.name)
        read = Block("FromDevice", name=f"{self.name}_read",
                     config={"devname": self.in_device}, origin_app=self.name)
        out = Block("ToDevice", name=f"{self.name}_out",
                    config={"devname": self.out_device}, origin_app=self.name)
        rules = [
            HeaderRule(src=Prefix.parse(cidr), port=index + 1).to_dict()
            for index, (cidr, _bps) in enumerate(self.limits)
        ]
        classify = Block(
            "HeaderClassifier",
            name=f"{self.name}_classify",
            config={"rules": rules, "default_port": 0},
            origin_app=self.name,
        )
        graph.add_blocks([read, out, classify])
        graph.connect(read, classify)

        if self.default_bps is not None:
            default_shaper = Block(
                "BpsShaper", name=f"{self.name}_shape_default",
                config={"bps": float(self.default_bps)}, origin_app=self.name,
            )
            graph.add_block(default_shaper)
            graph.connect(classify, default_shaper, 0)
            graph.connect(default_shaper, out)
        else:
            graph.connect(classify, out, 0)

        for index, (cidr, bps) in enumerate(self.limits):
            shaper = Block(
                "BpsShaper", name=f"{self.name}_shape_{index}",
                config={"bps": float(bps)}, origin_app=self.name,
            )
            graph.add_block(shaper)
            graph.connect(classify, shaper, index + 1)
            graph.connect(shaper, out)
        graph.validate()
        return graph

    def statements(self) -> list[AppStatement]:
        return [AppStatement(
            graph=self.build_graph(), segment=self.segment, obi_id=self.obi_id
        )]

    def set_rate(self, cidr: str, bps: float, obi_id: str) -> None:
        """Retune one class's rate live via the shaper's write handle —
        no graph redeployment needed (paper §3.2 write handles)."""
        index = next(
            (i for i, (existing, _bps) in enumerate(self.limits) if existing == cidr),
            None,
        )
        if index is None:
            raise KeyError(f"no limit class for {cidr!r}")
        self.limits[index] = (cidr, bps)
        self.request_write(obi_id, f"{self.name}_shape_{index}", "rate", bps)
