"""Sample OpenBox applications (paper §4.1, §5.2).

"Along with the controller implementation, we have implemented several
sample applications such as a firewall/ACL, IPS, load balancer, and
more." These are the NFs the paper's evaluation runs:

* :class:`~repro.apps.firewall.FirewallApp` — rule-file firewall/ACL;
* :class:`~repro.apps.ips.IpsApp` — Snort-rule IPS (header + payload);
* :class:`~repro.apps.webcache.WebCacheApp` — HTTP web cache;
* :class:`~repro.apps.loadbalancer.LoadBalancerApp` — L3 load balancer.
"""

from repro.apps.firewall import FirewallApp, FirewallRule, parse_firewall_rules
from repro.apps.ips import IpsApp, SnortRule, parse_snort_rules
from repro.apps.loadbalancer import LoadBalancerApp
from repro.apps.ratelimiter import RateLimiterApp
from repro.apps.webcache import WebCacheApp

__all__ = [
    "FirewallApp",
    "FirewallRule",
    "IpsApp",
    "LoadBalancerApp",
    "RateLimiterApp",
    "SnortRule",
    "WebCacheApp",
    "parse_firewall_rules",
    "parse_snort_rules",
]
