"""An IPS OpenBox application driven by Snort-style rules (paper §5.2).

"We use Snort web rules to create a sample IPS that scans both headers
and payloads of packets. If a packet matches a rule, an alert is sent to
the controller."

The parser handles the Snort subset those rules need::

    alert tcp $EXTERNAL_NET any -> $HOME_NET 80 \
        (msg:"WEB attack"; content:"/etc/passwd"; nocase; sid:1001;)

Supported options: ``msg``, ``content`` (one or more, with ``nocase``),
``pcre``, ``sid``. Address variables resolve through a supplied
variable map.

The generated graph follows Figure 2(b): a header classifier splits
traffic into rule groups (by destination port), and each group gets a
RegexClassifier whose match ports lead to per-rule Alert blocks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.controller.apps import AppStatement, OpenBoxApplication
from repro.core.blocks import Block
from repro.core.classify.rules import HeaderRule, PortRange, Prefix
from repro.core.graph import ProcessingGraph
from repro.net.ip import IpProto

_PROTO_NAMES = {"tcp": IpProto.TCP, "udp": IpProto.UDP, "icmp": IpProto.ICMP, "ip": None}

_RULE_RE = re.compile(
    r"^(?P<action>alert|log|pass|drop)\s+(?P<proto>\w+)\s+"
    r"(?P<src>\S+)\s+(?P<sport>\S+)\s+->\s+"
    r"(?P<dst>\S+)\s+(?P<dport>\S+)\s*\((?P<options>.*)\)\s*$"
)

_OPTION_RE = re.compile(r'(?P<key>\w+)\s*(?::\s*(?P<value>"(?:[^"\\]|\\.)*"|[^;]*))?;')


@dataclass
class SnortContent:
    """One content/pcre option of a rule."""

    pattern: str
    nocase: bool = False
    is_pcre: bool = False


@dataclass
class SnortRule:
    """A parsed Snort rule (subset)."""

    action: str
    proto: int | None
    src: Prefix
    src_port: PortRange
    dst: Prefix
    dst_port: PortRange
    msg: str = ""
    sid: int = 0
    contents: list[SnortContent] = field(default_factory=list)

    def header_rule(self, port: int) -> HeaderRule:
        return HeaderRule(
            src=self.src, dst=self.dst,
            src_port=self.src_port, dst_port=self.dst_port,
            proto=self.proto, port=port,
        )


def _unquote(value: str) -> str:
    value = value.strip()
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        value = value[1:-1]
    return value.replace('\\"', '"').replace("\\\\", "\\").replace("\\;", ";")


def _parse_endpoint(token: str, variables: dict[str, str]) -> Prefix:
    token = token.strip()
    if token.startswith("$"):
        token = variables.get(token[1:], "any")
    if token in ("any", "!any"):
        return Prefix.ANY
    return Prefix.parse(token)


def _parse_ports(token: str) -> PortRange:
    token = token.strip()
    if token.startswith("$") or token == "any":
        return PortRange.ANY
    if ":" in token:
        lo, _sep, hi = token.partition(":")
        return PortRange(int(lo) if lo else 0, int(hi) if hi else 65535)
    return PortRange.exact(int(token))


def parse_snort_rules(
    text: str, variables: dict[str, str] | None = None
) -> list[SnortRule]:
    """Parse Snort rules (one per line; '#' comments allowed)."""
    variables = variables or {}
    rules: list[SnortRule] = []
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        match = _RULE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: not a valid Snort rule")
        proto_name = match.group("proto").lower()
        if proto_name not in _PROTO_NAMES:
            raise ValueError(f"line {line_no}: unknown protocol {proto_name!r}")
        rule = SnortRule(
            action=match.group("action"),
            proto=_PROTO_NAMES[proto_name],
            src=_parse_endpoint(match.group("src"), variables),
            src_port=_parse_ports(match.group("sport")),
            dst=_parse_endpoint(match.group("dst"), variables),
            dst_port=_parse_ports(match.group("dport")),
        )
        nocase_target: SnortContent | None = None
        for option in _OPTION_RE.finditer(match.group("options")):
            key = option.group("key")
            value = option.group("value") or ""
            if key == "msg":
                rule.msg = _unquote(value)
            elif key == "sid":
                rule.sid = int(value.strip())
            elif key == "content":
                nocase_target = SnortContent(pattern=_unquote(value))
                rule.contents.append(nocase_target)
            elif key == "nocase" and nocase_target is not None:
                nocase_target.nocase = True
            elif key == "pcre":
                pcre = _unquote(value)
                nocase = pcre.endswith("i")
                body = pcre.strip("/").rstrip("i").rstrip("/")
                rule.contents.append(
                    SnortContent(pattern=body, nocase=nocase, is_pcre=True)
                )
        rules.append(rule)
    return rules


class IpsApp(OpenBoxApplication):
    """The IPS NF as an OpenBox application."""

    def __init__(
        self,
        name: str,
        rules: list[SnortRule],
        segment: str = "",
        obi_id: str | None = None,
        priority: int = 20,
        in_device: str = "in",
        out_device: str = "out",
        quarantine: bool = False,
    ) -> None:
        """``quarantine=True`` makes the IPS stateful (paper §3.4.2): a
        flow that triggers an alert is tagged in the session storage and
        every subsequent packet of that flow is dropped at the front of
        the graph — the Snort "flow flagged" behaviour."""
        super().__init__(name, priority=priority)
        self.rules = list(rules)
        self.segment = segment
        self.obi_id = obi_id
        self.in_device = in_device
        self.out_device = out_device
        self.quarantine = quarantine

    def _groups(self) -> dict[tuple, list[SnortRule]]:
        """Group rules by full header signature (one DPI engine per group)."""
        groups: dict[tuple, list[SnortRule]] = {}
        for rule in self.rules:
            key = (
                rule.proto,
                rule.src, rule.dst,
                rule.dst_port.lo, rule.dst_port.hi,
                rule.src_port.lo, rule.src_port.hi,
            )
            groups.setdefault(key, []).append(rule)
        return groups

    def build_graph(self) -> ProcessingGraph:
        """Build the Figure 2(b) graph: header split, then DPI, then alerts."""
        graph = ProcessingGraph(self.name)
        read = Block("FromDevice", name=f"{self.name}_read",
                     config={"devname": self.in_device}, origin_app=self.name)
        out = Block("ToDevice", name=f"{self.name}_out",
                    config={"devname": self.out_device}, origin_app=self.name)
        graph.add_blocks([read, out])

        groups = self._groups()
        header_rules: list[dict] = []
        classify = Block(
            "HeaderClassifier",
            name=f"{self.name}_classify",
            config={"rules": [], "default_port": 0},
            origin_app=self.name,
        )
        graph.add_block(classify)
        if self.quarantine:
            # Stateful front end: quarantined flows are dropped before
            # any further processing; everything else is tracked.
            gate = Block("FlowClassifier", name=f"{self.name}_gate", config={
                "key": f"{self.name}.quarantine",
                "rules": {"blocked": 1},
                "default_port": 0,
            }, origin_app=self.name)
            jail = Block("Discard", name=f"{self.name}_jail", origin_app=self.name)
            track = Block("FlowTracker", name=f"{self.name}_track",
                          origin_app=self.name)
            graph.add_blocks([gate, jail, track])
            graph.connect(read, gate)
            graph.connect(gate, jail, 1)
            graph.connect(gate, track, 0)
            graph.connect(track, classify)
        else:
            graph.connect(read, classify)
        graph.connect(classify, out, 0)

        for group_index, (key, rules) in enumerate(sorted(groups.items(),
                                                          key=lambda kv: str(kv[0]))):
            group_port = group_index + 1
            representative = rules[0]
            header_rules.append(
                HeaderRule(
                    proto=representative.proto,
                    src=representative.src,
                    dst=representative.dst,
                    dst_port=representative.dst_port,
                    src_port=representative.src_port,
                    port=group_port,
                ).to_dict()
            )
            patterns = []
            regex = Block(
                "RegexClassifier",
                name=f"{self.name}_dpi_{group_index}",
                config={"patterns": patterns, "default_port": 0},
                origin_app=self.name,
            )
            graph.add_block(regex)
            graph.connect(classify, regex, group_port)
            graph.connect(regex, out, 0)
            for rule_index, rule in enumerate(rules):
                if not rule.contents:
                    # Header-only rule: its header part alone fires the
                    # alert. Use a catch-all pattern so the regex stage
                    # always routes it to its alert.
                    patterns.append({"pattern": "", "is_regex": True,
                                     "port": rule_index + 1})
                else:
                    content = rule.contents[0]
                    patterns.append({
                        "pattern": content.pattern,
                        "is_regex": content.is_pcre,
                        "case_sensitive": not content.nocase,
                        "port": rule_index + 1,
                    })
                alert = Block(
                    "Alert",
                    name=f"{self.name}_alert_{group_index}_{rule_index}",
                    config={
                        "message": rule.msg or f"sid:{rule.sid}",
                        "severity": "warning",
                    },
                    origin_app=self.name,
                )
                graph.add_block(alert)
                graph.connect(regex, alert, rule_index + 1)
                if self.quarantine:
                    tag = Block(
                        "SessionTag",
                        name=f"{self.name}_tag_{group_index}_{rule_index}",
                        config={"key": f"{self.name}.quarantine",
                                "value": "blocked"},
                        origin_app=self.name,
                    )
                    graph.add_block(tag)
                    graph.connect(alert, tag)
                    graph.connect(tag, out)
                else:
                    graph.connect(alert, out)

        classify.config["rules"] = header_rules
        graph.validate()
        return graph

    def statements(self) -> list[AppStatement]:
        return [AppStatement(
            graph=self.build_graph(), segment=self.segment, obi_id=self.obi_id
        )]
