"""A web-cache OpenBox application (paper §5.2, "Sample Web Cache").

"Our web cache stores web pages of specific websites. If an HTTP request
matches cached content, the web cache drops the request and returns the
cached content to the sender. Otherwise, the packet continues untouched."

Cache content is declared as ``{host: [uris]}``. The generated graph:

* a header classifier isolates HTTP traffic (dst port 80);
* a regex classifier matches requests against the cached (host, uri)
  pairs;
* hits are stored to the packet-storage service (the cache's hit log /
  response hand-off point) and dropped — response synthesis happens
  out-of-band, exactly like the paper's evaluation, which "only send[s]
  packets that do not match cached content" when measuring chains.
"""

from __future__ import annotations

from repro.controller.apps import AppStatement, OpenBoxApplication
from repro.core.blocks import Block
from repro.core.classify.rules import HeaderRule, PortRange
from repro.core.graph import ProcessingGraph


class WebCacheApp(OpenBoxApplication):
    """The web-cache NF as an OpenBox application."""

    def __init__(
        self,
        name: str,
        cached_content: "dict[str, list[str] | dict[str, str]]",
        segment: str = "",
        obi_id: str | None = None,
        priority: int = 30,
        http_port: int = 80,
        in_device: str = "in",
        out_device: str = "out",
        serve_responses: bool = False,
        client_device: str = "client",
    ) -> None:
        """``cached_content`` maps host to a list of cached URIs, or —
        when ``serve_responses=True`` — to a ``{uri: body}`` dict so the
        cache can synthesize real HTTP 200 responses toward the client
        (emitted on ``client_device``), the paper's full behaviour.
        """
        super().__init__(name, priority=priority)
        self.cached_content = {
            host: (dict(pages) if isinstance(pages, dict) else list(pages))
            for host, pages in cached_content.items()
        }
        self.segment = segment
        self.obi_id = obi_id
        self.http_port = http_port
        self.in_device = in_device
        self.out_device = out_device
        self.serve_responses = serve_responses
        self.client_device = client_device
        if serve_responses and not all(
            isinstance(pages, dict) for pages in self.cached_content.values()
        ):
            raise ValueError(
                "serve_responses=True needs {host: {uri: body}} cached_content"
            )
        self.hits = 0

    def _uris_of(self, pages) -> list[str]:
        return list(pages.keys()) if isinstance(pages, dict) else list(pages)

    def _hit_patterns(self) -> list[dict]:
        """One literal pattern per cached page.

        Matches the request line + Host header as emitted by standard
        clients (``GET <uri> HTTP/1.1\\r\\nHost: <host>``); requests with
        intervening headers are treated as misses — a conservative cache.
        """
        patterns = []
        for host, pages in sorted(self.cached_content.items()):
            for uri in self._uris_of(pages):
                patterns.append({
                    "pattern": f"GET {uri} HTTP/1.1\r\nHost: {host}",
                    "case_sensitive": False,
                    "port": 1,
                })
        return patterns

    def _build_serving_graph(self) -> ProcessingGraph:
        """The full cache: hits answered with synthesized responses."""
        graph = ProcessingGraph(self.name)
        read = Block("FromDevice", name=f"{self.name}_read",
                     config={"devname": self.in_device}, origin_app=self.name)
        out = Block("ToDevice", name=f"{self.name}_out",
                    config={"devname": self.out_device}, origin_app=self.name)
        to_client = Block("ToDevice", name=f"{self.name}_client",
                          config={"devname": self.client_device},
                          origin_app=self.name)
        classify = Block(
            "HeaderClassifier",
            name=f"{self.name}_classify",
            config={
                "rules": [
                    HeaderRule(dst_port=PortRange.exact(self.http_port), port=1).to_dict()
                ],
                "default_port": 0,
            },
            origin_app=self.name,
        )
        responder = Block(
            "HttpCacheResponder",
            name=f"{self.name}_responder",
            config={"cache": self.cached_content},
            origin_app=self.name,
        )
        graph.add_blocks([read, out, to_client, classify, responder])
        graph.connect(read, classify)
        graph.connect(classify, out, 0)
        graph.connect(classify, responder, 1)
        graph.connect(responder, out, 0)        # miss: continue to server
        graph.connect(responder, to_client, 1)  # hit: response to client
        graph.validate()
        return graph

    def build_graph(self) -> ProcessingGraph:
        if self.serve_responses:
            return self._build_serving_graph()
        return self._build_matching_graph()

    def _build_matching_graph(self) -> ProcessingGraph:
        graph = ProcessingGraph(self.name)
        read = Block("FromDevice", name=f"{self.name}_read",
                     config={"devname": self.in_device}, origin_app=self.name)
        out = Block("ToDevice", name=f"{self.name}_out",
                    config={"devname": self.out_device}, origin_app=self.name)
        classify = Block(
            "HeaderClassifier",
            name=f"{self.name}_classify",
            config={
                "rules": [
                    HeaderRule(dst_port=PortRange.exact(self.http_port), port=1).to_dict()
                ],
                "default_port": 0,
            },
            origin_app=self.name,
        )
        match = Block(
            "RegexClassifier",
            name=f"{self.name}_match",
            config={"patterns": self._hit_patterns(), "default_port": 0},
            origin_app=self.name,
        )
        store = Block(
            "StorePacket",
            name=f"{self.name}_store",
            config={"namespace": f"{self.name}:hits"},
            origin_app=self.name,
        )
        drop = Block("Discard", name=f"{self.name}_consume", origin_app=self.name)
        graph.add_blocks([read, out, classify, match, store, drop])
        graph.connect(read, classify)
        graph.connect(classify, out, 0)
        graph.connect(classify, match, 1)
        graph.connect(match, out, 0)
        graph.connect(match, store, 1)
        graph.connect(store, drop)
        graph.validate()
        return graph

    def statements(self) -> list[AppStatement]:
        return [AppStatement(
            graph=self.build_graph(), segment=self.segment, obi_id=self.obi_id
        )]

    def add_page(self, host: str, uri: str) -> None:
        """Cache a new page and redeploy."""
        self.cached_content.setdefault(host, []).append(uri)
        if self.controller is not None:
            self.update_logic()
