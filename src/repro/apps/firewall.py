"""A firewall/ACL OpenBox application (paper §5.2, "Sample Firewall").

Rules come from a text file in a classic ACL syntax::

    # action  proto  src            sport    dst             dport
    deny      tcp    10.0.0.0/8     any      any             22
    alert     udp    any            any      192.168.0.0/16  53
    allow     any    any            any      any             any

First match wins. The generated processing graph follows Figure 2(a):
``FromDevice -> HeaderClassifier -> {Discard | Alert -> ToDevice |
ToDevice}``.

For throughput experiments the paper modifies its 4560-rule commercial
ruleset "so that packets are never dropped. Instead, all packets are
transmitted untouched" — pass ``alert_only=True`` to reproduce that:
deny rules raise alerts instead of dropping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.apps import AppStatement, OpenBoxApplication
from repro.core.blocks import Block
from repro.core.classify.rules import HeaderRule, PortRange, Prefix
from repro.core.graph import ProcessingGraph
from repro.net.ip import IpProto

_PROTO_NAMES = {"tcp": IpProto.TCP, "udp": IpProto.UDP, "icmp": IpProto.ICMP}

ACTIONS = ("allow", "deny", "alert")


@dataclass(frozen=True)
class FirewallRule:
    """One parsed ACL rule."""

    action: str
    match: HeaderRule

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown firewall action: {self.action!r}")


def _parse_port(token: str) -> PortRange:
    if token == "any":
        return PortRange.ANY
    if ":" in token:
        lo, hi = token.split(":", 1)
        return PortRange(int(lo), int(hi))
    return PortRange.exact(int(token))


def _parse_prefix(token: str) -> Prefix:
    return Prefix.ANY if token == "any" else Prefix.parse(token)


def parse_firewall_rules(text: str) -> list[FirewallRule]:
    """Parse a rule file; '#' starts a comment, blank lines ignored."""
    rules: list[FirewallRule] = []
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if len(tokens) != 6:
            raise ValueError(
                f"line {line_no}: expected 6 fields "
                f"(action proto src sport dst dport), got {len(tokens)}"
            )
        action, proto, src, sport, dst, dport = tokens
        proto_num = None if proto == "any" else _PROTO_NAMES.get(proto)
        if proto != "any" and proto_num is None:
            raise ValueError(f"line {line_no}: unknown protocol {proto!r}")
        rules.append(FirewallRule(
            action=action,
            match=HeaderRule(
                src=_parse_prefix(src),
                dst=_parse_prefix(dst),
                src_port=_parse_port(sport),
                dst_port=_parse_port(dport),
                proto=proto_num,
            ),
        ))
    return rules


class FirewallApp(OpenBoxApplication):
    """The firewall NF as an OpenBox application."""

    #: Classifier output-port layout of the generated graph.
    PORT_ALLOW = 0
    PORT_DENY = 1
    PORT_ALERT = 2

    def __init__(
        self,
        name: str,
        rules: list[FirewallRule],
        segment: str = "",
        obi_id: str | None = None,
        alert_only: bool = False,
        priority: int = 10,
        in_device: str = "in",
        out_device: str = "out",
    ) -> None:
        super().__init__(name, priority=priority)
        self.rules = list(rules)
        self.segment = segment
        self.obi_id = obi_id
        self.alert_only = alert_only
        self.in_device = in_device
        self.out_device = out_device

    def build_graph(self) -> ProcessingGraph:
        """Build the Figure 2(a) processing graph from the rule list."""
        graph = ProcessingGraph(f"{self.name}")
        classifier_rules = []
        for rule in self.rules:
            if rule.action == "allow":
                port = self.PORT_ALLOW
            elif rule.action == "deny":
                port = self.PORT_ALERT if self.alert_only else self.PORT_DENY
            else:
                port = self.PORT_ALERT
            entry = rule.match.to_dict()
            entry["port"] = port
            classifier_rules.append(entry)

        read = Block("FromDevice", name=f"{self.name}_read",
                     config={"devname": self.in_device}, origin_app=self.name)
        classify = Block(
            "HeaderClassifier",
            name=f"{self.name}_classify",
            config={"rules": classifier_rules, "default_port": self.PORT_ALLOW},
            origin_app=self.name,
        )
        out = Block("ToDevice", name=f"{self.name}_out",
                    config={"devname": self.out_device}, origin_app=self.name)
        alert = Block("Alert", name=f"{self.name}_alert",
                      config={"message": f"{self.name}: rule matched",
                              "severity": "warning"},
                      origin_app=self.name)
        graph.add_blocks([read, classify, out])
        graph.connect(read, classify)
        graph.connect(classify, out, self.PORT_ALLOW)
        used_ports = {rule["port"] for rule in classifier_rules}
        if self.PORT_ALERT in used_ports:
            graph.add_block(alert)
            graph.connect(classify, alert, self.PORT_ALERT)
            graph.connect(alert, out)
        if self.PORT_DENY in used_ports:
            drop = Block("Discard", name=f"{self.name}_drop", origin_app=self.name)
            graph.add_block(drop)
            graph.connect(classify, drop, self.PORT_DENY)
        graph.validate()
        return graph

    def statements(self) -> list[AppStatement]:
        return [AppStatement(
            graph=self.build_graph(), segment=self.segment, obi_id=self.obi_id
        )]

    # ------------------------------------------------------------------
    # Event-driven behaviour (paper §3.4: an IPS/firewall can react to
    # alerts by tightening policy)
    # ------------------------------------------------------------------
    def block_source(self, cidr: str) -> None:
        """Add a deny rule for ``cidr`` and redeploy."""
        action = "alert" if self.alert_only else "deny"
        self.rules.insert(0, FirewallRule(
            action=action,
            match=HeaderRule(src=Prefix.parse(cidr)),
        ))
        if self.controller is not None:
            self.update_logic()
