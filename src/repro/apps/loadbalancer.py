"""An L3 load-balancer OpenBox application (paper §5.2).

"This NF uses Layer 3 classification rules to split traffic to multiple
output interfaces." Traffic is split by source-address prefix into
``len(targets)`` equal slices, or by explicit CIDR rules.
"""

from __future__ import annotations

from repro.controller.apps import AppStatement, OpenBoxApplication
from repro.core.blocks import Block
from repro.core.classify.rules import HeaderRule, Prefix
from repro.core.graph import ProcessingGraph


class LoadBalancerApp(OpenBoxApplication):
    """The L3 load-balancer NF as an OpenBox application."""

    def __init__(
        self,
        name: str,
        targets: list[str],
        rules: list[tuple[str, str]] | None = None,
        segment: str = "",
        obi_id: str | None = None,
        priority: int = 40,
        in_device: str = "in",
    ) -> None:
        """``targets`` are output device names. Explicit ``rules`` map a
        CIDR to a target device; without them the source /, /1, /2 ...
        space is sliced evenly across targets.
        """
        if not targets:
            raise ValueError("load balancer needs at least one target")
        super().__init__(name, priority=priority)
        self.targets = list(targets)
        self.explicit_rules = list(rules or [])
        self.segment = segment
        self.obi_id = obi_id
        self.in_device = in_device

    def _slice_rules(self) -> list[HeaderRule]:
        """Slice the source-address space evenly across targets.

        Uses the smallest prefix length ``p`` with ``2**p >= len(targets)``
        and assigns the ``2**p`` buckets round-robin.
        """
        count = len(self.targets)
        prefix_len = max(1, (count - 1).bit_length()) if count > 1 else 0
        if prefix_len == 0:
            return [HeaderRule(port=0)]
        mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
        rules = []
        for bucket in range(1 << prefix_len):
            value = bucket << (32 - prefix_len)
            rules.append(HeaderRule(
                src=Prefix(value, mask), port=bucket % count,
            ))
        return rules

    def build_graph(self) -> ProcessingGraph:
        graph = ProcessingGraph(self.name)
        read = Block("FromDevice", name=f"{self.name}_read",
                     config={"devname": self.in_device}, origin_app=self.name)
        graph.add_block(read)

        if self.explicit_rules:
            device_port = {device: index for index, device in enumerate(self.targets)}
            rules = []
            for cidr, device in self.explicit_rules:
                if device not in device_port:
                    raise ValueError(f"rule target {device!r} is not in targets")
                rules.append(HeaderRule(
                    src=Prefix.parse(cidr), port=device_port[device],
                ))
        else:
            rules = self._slice_rules()

        classify = Block(
            "HeaderClassifier",
            name=f"{self.name}_classify",
            config={
                "rules": [rule.to_dict() for rule in rules],
                "default_port": 0,
            },
            origin_app=self.name,
        )
        graph.add_block(classify)
        graph.connect(read, classify)
        for index, device in enumerate(self.targets):
            sink = Block("ToDevice", name=f"{self.name}_out_{index}",
                         config={"devname": device}, origin_app=self.name)
            graph.add_block(sink)
            graph.connect(classify, sink, index)
        graph.validate()
        return graph

    def statements(self) -> list[AppStatement]:
        return [AppStatement(
            graph=self.build_graph(), segment=self.segment, obi_id=self.obi_id
        )]
