"""Retry with bounded exponential backoff over any :class:`Channel`.

The OpenBox protocol's requests are made idempotent by the receiver's
xid deduplication (``docs/PROTOCOL.md`` §6): a retry re-sends the *same*
message with the *same* ``xid``, so a peer that already applied it
replays the cached response instead of applying it twice. That makes
blind retry safe for every request type, and :class:`ResilientChannel`
exploits it: timeouts and transient disconnects are retried up to
``max_attempts`` times with exponential backoff and full jitter.

The total time a request may block is hard-bounded:

    worst_case(t) = max_attempts * t + backoff_budget()

which the fault-injection suite asserts against (no request hangs
longer than its timeout plus the maximum backoff budget).
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import Callable

from repro.protocol.messages import Message
from repro.transport.base import ChannelClosed, MessageHandler


def derive_seed(*parts: object) -> int:
    """Stable jitter seed from identifying parts (endpoint, epoch, ...).

    Jitter only decorrelates retries if different channels draw from
    different streams. Seeding by construction order (channel #0, #1,
    ...) looks fine until two controllers replay the same journal:
    both build their channels in the same order, get the same seeds,
    and their "jittered" retries land in lockstep. Hashing *who* the
    channel talks to and *under which epoch* keeps seeds deterministic
    for tests while making any two distinct (endpoint, epoch) pairs —
    including the same endpoint before and after a failover —
    independent streams. SHA-256, not ``hash()``: Python randomizes
    string hashes per process, which would desync replays.
    """
    digest = hashlib.sha256(
        "\x1f".join(str(part) for part in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with full jitter."""

    max_attempts: int = 4
    #: Per-attempt request timeout (seconds) when the caller passes none.
    request_timeout: float = 5.0
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    #: Fraction of each delay randomized away. The default is **full
    #: jitter** (AWS style): each pause is uniform in ``[0, nominal]``.
    #: When a controller restart makes a whole fleet's channels fail at
    #: once, full jitter decorrelates their reconnect retries so the
    #: recovered controller is not hit by a thundering herd of
    #: synchronized re-Hellos; the RNG is seeded per channel, so tests
    #: remain deterministic.
    jitter: float = 1.0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt + 1`` (0-indexed).

        Uniform in ``[(1 - jitter) * nominal, nominal]`` where nominal
        is the capped exponential ``base_delay * multiplier ** attempt``
        — i.e. full jitter at the default ``jitter=1.0``.
        """
        delay = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter > 0:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def backoff_budget(self) -> float:
        """The most time backoff pauses can add across all retries."""
        return sum(
            min(self.base_delay * self.multiplier ** attempt, self.max_delay)
            for attempt in range(self.max_attempts - 1)
        )

    def worst_case(self, timeout: float | None = None) -> float:
        """Upper bound on how long one request() call may block."""
        per_attempt = timeout if timeout is not None else self.request_timeout
        return self.max_attempts * per_attempt + self.backoff_budget()


class ResilientChannel:
    """Retries requests and notifications through a flaky channel.

    ``sleep`` is injectable so virtual-time tests can account backoff
    without real waiting; it defaults to :func:`time.sleep`. Retries
    re-send the identical message (same xid) — receivers deduplicate.
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self._rng = random.Random(seed)
        self._sleep = sleep if sleep is not None else time.sleep
        self.attempts = 0
        self.retries = 0
        self.gave_up = 0
        self.total_backoff = 0.0

    def set_handler(self, handler: MessageHandler) -> None:
        self.inner.set_handler(handler)

    def _with_retry(self, send: Callable[[], Message | None]):
        last_error: ChannelClosed | None = None
        for attempt in range(self.policy.max_attempts):
            self.attempts += 1
            try:
                return send()
            except ChannelClosed as exc:  # includes ChannelTimeout
                last_error = exc
            if attempt < self.policy.max_attempts - 1:
                self.retries += 1
                pause = self.policy.backoff(attempt, self._rng)
                self.total_backoff += pause
                if pause > 0:
                    self._sleep(pause)
        self.gave_up += 1
        assert last_error is not None
        raise last_error

    def request(self, message: Message, timeout: float | None = None) -> Message:
        per_attempt = (
            timeout if timeout is not None else self.policy.request_timeout
        )
        return self._with_retry(
            lambda: self.inner.request(message, timeout=per_attempt)
        )

    def notify(self, message: Message) -> None:
        self._with_retry(lambda: self.inner.notify(message))

    def close(self) -> None:
        self.inner.close()
