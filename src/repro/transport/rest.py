"""The dual REST channel (paper §3.3).

"OBC and OBIs communicate through a dual REST channel over HTTPS, and the
protocol messages are encoded with JSON." Each party runs an HTTP server
exposing ``POST /openbox/message``; a request's response message rides in
the HTTP response body, while notifications get an empty ``204``.

:class:`RestEndpoint` is the server side (one per process);
:class:`RestPeerChannel` is a client-side handle for sending to one peer.
An OBI bootstraps by POSTing ``Hello`` (carrying its own callback URL) to
the controller's endpoint; the controller then opens a
:class:`RestPeerChannel` back to the OBI — the "dual" part.

TLS is intentionally omitted (DESIGN.md): the paper's Table 3 measures
software delay with both parties on one machine, which loopback HTTP
reproduces.
"""

from __future__ import annotations

import http.client
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from repro.observability.metrics import default_registry
from repro.protocol.codec import CodecError, decode_message, encode_message
from repro.protocol.errors import ErrorCode
from repro.protocol.messages import ErrorMessage, Message
from repro.transport.base import ChannelClosed, ChannelTimeout, MessageHandler

MESSAGE_PATH = "/openbox/message"

#: Defaults for the REST channel's socket timeouts (seconds). A hung
#: peer must never block a control-plane thread forever (ISSUE: fault
#: tolerance); these bound every connect, read, and server-side recv.
DEFAULT_CONNECT_TIMEOUT = 5.0
DEFAULT_READ_TIMEOUT = 10.0
DEFAULT_SERVER_TIMEOUT = 30.0


class _Handler(BaseHTTPRequestHandler):
    """Request handler bridging HTTP to the endpoint's message handler."""

    # Set by RestEndpoint when the server is created.
    endpoint: "RestEndpoint"

    protocol_version = "HTTP/1.1"

    #: Socket timeout applied by StreamRequestHandler to each accepted
    #: connection: a client that stalls mid-request is dropped instead
    #: of pinning a server thread. Overridden per-endpoint.
    timeout = DEFAULT_SERVER_TIMEOUT

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging."""

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != MESSAGE_PATH:
            self.send_error(404, "unknown path")
            return
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length)
        self.endpoint.metrics_received.inc()
        try:
            message = decode_message(body)
        except CodecError as exc:
            self._respond(ErrorMessage(code=exc.code, detail=exc.detail), status=400)
            return
        handler = self.endpoint.handler
        if handler is None:
            self._respond(
                ErrorMessage(
                    xid=message.xid,
                    code=ErrorCode.NOT_CONNECTED,
                    detail="no handler installed",
                ),
                status=503,
            )
            return
        try:
            response = handler(message)
        except Exception as exc:  # noqa: BLE001 - must answer the peer
            self._respond(
                ErrorMessage(
                    xid=message.xid,
                    code=ErrorCode.INTERNAL_ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                ),
                status=500,
            )
            return
        if response is None:
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()
        else:
            self._respond(response)

    def _respond(self, message: Message, status: int = 200) -> None:
        payload = encode_message(message)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class RestEndpoint:
    """An HTTP server receiving OpenBox messages for this process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = DEFAULT_SERVER_TIMEOUT,
    ) -> None:
        handler_cls = type(
            "BoundHandler", (_Handler,),
            {"endpoint": self, "timeout": request_timeout},
        )
        self._server = ThreadingHTTPServer((host, port), handler_cls)
        self._server.daemon_threads = True
        self.handler: MessageHandler | None = None
        self.metrics_received = default_registry().counter(
            "transport_received_total", transport="rest"
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="openbox-rest", daemon=True
        )
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._thread.start()
            self._started = True

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}{MESSAGE_PATH}"

    def set_handler(self, handler: MessageHandler) -> None:
        self.handler = handler

    def close(self) -> None:
        if self._started:
            self._server.shutdown()
        self._server.server_close()


class RestPeerChannel:
    """Client-side channel sending messages to one peer's REST endpoint.

    Thread-safe: each call opens its own HTTP connection (keep-alive
    pooling is deliberately avoided to keep failure modes simple — the
    control plane is not the throughput-critical path).
    """

    def __init__(
        self,
        peer_url: str,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
    ) -> None:
        parsed = urlparse(peer_url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(f"unsupported peer URL: {peer_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._path = parsed.path or MESSAGE_PATH
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._closed = False
        #: Incoming messages are delivered to the local RestEndpoint, not
        #: here; set_handler exists to satisfy the Channel protocol for
        #: callers that treat channels uniformly.
        self._handler: MessageHandler | None = None
        registry = default_registry()
        self._m_sent = registry.counter("transport_sent_total", transport="rest")
        self._m_timeouts = registry.counter(
            "transport_timeouts_total", transport="rest"
        )
        self._m_failures = registry.counter(
            "transport_failures_total", transport="rest"
        )

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def _post(self, message: Message, timeout: float | None) -> Message | None:
        if self._closed:
            raise ChannelClosed("channel is closed")
        read_timeout = timeout if timeout is not None else self.read_timeout
        payload = encode_message(message)
        # The connection timeout bounds the TCP connect; once connected,
        # the socket timeout is widened to the per-request read timeout
        # so a slow handler and an unreachable host fail independently.
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=min(self.connect_timeout, read_timeout)
        )
        try:
            connection.connect()
            if connection.sock is not None:
                connection.sock.settimeout(read_timeout)
            connection.request(
                "POST",
                self._path,
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            self._m_sent.inc()
            response = connection.getresponse()
            body = response.read()
            if response.status == 503:
                # The peer's server socket is up but no application
                # handler is installed — the window during a process
                # restart at the same address. Transient by definition:
                # surface it as a channel failure so retry layers keep
                # trying, instead of handing the caller a NOT_CONNECTED
                # error message as if it were a real response.
                self._m_failures.inc()
                raise ChannelClosed(
                    "peer endpoint has no handler installed (restarting?)"
                )
            if response.status == 204 or not body:
                return None
            return decode_message(body)
        except socket.timeout as exc:
            self._m_timeouts.inc()
            raise ChannelTimeout(
                f"peer did not answer xid={message.xid} within {read_timeout}s"
            ) from exc
        except (ConnectionError, OSError) as exc:
            self._m_failures.inc()
            raise ChannelClosed(f"peer unreachable: {exc}") from exc
        finally:
            connection.close()

    def request(self, message: Message, timeout: float | None = None) -> Message:
        response = self._post(message, timeout)
        if response is None:
            return ErrorMessage(
                xid=message.xid,
                code=ErrorCode.INTERNAL_ERROR,
                detail="peer returned no response body",
            )
        return response

    def notify(self, message: Message) -> None:
        self._post(message, timeout=None)

    def close(self) -> None:
        self._closed = True
