"""Deterministic fault injection for any :class:`Channel`.

Failure handling in the control plane (ROADMAP: survive data-plane
loss) is only testable if failures can be *produced* on demand and
*reproduced* from a seed. :class:`FaultyChannel` wraps any channel and
injects the classic distributed-systems failure modes:

* **request drop** — the message never reaches the peer; the caller
  observes a timeout (:class:`ChannelTimeout`);
* **response drop** — the peer received and *applied* the message, but
  the response is lost; the caller observes a timeout even though side
  effects happened (this is what makes receiver-side xid deduplication
  necessary — see ``docs/PROTOCOL.md`` §6);
* **duplication** — the message is delivered twice (a retransmit racing
  a slow response);
* **delay** — added latency, charged via an injectable ``sleep`` so
  virtual-time tests never really sleep;
* **reordering** — a send is held in a bounded holdback queue and
  delivered only after the next successful send (the caller times out;
  retry + receiver-side xid dedup must absorb the late replay);
* **peer crash** — after ``crash_after`` sends, or an explicit
  :meth:`kill`, every send raises :class:`ChannelClosed`;
* **partition** — an explicit network cut via :meth:`partition` /
  :meth:`heal`. Unlike a crash the peer is alive; unlike the random
  drops the cut is total and directional: ``"both"`` severs the link,
  ``"tx"`` loses every request before the peer sees it, and ``"rx"``
  lets the peer receive *and apply* every request but loses every
  response — the asymmetric one-way partition that makes a leader
  believe it is merely slow while the rest of the world has moved on.

All randomness comes from one ``random.Random(plan.seed)``: the same
seed over the same call sequence injects the same faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.protocol.messages import Message
from repro.transport.base import ChannelClosed, ChannelTimeout, MessageHandler


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, with which probabilities, under which seed."""

    seed: int = 0
    #: Probability a send is lost before reaching the peer.
    drop_rate: float = 0.0
    #: Probability the peer's response is lost after the peer applied
    #: the message (at-least-once hazard).
    response_drop_rate: float = 0.0
    #: Probability a send is delivered twice.
    duplicate_rate: float = 0.0
    #: Probability a send is delayed, and the uniform delay bounds.
    delay_rate: float = 0.0
    delay_range: tuple[float, float] = (0.0, 0.0)
    #: Probability a send is *reordered*: held back in a bounded queue
    #: and delivered only after the next successful send (so it arrives
    #: late, behind a younger message). The caller observes a timeout —
    #: retry plus receiver-side xid dedup must absorb the late replay.
    reorder_rate: float = 0.0
    #: Holdback queue bound; when full, the oldest held message is
    #: flushed (delivered late) to make room.
    reorder_depth: int = 4
    #: Crash the peer permanently after this many sends (None = never).
    crash_after: int | None = None


class FaultyChannel:
    """A chaos proxy in front of a real channel.

    ``sleep`` receives injected delays; the default records them in
    :attr:`total_delay` without sleeping (right for virtual-time tests).
    Pass ``time.sleep`` to make delays real on wall-clock transports.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan or FaultPlan()
        self._rng = random.Random(self.plan.seed)
        self._sleep = sleep
        self._peer_dead = False
        #: Active partition mode: None, "both", "tx" (requests lost
        #: before the peer), or "rx" (peer applies, responses lost).
        self._partition: str | None = None
        self.sends = 0
        self.drops = 0
        self.response_drops = 0
        self.duplicates = 0
        self.delays = 0
        self.total_delay = 0.0
        self.partition_drops = 0
        #: Messages held back for reordering / late deliveries made.
        self.reorders = 0
        self.reorder_flushes = 0
        self._holdback: list[tuple[str, Message]] = []

    # -- fault controls -------------------------------------------------
    def kill(self) -> None:
        """Crash the peer: every later send raises ChannelClosed."""
        self._peer_dead = True

    def revive(self) -> None:
        """Undo :meth:`kill` (a restarted peer)."""
        self._peer_dead = False

    def partition(self, mode: str = "both") -> None:
        """Cut the link until :meth:`heal`.

        ``"both"`` — nothing crosses in either direction;
        ``"tx"``   — this side's sends never reach the peer (timeout,
                     peer never applied anything);
        ``"rx"``   — the peer receives and applies every send, but
                     every response/ack is lost on the way back (the
                     caller times out after real side effects — the
                     asymmetric cut split-brain drills need).
        """
        if mode not in ("both", "tx", "rx"):
            raise ValueError(f"unknown partition mode {mode!r}")
        self._partition = mode

    def heal(self) -> None:
        """Remove the partition (traffic flows, faults still apply)."""
        self._partition = None

    @property
    def partitioned(self) -> str | None:
        return self._partition

    # -- Channel protocol ----------------------------------------------
    def set_handler(self, handler: MessageHandler) -> None:
        self.inner.set_handler(handler)

    def _pre_send(self, message: Message, timeout: float) -> None:
        """Common fault rolls before a delivery attempt."""
        self.sends += 1
        if self.plan.crash_after is not None and self.sends > self.plan.crash_after:
            self._peer_dead = True
        if self._peer_dead:
            raise ChannelClosed(
                f"peer crashed (send #{self.sends}, seed {self.plan.seed})"
            )
        if self._partition in ("both", "tx"):
            # The cut swallows the request before the peer sees it.
            self.partition_drops += 1
            self._charge(timeout)
            raise ChannelTimeout(
                f"request xid={message.xid} lost in {self._partition!r} "
                f"partition after {timeout}s"
            )
        if self._rng.random() < self.plan.drop_rate:
            self.drops += 1
            self._charge(timeout)
            raise ChannelTimeout(
                f"request xid={message.xid} dropped after {timeout}s"
            )
        if self._rng.random() < self.plan.delay_rate:
            low, high = self.plan.delay_range
            self.delays += 1
            self._charge(self._rng.uniform(low, high))

    def _charge(self, seconds: float) -> None:
        self.total_delay += seconds
        if self._sleep is not None and seconds > 0:
            self._sleep(seconds)

    # -- reordering (bounded holdback queue) ---------------------------
    def _maybe_hold(self, kind: str, message: Message) -> bool:
        """Roll the reorder fault; True means the send was held back."""
        if self._rng.random() >= self.plan.reorder_rate:
            return False
        self.reorders += 1
        self._holdback.append((kind, message))
        while len(self._holdback) > max(1, self.plan.reorder_depth):
            self._deliver_late(*self._holdback.pop(0))
        return True

    def _deliver_late(self, kind: str, message: Message) -> None:
        """Deliver a held message out of order; its response is lost
        (the caller long since timed out — dedup absorbs the replay)."""
        self.reorder_flushes += 1
        try:
            if kind == "request":
                self.inner.request(message)
            else:
                self.inner.notify(message)
        except (ChannelClosed, ChannelTimeout):
            pass

    def flush_holdback(self) -> int:
        """Deliver every held message now, oldest first; returns count.

        Called automatically after each successful send (that is what
        makes the held messages *reordered* rather than lost) and on
        :meth:`close`; deterministic — no randomness in the flush.
        """
        held, self._holdback = self._holdback, []
        for kind, message in held:
            self._deliver_late(kind, message)
        return len(held)

    def request(self, message: Message, timeout: float = 10.0) -> Message:
        self._pre_send(message, timeout)
        if self._maybe_hold("request", message):
            self._charge(timeout)
            raise ChannelTimeout(
                f"request xid={message.xid} held back for reordering "
                f"after {timeout}s"
            )
        response = self.inner.request(message, timeout=timeout)
        # Predecessors held in the queue come out *behind* this send —
        # the definition of reordering on a message channel.
        self.flush_holdback()
        if self._partition == "rx":
            # The peer applied the request; only the answer is lost.
            self.partition_drops += 1
            self._charge(timeout)
            raise ChannelTimeout(
                f"response for xid={message.xid} lost in 'rx' partition "
                "(request was applied)"
            )
        if self._rng.random() < self.plan.duplicate_rate:
            self.duplicates += 1
            self.inner.request(message, timeout=timeout)
        if self._rng.random() < self.plan.response_drop_rate:
            self.response_drops += 1
            self._charge(timeout)
            raise ChannelTimeout(
                f"response for xid={message.xid} dropped (request was applied)"
            )
        return response

    def notify(self, message: Message) -> None:
        self._pre_send(message, timeout=0.0)
        if self._maybe_hold("notify", message):
            raise ChannelTimeout(
                f"notify xid={message.xid} held back for reordering"
            )
        self.inner.notify(message)
        self.flush_holdback()
        if self._rng.random() < self.plan.duplicate_rate:
            self.duplicates += 1
            self.inner.notify(message)

    def close(self) -> None:
        self.flush_holdback()
        self.inner.close()
