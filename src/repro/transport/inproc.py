"""Synchronous in-process transport.

:class:`InProcPair` creates two linked channel endpoints. A ``request``
on one endpoint invokes the peer's handler in the caller's thread and
returns its response directly — deterministic and fast, which is what
unit tests and the discrete-event simulator need. Notifications are
delivered the same way (handler return value discarded).

An optional per-direction latency callback lets the simulator charge
modelled control-plane delay without real sleeping.
"""

from __future__ import annotations

from typing import Callable

from repro.observability.metrics import default_registry
from repro.protocol.errors import ErrorCode, ProtocolError
from repro.protocol.messages import ErrorMessage, Message
from repro.transport.base import ChannelClosed, MessageHandler


class _InProcEndpoint:
    """One side of an in-process channel pair."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._peer: "_InProcEndpoint | None" = None
        self._handler: MessageHandler | None = None
        self._closed = False
        self.sent_messages = 0
        self.received_messages = 0
        self.on_deliver: Callable[[Message], None] | None = None
        # Channels have no natural per-OBI owner, so they report on the
        # process-wide registry; handles are resolved once per endpoint.
        registry = default_registry()
        self._m_sent = registry.counter("transport_sent_total", transport="inproc")
        self._m_received = registry.counter(
            "transport_received_total", transport="inproc"
        )

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def _deliver(self, message: Message) -> Message | None:
        if self._closed:
            raise ChannelClosed(f"endpoint {self.name} is closed")
        self.received_messages += 1
        self._m_received.inc()
        if self.on_deliver is not None:
            self.on_deliver(message)
        if self._handler is None:
            raise ProtocolError(ErrorCode.NOT_CONNECTED, f"{self.name} has no handler")
        return self._handler(message)

    def request(self, message: Message, timeout: float = 10.0) -> Message:
        if self._closed or self._peer is None:
            raise ChannelClosed(f"endpoint {self.name} is closed")
        self.sent_messages += 1
        self._m_sent.inc()
        response = self._peer._deliver(message)
        if response is None:
            return ErrorMessage(
                xid=message.xid,
                code=ErrorCode.INTERNAL_ERROR,
                detail="peer returned no response",
            )
        return response

    def notify(self, message: Message) -> None:
        if self._closed or self._peer is None:
            raise ChannelClosed(f"endpoint {self.name} is closed")
        self.sent_messages += 1
        self._m_sent.inc()
        self._peer._deliver(message)

    def close(self) -> None:
        self._closed = True

    def reopen(self) -> None:
        """Bring a closed endpoint back into service.

        Models a process restart at the same address: the peer keeps its
        reference across the outage (its sends fail with
        :class:`ChannelClosed` while closed, exactly like a connection
        refused), and reopening restores delivery. The handler is *not*
        preserved semantics-wise — a restarted process re-installs its
        own via ``set_handler`` (or inherits the old one for tests that
        restart only one side).
        """
        self._closed = False


class InProcPair:
    """A linked pair of in-process channel endpoints."""

    def __init__(self, left_name: str = "left", right_name: str = "right") -> None:
        self.left = _InProcEndpoint(left_name)
        self.right = _InProcEndpoint(right_name)
        self.left._peer = self.right
        self.right._peer = self.left

    def close(self) -> None:
        self.left.close()
        self.right.close()

    def reopen(self) -> None:
        self.left.reopen()
        self.right.reopen()
