"""The Channel abstraction shared by all transports."""

from __future__ import annotations

from typing import Callable, Protocol

from repro.protocol.messages import Message

#: A handler receives an incoming message and may return a response
#: message (for requests) or None (for notifications).
MessageHandler = Callable[[Message], Message | None]


class ChannelClosed(ConnectionError):
    """The peer is gone or the channel was shut down."""


class ChannelTimeout(ChannelClosed):
    """The peer did not answer within the request's timeout.

    Distinct from a plain :class:`ChannelClosed` because the message
    *may have been applied* (only the response was lost) — callers that
    retry must re-send the same ``xid`` so receivers can deduplicate.
    """


class Channel(Protocol):
    """A bidirectional message channel to a single peer."""

    def set_handler(self, handler: MessageHandler) -> None:
        """Install the callback invoked for each incoming message."""

    def request(self, message: Message, timeout: float = 10.0) -> Message:
        """Send ``message`` and block for the peer's response."""

    def notify(self, message: Message) -> None:
        """Send ``message`` without waiting for a response."""

    def close(self) -> None:
        """Tear the channel down; further sends raise ChannelClosed."""
