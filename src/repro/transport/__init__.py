"""Transport channels carrying OpenBox protocol messages.

Two interchangeable implementations of the same :class:`Channel`
interface:

* :mod:`repro.transport.inproc` — synchronous in-process channels, used
  by tests and the network simulator (deterministic, no threads);
* :mod:`repro.transport.rest` — the dual REST channel of the paper
  (§3.3): each side runs an HTTP server and POSTs JSON-encoded messages
  to its peer. TLS is omitted (see DESIGN.md substitutions).
"""

from repro.transport.base import Channel, ChannelClosed, MessageHandler
from repro.transport.inproc import InProcPair
from repro.transport.rest import RestEndpoint, RestPeerChannel

__all__ = [
    "Channel",
    "ChannelClosed",
    "InProcPair",
    "MessageHandler",
    "RestEndpoint",
    "RestPeerChannel",
]
