"""Transport channels carrying OpenBox protocol messages.

Two interchangeable implementations of the same :class:`Channel`
interface:

* :mod:`repro.transport.inproc` — synchronous in-process channels, used
  by tests and the network simulator (deterministic, no threads);
* :mod:`repro.transport.rest` — the dual REST channel of the paper
  (§3.3): each side runs an HTTP server and POSTs JSON-encoded messages
  to its peer. TLS is omitted (see DESIGN.md substitutions).

Plus two composable wrappers for fault tolerance:

* :mod:`repro.transport.faults` — seeded chaos injection (drops,
  delays, duplicates, crashes) around any channel;
* :mod:`repro.transport.retry` — bounded exponential-backoff retry,
  safe because receivers deduplicate by ``xid``.
"""

from repro.transport.base import Channel, ChannelClosed, ChannelTimeout, MessageHandler
from repro.transport.faults import FaultPlan, FaultyChannel
from repro.transport.inproc import InProcPair
from repro.transport.rest import RestEndpoint, RestPeerChannel
from repro.transport.retry import ResilientChannel, RetryPolicy

__all__ = [
    "Channel",
    "ChannelClosed",
    "ChannelTimeout",
    "FaultPlan",
    "FaultyChannel",
    "InProcPair",
    "MessageHandler",
    "ResilientChannel",
    "RestEndpoint",
    "RestPeerChannel",
    "RetryPolicy",
]
