"""Controller-side telemetry bus: fold streams, fan out watches.

The bus is the consumer half of PROTOCOL.md §13. ``apply_stream`` takes
one ``TelemetryStream`` batch, drops records at or below the per-OBI
high-water seq (at-least-once dedup), folds the rest into pull-shaped
per-OBI state (see :mod:`repro.telemetry.records`), and delivers each
fresh record as an *event* to every matching watch and callback.

Events are dicts::

    {"obi_id": ..., "segment": ..., "topic": ..., "seq": ..., "record": ...}

:class:`TopicFilter` scopes a watch by topic, OBI, segment subtree
("core/east" matches "core/east" and "core/east/leaf1"), or origin app.
App filters only match records that *name* apps — alerts (origin_app)
and traces (span origin apps); metric records carry no app attribution
and are excluded by any app filter.

:class:`Watch` is the iterator form of the northbound API: a bounded
pending queue (overflow is counted, never blocking the fold) drained by
``take()`` / iteration. ``subscribe(callback)`` is the push form —
callbacks run inline on the folding thread and must be cheap.
"""

from __future__ import annotations

import collections
import copy
import threading
from typing import Any, Callable, Iterable, Iterator

from repro.protocol.messages import ObservabilitySnapshotResponse, TelemetryStream
from repro.telemetry.records import (
    DEFAULT_KEEP_ALERTS,
    DEFAULT_KEEP_TRACES,
    empty_state,
    fold_records,
    record_topic,
)


def _record_apps(record: dict[str, Any]) -> set[str]:
    """Origin apps a record names (empty for metric/baseline records)."""
    kind = record.get("kind")
    if kind == "alert":
        app = record.get("alert", {}).get("origin_app", "")
        return {app} if app else set()
    if kind == "trace":
        return {
            span.get("origin_app", "")
            for span in record.get("trace", {}).get("spans", [])
            if span.get("origin_app")
        }
    return set()


class TopicFilter:
    """Declarative scope for a watch/subscription (None = match all)."""

    def __init__(
        self,
        topics: Iterable[str] | None = None,
        obi_ids: Iterable[str] | None = None,
        segments: Iterable[str] | None = None,
        apps: Iterable[str] | None = None,
    ) -> None:
        self.topics = frozenset(topics) if topics else None
        self.obi_ids = frozenset(obi_ids) if obi_ids else None
        self.segments = frozenset(segments) if segments else None
        self.apps = frozenset(apps) if apps else None

    def matches(self, event: dict[str, Any]) -> bool:
        if self.topics is not None and event["topic"] not in self.topics:
            return False
        if self.obi_ids is not None and event["obi_id"] not in self.obi_ids:
            return False
        if self.segments is not None:
            segment = event.get("segment", "")
            if not any(
                segment == wanted or segment.startswith(wanted + "/")
                for wanted in self.segments
            ):
                return False
        if self.apps is not None:
            if not (_record_apps(event["record"]) & self.apps):
                return False
        return True


class Watch:
    """Iterator-form subscription: bounded pending queue of events."""

    def __init__(
        self,
        bus: "TelemetryBus",
        topic_filter: TopicFilter,
        max_pending: int = 1024,
    ) -> None:
        self._bus = bus
        self.filter = topic_filter
        self.max_pending = max(1, max_pending)
        self._pending: collections.deque[dict[str, Any]] = collections.deque()
        #: Events discarded because the watcher fell max_pending behind.
        self.dropped = 0
        self.closed = False

    def _offer(self, event: dict[str, Any]) -> None:
        if self.closed:
            return
        if len(self._pending) >= self.max_pending:
            # Shed the *new* event: retained history stays contiguous
            # and the drop is visible, mirroring the ring's accounting.
            self.dropped += 1
            return
        self._pending.append(event)

    def take(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Drain up to ``limit`` pending events (all when None)."""
        out: list[dict[str, Any]] = []
        while self._pending and (limit is None or len(out) < limit):
            out.append(self._pending.popleft())
        return out

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        while self._pending:
            yield self._pending.popleft()

    def close(self) -> None:
        self.closed = True
        self._bus._detach(self)


class TelemetryBus:
    """Folds pushed TelemetryStream batches; fans out to watchers."""

    def __init__(
        self,
        keep_traces: int = DEFAULT_KEEP_TRACES,
        keep_alerts: int = DEFAULT_KEEP_ALERTS,
    ) -> None:
        self.keep_traces = keep_traces
        self.keep_alerts = keep_alerts
        self._lock = threading.RLock()
        self._states: dict[str, dict[str, Any]] = {}
        self._watches: list[Watch] = []
        self._callbacks: list[tuple[Callable[[dict[str, Any]], None], TopicFilter]] = []
        self.streams_received = 0
        self.records_folded = 0
        self.duplicates = 0
        self.lost_total = 0

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def _state(self, obi_id: str) -> dict[str, Any]:
        state = self._states.get(obi_id)
        if state is None:
            state = empty_state()
            state["meta"] = {}
            state["last_seq"] = 0
            state["lost_total"] = 0
            state["duplicates"] = 0
            self._states[obi_id] = state
        return state

    def apply_stream(self, stream: TelemetryStream, segment: str = "") -> int:
        """Fold one batch; returns how many records were fresh.

        Records with seq at or below the per-OBI high-water mark are
        duplicates from an at-least-once replay and are counted, not
        refolded (folding them would be harmless for metrics — absolute
        values — but would duplicate traces/alerts).
        """
        events: list[dict[str, Any]] = []
        with self._lock:
            state = self._state(stream.obi_id)
            last_seq = state["last_seq"]
            fresh = [
                record
                for record in stream.records
                if int(record.get("seq", 0)) > last_seq
            ]
            dup = len(stream.records) - len(fresh)
            fold_records(state, fresh, self.keep_traces, self.keep_alerts)
            top = last_seq
            for record in fresh:
                meta = record.get("meta")
                if meta:
                    state["meta"].update(meta)
                top = max(top, int(record.get("seq", 0)))
            state["last_seq"] = max(top, stream.through_seq)
            state["lost_total"] += stream.lost
            state["duplicates"] += dup
            self.streams_received += 1
            self.records_folded += len(fresh)
            self.duplicates += dup
            self.lost_total += stream.lost
            for record in fresh:
                events.append({
                    "obi_id": stream.obi_id,
                    "segment": segment,
                    "topic": record_topic(record),
                    "seq": int(record.get("seq", 0)),
                    "record": record,
                })
            watches = list(self._watches)
            callbacks = list(self._callbacks)
        for event in events:
            for watch in watches:
                if watch.filter.matches(event):
                    watch._offer(event)
            for callback, topic_filter in callbacks:
                if topic_filter.matches(event):
                    callback(event)
        return len(fresh)

    def reset(self, obi_id: str, cursor: int = 0) -> None:
        """Rewind the dedup watermark (NACK-driven replay).

        ``cursor=0`` discards the folded state entirely — the replay
        will rebuild it from the baseline the OBI re-sends.
        """
        with self._lock:
            if cursor == 0:
                self._states.pop(obi_id, None)
                self._state(obi_id)
            else:
                self._state(obi_id)["last_seq"] = cursor

    # ------------------------------------------------------------------
    # Reading folded state
    # ------------------------------------------------------------------
    def known_obis(self) -> list[str]:
        with self._lock:
            return sorted(self._states)

    def last_seq(self, obi_id: str) -> int:
        with self._lock:
            state = self._states.get(obi_id)
            return state["last_seq"] if state else 0

    def state(self, obi_id: str) -> dict[str, Any] | None:
        """Deep copy of the folded per-OBI state (None if unknown)."""
        with self._lock:
            state = self._states.get(obi_id)
            return copy.deepcopy(state) if state else None

    def snapshot_response(
        self,
        obi_id: str,
        include_traces: bool = True,
        max_traces: int = 0,
    ) -> ObservabilitySnapshotResponse | None:
        """Folded state re-shaped as a pull-path snapshot response.

        This is what lets ``ObiStatsTracker`` and every downstream
        consumer of the polling API run unchanged on pushed telemetry.
        """
        with self._lock:
            state = self._states.get(obi_id)
            if state is None:
                return None
            meta = state["meta"]
            traces: list[dict[str, Any]] = []
            if include_traces:
                traces = copy.deepcopy(state["traces"])
                if max_traces:
                    traces = traces[-max_traces:]
            return ObservabilitySnapshotResponse(
                obi_id=obi_id,
                graph_version=int(
                    meta.get("graph_version", state.get("graph_version", 0))
                ),
                metrics=copy.deepcopy(state["metrics"]),
                traces=traces,
                packets_seen=int(meta.get("packets_seen", 0)),
                packets_sampled=int(meta.get("packets_sampled", 0)),
                sample_rate=float(meta.get("sample_rate", 0.0)),
            )

    # ------------------------------------------------------------------
    # Northbound watch/subscribe
    # ------------------------------------------------------------------
    def watch(
        self,
        topics: Iterable[str] | None = None,
        obi_ids: Iterable[str] | None = None,
        segments: Iterable[str] | None = None,
        apps: Iterable[str] | None = None,
        max_pending: int = 1024,
    ) -> Watch:
        """Iterator-form subscription over future matching events."""
        watch = Watch(
            self, TopicFilter(topics, obi_ids, segments, apps), max_pending
        )
        with self._lock:
            self._watches.append(watch)
        return watch

    def subscribe(
        self,
        callback: Callable[[dict[str, Any]], None],
        topics: Iterable[str] | None = None,
        obi_ids: Iterable[str] | None = None,
        segments: Iterable[str] | None = None,
        apps: Iterable[str] | None = None,
    ) -> Callable[[], None]:
        """Callback-form subscription; returns an unsubscribe handle."""
        entry = (callback, TopicFilter(topics, obi_ids, segments, apps))
        with self._lock:
            self._callbacks.append(entry)

        def unsubscribe() -> None:
            with self._lock:
                if entry in self._callbacks:
                    self._callbacks.remove(entry)

        return unsubscribe

    def _detach(self, watch: Watch) -> None:
        with self._lock:
            if watch in self._watches:
                self._watches.remove(watch)
