"""Streaming telemetry bus: push-based observability at fleet scale.

PR 4's observability is pull-based: the controller sweeps every OBI
with ``ObservabilitySnapshotRequest`` on every tick, so telemetry cost
grows linearly with fleet size whether or not anything changed. This
package inverts the flow — OBIs *push* cursored records (sparse metric
deltas, sampled trace spans, alerts) through a bounded
:class:`~repro.telemetry.ring.TelemetryRing`, the controller folds them
into per-OBI snapshot state (:class:`~repro.telemetry.bus.TelemetryBus`)
and exposes a ``watch()``/``subscribe()`` northbound API — so cost
scales with *change rate*, not OBI count.

Wire format: ``TelemetrySubscribe`` / ``TelemetryStream`` /
``TelemetryAck`` (PROTOCOL.md §13). Delivery is at-least-once: records
carry ring sequence numbers, the subscriber's cursor dedupes replays,
and eviction is never silent (drop accounting + rebaseline).
"""

from repro.telemetry.ring import TelemetryRing
from repro.telemetry.records import (
    RECORD_KINDS,
    TOPIC_ALERTS,
    TOPIC_METRICS,
    TOPIC_TRACES,
    alert_record,
    baseline_record,
    fold_records,
    metrics_delta_record,
    record_topic,
    trace_record,
)
from repro.telemetry.publisher import TelemetryPublisher
from repro.telemetry.bus import TelemetryBus, TopicFilter, Watch

__all__ = [
    "TelemetryRing",
    "TelemetryPublisher",
    "TelemetryBus",
    "TopicFilter",
    "Watch",
    "RECORD_KINDS",
    "TOPIC_METRICS",
    "TOPIC_TRACES",
    "TOPIC_ALERTS",
    "alert_record",
    "baseline_record",
    "fold_records",
    "metrics_delta_record",
    "record_topic",
    "trace_record",
]
