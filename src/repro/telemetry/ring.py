"""Cursored telemetry ring: the durable buffer behind the push bus.

This is the generalization of the headless-mode ``HeadlessBuffer``
(``obi/headless.py``): the same bounded ring with honest drop
accounting, extended with two things the push bus needs —

* **Sequence numbers.** Every appended record is stamped with a
  monotonically increasing ``seq``; a batch on the wire names the exact
  interval it covers, so replays after a reconnect are deduplicated by
  comparing seqs rather than by trusting delivery order.
* **Per-subscriber cursors.** Each named subscriber tracks the last seq
  it has durably consumed. ``read_after`` serves any cursor position;
  ``ack`` advances a cursor (never backwards), ``rewind`` moves it back
  (NACK-driven replay). A subscriber that falls behind eviction gets a
  *counted* gap (``lost``), never a silent one — the consumer knows to
  request a fresh baseline.

Memory stays bounded exactly as before: once ``capacity`` is reached,
the oldest record is evicted and the eviction is counted (``dropped`` /
``dropped_total``). ``HeadlessBuffer`` is now a thin subclass that keeps
its original drain/requeue surface (see ``obi/headless.py``).
"""

from __future__ import annotations

import collections
from typing import Any, Iterable


class TelemetryRing:
    """Bounded, seq-stamped record log with per-subscriber cursors."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: collections.deque[tuple[int, Any]] = collections.deque()
        self._next_seq = 1
        #: Evictions in the current (untaken) episode — see take_dropped().
        self.dropped = 0
        #: Lifetime counters, never reset.
        self.appended_total = 0
        self.dropped_total = 0
        self._cursors: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_seq(self) -> int:
        """Seq of the newest record ever appended (0 before the first)."""
        return self._next_seq - 1

    @property
    def oldest_seq(self) -> int | None:
        """Seq of the oldest *retained* record (None when empty)."""
        return self._entries[0][0] if self._entries else None

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def append(self, record: Any) -> int:
        """Stamp and store one record; evicts (and counts) when full."""
        if len(self._entries) >= self.capacity:
            self._entries.popleft()
            self.dropped += 1
            self.dropped_total += 1
        seq = self._next_seq
        self._next_seq += 1
        self._entries.append((seq, record))
        self.appended_total += 1
        return seq

    def prepend(self, records: Iterable[Any]) -> None:
        """Re-insert history at the *oldest* end, oldest record first.

        Used when a partially consumed batch must regain its place ahead
        of anything appended later (headless replay died midway). The
        re-inserted records take descending seqs below the current
        oldest; entries shoved past ``capacity`` evict from the *newest*
        end — the front is the oldest history and is what the drop count
        already promised to preserve first.
        """
        base = self.oldest_seq if self._entries else self._next_seq
        seq = base - 1
        for record in reversed(list(records)):
            self._entries.appendleft((seq, record))
            seq -= 1
        while len(self._entries) > self.capacity:
            self._entries.pop()
            self.dropped += 1
            self.dropped_total += 1

    def clear(self) -> list[Any]:
        """Remove and return every retained record (cursors untouched)."""
        records = [record for _, record in self._entries]
        self._entries.clear()
        return records

    def take_dropped(self) -> int:
        """The episode's drop count, resetting it (totals retained)."""
        dropped, self.dropped = self.dropped, 0
        return dropped

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def read_after(
        self, cursor: int, limit: int | None = None
    ) -> tuple[int, list[tuple[int, Any]]]:
        """Records strictly after ``cursor``, plus the evicted-gap size.

        Returns ``(lost, [(seq, record), ...])`` where ``lost`` counts
        records the cursor never saw because they were evicted before
        this read. ``limit`` caps the batch (subscriber window).
        """
        lost = 0
        # An empty ring still implies loss when history was appended and
        # then evicted/cleared past the cursor: everything up to last_seq
        # is gone, so the effective "oldest retained" is next_seq.
        oldest = self._entries[0][0] if self._entries else self._next_seq
        if cursor + 1 < oldest:
            lost = oldest - cursor - 1
        out: list[tuple[int, Any]] = []
        for seq, record in self._entries:
            if seq <= cursor:
                continue
            out.append((seq, record))
            if limit is not None and len(out) >= limit:
                break
        return lost, out

    # ------------------------------------------------------------------
    # Cursors
    # ------------------------------------------------------------------
    def register(self, name: str, cursor: int | None = None) -> int:
        """Create or refresh subscriber ``name``; returns its cursor.

        ``cursor=None`` resumes an existing cursor (0 for a brand-new
        subscriber — i.e. replay from the start of retained history).
        """
        if cursor is None:
            cursor = self._cursors.get(name, 0)
        self._cursors[name] = cursor
        return cursor

    def cursor(self, name: str) -> int:
        return self._cursors.get(name, 0)

    def ack(self, name: str, seq: int) -> int:
        """Advance ``name`` to ``seq`` (never backwards); returns it."""
        cur = max(self._cursors.get(name, 0), seq)
        self._cursors[name] = cur
        return cur

    def rewind(self, name: str, seq: int) -> int:
        """Move ``name`` back to ``seq`` (NACK replay); returns it."""
        cur = min(self._cursors.get(name, 0), seq)
        self._cursors[name] = cur
        return cur

    def forget(self, name: str) -> None:
        self._cursors.pop(name, None)

    def pending(self, name: str) -> int:
        """How many retained records subscriber ``name`` has not read."""
        return sum(1 for seq, _ in self._entries if seq > self.cursor(name))
