"""OBI-side telemetry producer: diff, stamp, push, replay.

The publisher owns the instance's :class:`TelemetryRing` and turns
registry snapshots into the cursored record stream of PROTOCOL.md §13:

* :meth:`collect` diffs the current registry snapshot against the last
  *published* one and appends a sparse absolute-value ``metrics`` record
  (or a full ``baseline`` when one is owed — first contact, explicit
  rewind to evicted history, or any counted gap). New sampled traces are
  appended by their tracer ordinal, so a trace is published exactly once.
* :meth:`build_stream` reads the subscriber's cursor forward (bounded by
  the window credit unless draining) into a ``TelemetryStream``.
* :meth:`handle_ack` advances the cursor on an ACK, rewinds it on a
  NACK, and tears the subscription down when the consumer fenced the
  stream as stale (``stale_generation`` — a newer controller owns the
  fleet; it will resubscribe under its own epoch).

Delivery is at-least-once by construction: the cursor only moves on an
explicit ACK, so a batch whose ack was lost is simply re-read and the
consumer dedupes by seq.
"""

from __future__ import annotations

import copy
from typing import Any, Iterable

from repro.protocol.errors import ErrorCode
from repro.protocol.messages import (
    Alert,
    ErrorMessage,
    TelemetryAck,
    TelemetryStream,
    TelemetrySubscribe,
)
from repro.telemetry.records import (
    ALL_TOPICS,
    alert_record,
    baseline_record,
    metrics_delta_record,
    record_topic,
    trace_record,
)
from repro.telemetry.ring import TelemetryRing


class TelemetryPublisher:
    """Produces the cursored telemetry stream for one OBI."""

    def __init__(self, obi_id: str, capacity: int = 1024) -> None:
        self.obi_id = obi_id
        self.ring = TelemetryRing(capacity)
        #: Active subscription (one consumer — the controller — per the
        #: single-controller-per-OBI model); None until subscribed.
        self.subscription: dict[str, Any] | None = None
        self._last_snapshot: dict[str, Any] = {}
        self._last_meta: dict[str, Any] = {}
        #: Highest PacketTrace.seq (ordinal among sampled) published.
        self._last_trace_seq = 0
        self._needs_baseline = True
        self.streams_sent = 0
        self.records_sent = 0
        self.acks_ok = 0
        self.nacks = 0

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------
    def subscribe(self, message: TelemetrySubscribe, epoch: int = 0) -> None:
        """Register (or refresh) the consumer named in ``message``."""
        topics = frozenset(message.topics) if message.topics else frozenset(ALL_TOPICS)
        self.subscription = {
            "subscriber": message.subscriber,
            "topics": topics,
            "window": max(1, message.window),
            "epoch": epoch,
        }
        cursor = None if message.cursor < 0 else message.cursor
        self.ring.register(message.subscriber, cursor)

    def unsubscribe(self) -> None:
        self.subscription = None

    def _gap(self) -> bool:
        """True when the subscriber's cursor points at evicted history."""
        sub = self.subscription
        if sub is None:
            return False
        cursor = self.ring.cursor(sub["subscriber"])
        oldest = (
            self.ring.oldest_seq
            if len(self.ring)
            else self.ring.last_seq + 1
        )
        return cursor + 1 < oldest

    # ------------------------------------------------------------------
    # Producing records
    # ------------------------------------------------------------------
    def collect(
        self,
        snapshot: dict[str, Any],
        meta: dict[str, Any] | None = None,
        traces: Iterable[dict[str, Any]] = (),
    ) -> int:
        """Fold current state into the ring; returns records appended.

        The caller takes the snapshot and the trace list atomically with
        respect to engine swaps (the OBI holds its engine lock), so every
        appended record's absolute values are mutually consistent and
        ring order matches snapshot order — the invariant that keeps a
        consumer's folded counters monotonic.
        """
        meta = dict(meta or {})
        appended = 0
        if self._gap():
            # Evicted history may have carried the only update to some
            # key; a fresh baseline makes the gap recoverable (the lost
            # count still reaches the consumer via the stream).
            self._needs_baseline = True
        if self._needs_baseline:
            record = baseline_record(snapshot, meta.get("graph_version", 0))
            record["meta"] = meta
            self.ring.append(record)
            self._needs_baseline = False
            appended += 1
        else:
            delta = metrics_delta_record(self._last_snapshot, snapshot)
            if delta is None and meta != self._last_meta:
                delta = {
                    "kind": "metrics",
                    "counters": {},
                    "gauges": {},
                    "histograms": {},
                }
            if delta is not None:
                delta["meta"] = meta
                self.ring.append(delta)
                appended += 1
        self._last_snapshot = copy.deepcopy(snapshot)
        self._last_meta = meta
        for trace in traces:
            seq = int(trace.get("seq", 0))
            if seq > self._last_trace_seq:
                self.ring.append(trace_record(trace))
                self._last_trace_seq = seq
                appended += 1
        return appended

    def note_alert(self, alert: Alert) -> None:
        """Mirror an upstream alert into the telemetry ring at send time."""
        self.ring.append(alert_record({
            "obi_id": alert.obi_id,
            "block": alert.block,
            "origin_app": alert.origin_app,
            "message": alert.message,
            "severity": alert.severity,
            "packet_summary": alert.packet_summary,
            "count": alert.count,
        }))

    # ------------------------------------------------------------------
    # The wire
    # ------------------------------------------------------------------
    def build_stream(self, drain: bool = False) -> TelemetryStream | None:
        """The next batch for the subscriber (None when nothing to say).

        ``drain`` ignores the window credit and returns everything
        pending — the one-shot form behind the poll compatibility
        wrappers. Records outside the subscribed topics still advance
        ``through_seq`` (the consumer acks past them) but do not travel.
        """
        sub = self.subscription
        if sub is None:
            return None
        name = sub["subscriber"]
        cursor = self.ring.cursor(name)
        limit = None if drain else sub["window"]
        lost, entries = self.ring.read_after(cursor, limit)
        topics = sub["topics"]
        records: list[dict[str, Any]] = []
        through = cursor
        for seq, record in entries:
            through = seq
            if record_topic(record) not in topics:
                continue
            wire = dict(record)
            wire["seq"] = seq
            records.append(wire)
        if not records and not lost and through == cursor:
            return None
        _, remaining = self.ring.read_after(through)
        stream = TelemetryStream(
            obi_id=self.obi_id,
            subscriber=name,
            records=records,
            lost=lost,
            pending=len(remaining),
            through_seq=through,
            epoch=sub["epoch"],
        )
        self.streams_sent += 1
        self.records_sent += len(records)
        return stream

    def handle_ack(self, ack: Any) -> bool:
        """Apply the consumer's verdict; True iff the cursor advanced."""
        sub = self.subscription
        if sub is None or ack is None:
            return False
        if isinstance(ack, TelemetryAck):
            if ack.ok:
                self.acks_ok += 1
                self.ring.ack(sub["subscriber"], ack.cursor)
                if ack.window > 0:
                    sub["window"] = ack.window
                return True
            self.nacks += 1
            if ack.error == ErrorCode.STALE_GENERATION:
                # A newer controller fenced this stream; stop pushing
                # until it subscribes under its own epoch.
                self.subscription = None
            else:
                self.ring.rewind(sub["subscriber"], ack.cursor)
            return False
        if (
            isinstance(ack, ErrorMessage)
            and ack.code == ErrorCode.STALE_GENERATION
        ):
            self.nacks += 1
            self.subscription = None
        return False
