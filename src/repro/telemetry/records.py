"""Telemetry record shapes and the fold that reconstructs snapshots.

Records are plain JSON-able dicts so they travel unchanged inside
``TelemetryStream`` messages. Four kinds:

* ``baseline`` — a full :meth:`MetricsRegistry.snapshot` plus context
  gauges. Replaces the consumer's metric state wholesale. Emitted on
  subscribe and after any counted loss (ring eviction past a cursor),
  so a gap never leaves a consumer permanently stale.
* ``metrics`` — a **sparse absolute-value delta**: only the instrument
  keys whose values changed since the last published record, carrying
  their *new absolute values* (not arithmetic differences). Folding is
  therefore a plain ``dict.update`` — idempotent under at-least-once
  redelivery, and the folded state is byte-identical to a full poll of
  the same registry (the pull-vs-push equivalence the tests gate).
* ``trace`` — one sampled packet trace (``PacketTrace.to_dict()``).
* ``alert`` — one upstream alert, mirrored at send/buffer time.

``fold_records`` applies a batch to per-OBI consumer state shaped like
the pull path's ``ObservabilitySnapshotResponse`` payload, so the
controller's existing stats aggregation consumes push output unchanged.
"""

from __future__ import annotations

import copy
from typing import Any, Iterable

TOPIC_METRICS = "metrics"
TOPIC_TRACES = "traces"
TOPIC_ALERTS = "alerts"

ALL_TOPICS = (TOPIC_METRICS, TOPIC_TRACES, TOPIC_ALERTS)

RECORD_KINDS = ("baseline", "metrics", "trace", "alert")

#: How many folded trace/alert records a consumer retains per OBI.
DEFAULT_KEEP_TRACES = 64
DEFAULT_KEEP_ALERTS = 128


def record_topic(record: dict[str, Any]) -> str:
    """The topic a record belongs to (baselines ride the metrics topic)."""
    kind = record.get("kind")
    if kind == "trace":
        return TOPIC_TRACES
    if kind == "alert":
        return TOPIC_ALERTS
    return TOPIC_METRICS


def baseline_record(
    snapshot: dict[str, Any], graph_version: int = 0
) -> dict[str, Any]:
    return {
        "kind": "baseline",
        "snapshot": copy.deepcopy(snapshot),
        "graph_version": graph_version,
    }


def metrics_delta_record(
    before: dict[str, Any], after: dict[str, Any]
) -> dict[str, Any] | None:
    """Sparse absolute-value delta ``before -> after`` (None if equal).

    Every changed counter/gauge key carries its new absolute value;
    changed histograms travel whole (boundaries/counts/count/sum) so
    the fold can replace rather than re-derive them.
    """
    b_counters = before.get("counters", {})
    counters = {
        key: value
        for key, value in after.get("counters", {}).items()
        if b_counters.get(key) != value
    }
    b_gauges = before.get("gauges", {})
    gauges = {
        key: value
        for key, value in after.get("gauges", {}).items()
        if b_gauges.get(key) != value
    }
    b_hists = before.get("histograms", {})
    histograms = {
        key: copy.deepcopy(hist)
        for key, hist in after.get("histograms", {}).items()
        if b_hists.get(key) != hist
    }
    if not counters and not gauges and not histograms:
        return None
    return {
        "kind": "metrics",
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def trace_record(trace: dict[str, Any]) -> dict[str, Any]:
    return {"kind": "trace", "trace": trace}


def alert_record(alert: dict[str, Any]) -> dict[str, Any]:
    return {"kind": "alert", "alert": alert}


def empty_state() -> dict[str, Any]:
    """Fresh consumer-side per-OBI state (pull-snapshot shaped)."""
    return {
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "traces": [],
        "alerts": [],
        "graph_version": 0,
    }


def fold_records(
    state: dict[str, Any],
    records: Iterable[dict[str, Any]],
    keep_traces: int = DEFAULT_KEEP_TRACES,
    keep_alerts: int = DEFAULT_KEEP_ALERTS,
) -> dict[str, Any]:
    """Apply records to ``state`` in order; returns ``state`` (mutated).

    Baselines replace the metric sections wholesale; metric deltas are
    ``dict.update`` (absolute values, so refolding a replayed record is
    a no-op); traces/alerts append with bounded retention.
    """
    for record in records:
        kind = record.get("kind")
        if kind == "baseline":
            snapshot = copy.deepcopy(record.get("snapshot", {}))
            state["metrics"] = {
                "counters": snapshot.get("counters", {}),
                "gauges": snapshot.get("gauges", {}),
                "histograms": snapshot.get("histograms", {}),
            }
            state["graph_version"] = record.get(
                "graph_version", state.get("graph_version", 0)
            )
        elif kind == "metrics":
            metrics = state["metrics"]
            metrics["counters"].update(record.get("counters", {}))
            metrics["gauges"].update(record.get("gauges", {}))
            for key, hist in record.get("histograms", {}).items():
                metrics["histograms"][key] = copy.deepcopy(hist)
        elif kind == "trace":
            state["traces"].append(record["trace"])
            if len(state["traces"]) > keep_traces:
                del state["traces"][: -keep_traces]
        elif kind == "alert":
            state["alerts"].append(record["alert"])
            if len(state["alerts"]) > keep_alerts:
                del state["alerts"][: -keep_alerts]
    return state
