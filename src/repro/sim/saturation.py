"""Epoch-based saturation simulation of shared OBIs (validates Figure 9).

The analytic throughput regions of Figure 9 assume a fluid limit:
a VM's cycle budget divides perfectly between the two NFs' traffic.
This module *simulates* that claim instead of assuming it: offered load
arrives as discrete packets into per-VM queues; each epoch, every VM
spends its cycle budget processing queued packets (costed per packet by
the calibrated model); unserved packets accumulate and are eventually
dropped at a queue bound. Achieved throughput is goodput measured at the
sinks.

Two assignment policies mirror the paper's Figure 8 setups:

* ``static`` — each NF owns a dedicated VM (Figure 8(a)/(b));
* ``dynamic`` — every VM runs the merged graph and takes packets from
  both NFs' queues (Figure 8(c)), work-conserving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.packet import Packet
from repro.obi.engine import Engine
from repro.obi.translation import build_engine
from repro.sim.costmodel import CostModel, GraphCostProfile, VmSpec


@dataclass
class WorkloadSource:
    """One NF's offered load: packets replayed at ``offered_bps``."""

    name: str
    packets: list[Packet]
    offered_bps: float

    def __post_init__(self) -> None:
        if not self.packets:
            raise ValueError(f"workload {self.name!r} has no packets")
        self._cursor = 0
        self._mean_bits = sum(len(p) * 8 for p in self.packets) / len(self.packets)

    def packets_for(self, seconds: float) -> list[Packet]:
        """The packets offered during an epoch of ``seconds``."""
        count = int(round(self.offered_bps * seconds / self._mean_bits))
        batch = []
        for _ in range(count):
            batch.append(self.packets[self._cursor % len(self.packets)])
            self._cursor += 1
        return batch


@dataclass
class _Vm:
    spec: VmSpec
    engine: Engine
    profile: GraphCostProfile
    queue: list[tuple[str, Packet]] = field(default_factory=list)
    served_bits: dict[str, float] = field(default_factory=dict)
    dropped: int = 0


@dataclass
class SaturationResult:
    """Achieved per-NF goodput over the measured interval."""

    achieved_bps: dict[str, float]
    offered_bps: dict[str, float]
    drops: int

    def utilization_of(self, capacities: dict[str, float]) -> float:
        """Total capacity-normalized load actually served."""
        return sum(
            self.achieved_bps[name] / capacities[name] for name in self.achieved_bps
        )


def simulate_saturation(
    workloads: list[WorkloadSource],
    graphs_by_workload: dict[str, object],
    policy: str = "dynamic",
    replicas: int = 2,
    vm: VmSpec | None = None,
    model: CostModel | None = None,
    epochs: int = 50,
    epoch_seconds: float = 0.001,
    queue_bound: int = 3000,
    seed: int = 0,
) -> SaturationResult:
    """Simulate ``epochs`` of offered load and measure achieved goodput.

    ``graphs_by_workload`` maps each workload name to the processing
    graph its packets must traverse (under the dynamic policy this is
    typically the same merged graph for every workload).

    ``static`` assigns workload *i* to VM *i* (requires one VM per
    workload); ``dynamic`` lets every VM serve any queued packet,
    drawing round-robin across workloads (work conserving).
    """
    vm = vm or VmSpec()
    model = model or CostModel()
    rng = random.Random(seed)

    if policy == "static":
        if replicas != len(workloads):
            raise ValueError("static policy needs one VM per workload")
    elif policy != "dynamic":
        raise ValueError(f"unknown policy: {policy!r}")

    vms: list[_Vm] = []
    for index in range(replicas):
        if policy == "static":
            graph = graphs_by_workload[workloads[index].name]
        else:
            graph = graphs_by_workload[workloads[0].name]
        graph_copy = graph.copy(rename=True)
        engine = build_engine(graph_copy)
        vms.append(_Vm(
            spec=vm, engine=engine, profile=GraphCostProfile(graph_copy, model),
        ))

    total_drops = 0
    measured_bits: dict[str, float] = {w.name: 0.0 for w in workloads}
    measured_seconds = 0.0
    warmup = max(2, epochs // 10)

    for epoch in range(epochs):
        # Arrivals.
        for workload_index, workload in enumerate(workloads):
            batch = workload.packets_for(epoch_seconds)
            for packet in batch:
                if policy == "static":
                    target = vms[workload_index]
                else:
                    target = rng.choice(vms)
                if len(target.queue) >= queue_bound:
                    target.dropped += 1
                    total_drops += 1
                    continue
                target.queue.append((workload.name, packet))

        # Service: each VM spends its epoch cycle budget.
        for machine in vms:
            budget = machine.spec.cycles_per_second * epoch_seconds
            queue = machine.queue
            position = 0
            while position < len(queue) and budget > 0:
                name, packet = queue[position]
                outcome = machine.engine.process(packet.clone())
                cost = machine.profile.path_cost(outcome.path, packet)
                if cost > budget:
                    break
                budget -= cost
                if epoch >= warmup:
                    machine.served_bits[name] = (
                        machine.served_bits.get(name, 0.0) + len(packet) * 8
                    )
                position += 1
            del queue[:position]
        if epoch >= warmup:
            measured_seconds += epoch_seconds

    for machine in vms:
        for name, bits in machine.served_bits.items():
            measured_bits[name] += bits

    achieved = {
        name: bits / measured_seconds if measured_seconds else 0.0
        for name, bits in measured_bits.items()
    }
    return SaturationResult(
        achieved_bps=achieved,
        offered_bps={w.name: w.offered_bps for w in workloads},
        drops=total_drops,
    )
