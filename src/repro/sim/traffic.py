"""Synthetic campus-like trace generation.

Stand-in for the paper's "packet trace captured from a campus wireless
network" (§5.1). The generator is seeded and reproduces the statistical
properties the experiments depend on:

* a trimodal packet-size mix (TCP-ack-sized, mid, MTU-sized) with a mean
  around 800 bytes;
* flow structure: packets arrive grouped into 5-tuple flows drawn from
  configurable subnets;
* application mix: HTTP requests with realistic Host/URI variety (what
  the web cache and IPS inspect), DNS, TLS-port and bulk-TCP traffic;
* a small fraction of packets carrying IPS-triggering payloads
  (configurable, default 1%), so alert paths are exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.builder import make_tcp_packet, make_udp_packet
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags

#: (payload size, weight) — sizes chosen so the overall mean frame size
#: lands near the ~800-byte campus mix once headers are added.
_SIZE_MIX = ((0, 0.30), (512, 0.25), (1400, 0.45))

_HOSTS = (
    "www.example.edu", "portal.example.edu", "cdn.example.net",
    "mail.example.edu", "static.example.org", "video.example.net",
)
_URIS = (
    "/", "/index.html", "/news", "/login", "/static/app.js",
    "/images/logo.png", "/api/v1/items", "/search?q=network",
)
_ATTACK_PAYLOADS = (
    b"GET /../../etc/passwd HTTP/1.1\r\nHost: victim.example.edu\r\n\r\n",
    b"GET /item?id=1 union select password from users HTTP/1.1\r\n"
    b"Host: shop.example.edu\r\n\r\n",
    b"POST /cgi-bin/bash HTTP/1.1\r\nHost: x\r\n\r\n() { :;}; /bin/id",
)


@dataclass
class TraceConfig:
    """Knobs for the synthetic trace."""

    seed: int = 20160822  # SIGCOMM'16 week, for flavour
    num_packets: int = 2000
    num_flows: int = 200
    #: Client and server address pools (dotted-quad prefixes).
    client_subnets: tuple[str, ...] = ("10.11", "10.12", "172.16")
    server_subnets: tuple[str, ...] = ("192.168.10", "203.0.113", "198.51.100")
    http_fraction: float = 0.55
    dns_fraction: float = 0.10
    tls_fraction: float = 0.15
    attack_fraction: float = 0.01
    mean_interarrival: float = 1e-5


@dataclass
class _Flow:
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    kind: str
    host: str = ""


class TrafficGenerator:
    """Seeded generator producing reproducible packet lists."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()
        self._random = random.Random(self.config.seed)
        self._flows = [self._make_flow() for _ in range(self.config.num_flows)]

    def _addr(self, subnets: tuple[str, ...]) -> str:
        rnd = self._random
        prefix = rnd.choice(subnets)
        missing = 4 - len(prefix.split("."))
        suffix = ".".join(str(rnd.randrange(1, 255)) for _ in range(missing))
        return f"{prefix}.{suffix}"

    def _make_flow(self) -> _Flow:
        rnd = self._random
        cfg = self.config
        roll = rnd.random()
        if roll < cfg.http_fraction:
            kind, dst_port = "http", 80
        elif roll < cfg.http_fraction + cfg.dns_fraction:
            kind, dst_port = "dns", 53
        elif roll < cfg.http_fraction + cfg.dns_fraction + cfg.tls_fraction:
            kind, dst_port = "tls", 443
        else:
            kind, dst_port = "bulk", rnd.choice((21, 22, 25, 8080, 3306))
        return _Flow(
            src_ip=self._addr(cfg.client_subnets),
            dst_ip=self._addr(cfg.server_subnets),
            src_port=rnd.randrange(1024, 65535),
            dst_port=dst_port,
            kind=kind,
            host=rnd.choice(_HOSTS),
        )

    def _payload_for(self, flow: _Flow) -> bytes:
        rnd = self._random
        if rnd.random() < self.config.attack_fraction:
            return rnd.choice(_ATTACK_PAYLOADS)
        size = self._pick_size()
        if flow.kind == "http" and size > 0:
            uri = rnd.choice(_URIS)
            head = (
                f"GET {uri} HTTP/1.1\r\nHost: {flow.host}\r\n"
                f"User-Agent: repro/1.0\r\nAccept: */*\r\n\r\n"
            ).encode("latin-1")
            if len(head) >= size:
                return head
            return head + bytes(rnd.randrange(32, 127) for _ in range(size - len(head)))
        if size == 0:
            return b""
        return bytes(rnd.randrange(256) for _ in range(size))

    def _pick_size(self) -> int:
        roll = self._random.random()
        acc = 0.0
        for size, weight in _SIZE_MIX:
            acc += weight
            if roll < acc:
                return size
        return _SIZE_MIX[-1][0]

    def packets(self, count: int | None = None) -> list[Packet]:
        """Generate ``count`` packets (default: config.num_packets)."""
        rnd = self._random
        cfg = self.config
        total = count if count is not None else cfg.num_packets
        now = 0.0
        result: list[Packet] = []
        for _ in range(total):
            flow = rnd.choice(self._flows)
            now += rnd.expovariate(1.0 / cfg.mean_interarrival)
            if flow.kind == "dns":
                name = flow.host.encode("latin-1")
                packet = make_udp_packet(
                    flow.src_ip, flow.dst_ip, flow.src_port, 53,
                    payload=b"\x12\x34\x01\x00\x00\x01" + name,
                    timestamp=now,
                )
            else:
                packet = make_tcp_packet(
                    flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port,
                    payload=self._payload_for(flow),
                    flags=TcpFlags.ACK | TcpFlags.PSH,
                    timestamp=now,
                )
            result.append(packet)
        return result

    def overload_burst(
        self, num_packets: int, rate: float, start: float = 0.0
    ) -> list[Packet]:
        """A constant-rate saturating burst for overload-control scenarios.

        ``num_packets`` arrivals spaced exactly ``1/rate`` seconds apart
        starting at ``start`` — no exponential jitter, so an admission
        gate offered this burst above its refill rate drains its bucket
        deterministically and the seeded shed set is reproducible.
        """
        if rate <= 0:
            raise ValueError("rate must be positive")
        interarrival = 1.0 / rate
        packets = self.packets(num_packets)
        for index, packet in enumerate(packets):
            packet.timestamp = start + index * interarrival
        return packets

    def syn_flood(
        self,
        num_packets: int,
        dst_ip: str = "192.168.10.80",
        dst_port: int = 80,
        start: float = 0.0,
        rate: float = 100_000.0,
    ) -> list[Packet]:
        """A spoofed-source SYN flood (state-exhaustion attack traffic).

        Every packet is a bare SYN from a *unique* spoofed source
        (random address and port, never repeated within the flood), and
        no handshake ever completes — exactly the traffic that fills a
        naive connection table with embryonic entries. A conntrack table
        under :class:`~repro.obi.flowstate.FlowStatePolicy` must shed
        these while keeping established flows alive.
        """
        rnd = self._random
        seen: set[tuple[str, int]] = set()
        packets: list[Packet] = []
        for index in range(num_packets):
            while True:
                src = (
                    f"{rnd.randrange(1, 224)}.{rnd.randrange(256)}"
                    f".{rnd.randrange(256)}.{rnd.randrange(1, 255)}",
                    rnd.randrange(1024, 65535),
                )
                if src not in seen:
                    seen.add(src)
                    break
            packets.append(make_tcp_packet(
                src[0], dst_ip, src[1], dst_port,
                flags=TcpFlags.SYN,
                timestamp=start + index / rate,
            ))
        return packets

    def established_flows(
        self,
        num_flows: int,
        data_packets: int = 4,
        start: float = 0.0,
        rate: float = 10_000.0,
    ) -> tuple[list[Packet], list[_Flow]]:
        """Long-lived legitimate connections: full handshakes plus data.

        Each flow opens with SYN / SYN|ACK / ACK and then exchanges
        ``data_packets`` bidirectional segments. Packets from different
        flows are round-interleaved (flow 0's SYN, flow 1's SYN, ...,
        flow 0's SYN|ACK, ...) so the connection table holds every flow
        concurrently — the population a SYN flood must not evict.
        Returns the packets and the flow descriptors (for later probes).
        """
        rnd = self._random
        flows = [self._make_flow() for _ in range(num_flows)]
        # Per-flow packet scripts, then interleave round-robin.
        scripts: list[list[Packet]] = []
        for flow in flows:
            script = [
                make_tcp_packet(flow.src_ip, flow.dst_ip,
                                flow.src_port, flow.dst_port,
                                flags=TcpFlags.SYN),
                make_tcp_packet(flow.dst_ip, flow.src_ip,
                                flow.dst_port, flow.src_port,
                                flags=TcpFlags.SYN | TcpFlags.ACK),
                make_tcp_packet(flow.src_ip, flow.dst_ip,
                                flow.src_port, flow.dst_port,
                                flags=TcpFlags.ACK),
            ]
            for turn in range(data_packets):
                outbound = turn % 2 == 0
                script.append(make_tcp_packet(
                    flow.src_ip if outbound else flow.dst_ip,
                    flow.dst_ip if outbound else flow.src_ip,
                    flow.src_port if outbound else flow.dst_port,
                    flow.dst_port if outbound else flow.src_port,
                    payload=bytes(rnd.randrange(256)
                                  for _ in range(rnd.choice((0, 512, 1400)))),
                    flags=TcpFlags.ACK | TcpFlags.PSH,
                ))
            scripts.append(script)
        packets: list[Packet] = []
        depth = max(len(script) for script in scripts) if scripts else 0
        for round_index in range(depth):
            for script in scripts:
                if round_index < len(script):
                    packets.append(script[round_index])
        for index, packet in enumerate(packets):
            packet.timestamp = start + index / rate
        return packets, flows

    def mean_frame_size(self, packets: list[Packet]) -> float:
        return sum(len(packet) for packet in packets) / len(packets) if packets else 0.0
