"""A minimal discrete-event scheduler for the functional network sim."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventScheduler:
    """Virtual-time event loop.

    Events are (time, callback) pairs; ties break by scheduling order so
    runs are deterministic.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = start
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.executed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, next(self._sequence), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        self.schedule(max(0.0, when - self.now), callback)

    def schedule_every(
        self, interval: float, callback: Callable[[], None],
        until: float | None = None,
    ) -> None:
        """Run ``callback`` periodically (first firing after ``interval``)."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            if until is not None and self.now > until:
                return
            callback()
            self.schedule(interval, tick)

        self.schedule(interval, tick)

    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Execute the earliest event; False if none remain."""
        if not self._heap:
            return False
        when, _seq, callback = heapq.heappop(self._heap)
        self.now = when
        callback()
        self.executed += 1
        return True

    def run_until(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Run events with time <= deadline; returns events executed."""
        executed = 0
        while self._heap and self._heap[0][0] <= deadline:
            if executed >= max_events:
                raise RuntimeError("event budget exhausted (runaway simulation?)")
            self.step()
            executed += 1
        self.now = max(self.now, deadline)
        return executed

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the event queue completely."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise RuntimeError("event budget exhausted (runaway simulation?)")
        return executed
