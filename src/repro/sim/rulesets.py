"""Synthetic rule-set generators.

Stand-ins for the paper's proprietary inputs (§5.2): a "ruleset of 4560
firewall rules from a large firewall vendor" and "Snort web rules".
Both generators are seeded; structure follows published ruleset studies:
most firewall rules match a source or destination prefix plus a service
port, with a default-allow (throughput tests) or default-deny tail.
"""

from __future__ import annotations

import random

_SERVICES = (
    20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 389, 443, 445,
    465, 514, 587, 636, 993, 995, 1433, 1521, 3306, 3389, 5060, 5432,
    8080, 8443,
)

_INTERNAL_NETS = ("10.%d.0.0/16", "172.16.%d.0/24", "192.168.%d.0/24")
_EXTERNAL_NETS = ("203.0.%d.0/24", "198.51.%d.0/24", "100.64.%d.0/24")

_WEB_ATTACK_TOKENS = (
    "/etc/passwd", "/etc/shadow", "cmd.exe", "union select", "script>alert",
    "../..", "xp_cmdshell", "/bin/bash", "wp-admin", "%00", "<?php",
    "eval(", "base64_decode", "onmouseover=", "document.cookie",
    "/cgi-bin/", "passwd.txt", "boot.ini", "sqlmap", "information_schema",
)


def generate_firewall_rules(
    count: int = 4560,
    seed: int = 4560,
    alert_fraction: float = 0.35,
) -> str:
    """Generate ``count`` ACL rules in the repro firewall file format.

    Mirrors the paper's throughput methodology: no rule drops traffic
    outright (drops would empty the measured stream), matching rules
    raise alerts; the tail is allow-any. The header structure (prefix
    lengths, service ports) follows the shape of vendor rulesets.
    """
    rnd = random.Random(seed)
    lines = [f"# synthetic vendor-style firewall ruleset ({count} rules)"]
    for _ in range(count - 1):
        action = "alert" if rnd.random() < alert_fraction else "deny"
        proto = rnd.choice(("tcp", "tcp", "tcp", "udp"))
        inward = rnd.random() < 0.5
        if inward:
            src = rnd.choice(_EXTERNAL_NETS) % rnd.randrange(256)
            dst = rnd.choice(_INTERNAL_NETS) % rnd.randrange(256)
        else:
            src = rnd.choice(_INTERNAL_NETS) % rnd.randrange(256)
            dst = rnd.choice(_EXTERNAL_NETS) % rnd.randrange(256)
        if rnd.random() < 0.15:
            src = "any"
        if rnd.random() < 0.10:
            dst = "any"
        service = rnd.choice(_SERVICES)
        if rnd.random() < 0.12:
            dport = f"{service}:{service + rnd.randrange(1, 64)}"
        else:
            dport = str(service)
        lines.append(f"{action} {proto} {src} any {dst} {dport}")
    lines.append("allow any any any any any")
    return "\n".join(lines) + "\n"


#: Header variants for synthetic web rules: (src, dst, dport) triples.
#: Real Snort web rule files mix $EXTERNAL->$HOME with server-specific
#: nets and alternate HTTP ports; the variety keeps the IPS's own header
#: classifier realistic (it examines src/dst/proto/port, like the
#: firewall's), which is what makes classifier merging pay off.
_WEB_RULE_HEADERS = (
    ("$EXTERNAL_NET", "$HOME_NET", "80"),
    ("$EXTERNAL_NET", "$HOME_NET", "80"),
    ("$EXTERNAL_NET", "$HOME_NET", "80"),
    ("$EXTERNAL_NET", "192.168.10.0/24", "80"),
    ("$EXTERNAL_NET", "192.168.20.0/24", "80"),
    ("203.0.113.0/24", "$HOME_NET", "80"),
    ("$EXTERNAL_NET", "$HOME_NET", "8080"),
    ("$EXTERNAL_NET", "$HOME_NET", "8000:8099"),
)


def generate_snort_web_rules(count: int = 120, seed: int = 2971) -> str:
    """Generate Snort-style web rules (the paper's IPS input).

    Every rule targets HTTP toward web servers, with a content or pcre
    option drawn from classic web-attack tokens, mirroring the structure
    of the Snort web-* rule files.
    """
    rnd = random.Random(seed)
    lines = ["# synthetic snort web rules"]
    sid = 1000000
    for index in range(count):
        sid += 1
        token = rnd.choice(_WEB_ATTACK_TOKENS)
        suffix = rnd.randrange(10_000)
        if rnd.random() < 0.15:
            # pcre rule
            pattern = token.replace("(", r"\(").replace(")", r"\)")
            pattern = pattern.replace("/", r"\/").replace(" ", r"\s+")
            option = f'pcre:"/{pattern}[a-z]{{0,4}}{suffix % 7}?/i"'
        else:
            nocase = "" if rnd.random() < 0.5 else " nocase;"
            option = f'content:"{token}-{suffix}";{nocase}'
            if rnd.random() < 0.4:
                option = f'content:"{token}";{nocase}'
        src, dst, dport = rnd.choice(_WEB_RULE_HEADERS)
        lines.append(
            f'alert tcp {src} any -> {dst} {dport} '
            f'(msg:"WEB-ATTACK {token} #{index}"; {option} sid:{sid};)'
        )
    return "\n".join(lines) + "\n"


#: Variable map used with the synthetic Snort rules.
SNORT_VARIABLES = {
    "EXTERNAL_NET": "any",
    "HOME_NET": "any",
    "HTTP_PORTS": "80",
}
