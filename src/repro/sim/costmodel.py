"""The per-block cycle-cost model.

Calibration targets the paper's standalone measurements (Table 2):
a 4560-rule firewall at ~840 Mbps / ~48 µs and a Snort-web IPS at
~454 Mbps / ~76 µs, both on one VM, with the campus-trace packet mix.
The knobs below were fit once against those two anchors; everything
else (chains, merged graphs, regions) is *predicted* by the model from
the block paths the engine reports — that separation is what makes the
reproduced trends meaningful.

Cost structure:

* every block hop costs a fixed dispatch overhead (Click's per-element
  cost analog);
* header classification is priced like a compiled decision tree (Click's
  ``Classifier``): the dominant term is the number of *header fields*
  the rule set examines, plus a weak logarithmic term in the rule count,
  plus per-entry cost for a linear-scan implementation and a constant
  for the simulated TCAM. This matters for reproducing the paper's
  headline result: merging two classifiers yields one lookup whose cost
  is close to a single classification, not the sum of the two;
* DPI (regex/payload classification) is dominated by a per-payload-byte
  scan cost;
* payload transforms (gzip, HTML normalization) are per-byte;
* everything else is a small constant.

Costs are resolved once per graph into :class:`GraphCostProfile` — a
``fixed + per_payload_byte`` pair per block — so per-packet accounting
is a cheap sum over the traversed path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.graph import ProcessingGraph
from repro.net.packet import Packet
from repro.obi.engine import Engine


@dataclass(frozen=True)
class VmSpec:
    """A data-plane VM: one core of a 2016-era Xeon by default."""

    cycles_per_second: float = 3.0e9
    #: Fixed per-traversal latency: NIC, vhost, KVM exit/entry path.
    overhead_seconds: float = 40e-6


@dataclass(frozen=True)
class BlockCostProfile:
    """Resolved per-block cost: ``fixed + per_payload_byte * len(payload)``."""

    fixed: float
    per_payload_byte: float = 0.0

    def cost(self, payload_len: int) -> float:
        return self.fixed + self.per_payload_byte * payload_len


def _classifier_fields(rules: list) -> int:
    """How many distinct header fields the rule set examines."""
    fields: set[str] = set()
    for rule in rules or ():
        if isinstance(rule, dict):
            fields.update(
                key for key in rule
                if key in ("src_ip", "dst_ip", "src_port", "dst_port",
                           "proto", "vlan", "dscp")
            )
    return len(fields)


@dataclass
class CostModel:
    """Maps block types/configs to :class:`BlockCostProfile`."""

    block_dispatch: float = 150.0
    # Header classification (decision-tree style): the per-field term
    # dominates, rule count only enters logarithmically.
    header_classify_base: float = 2_000.0
    header_classify_per_field: float = 4_000.0
    header_classify_per_log_rule: float = 120.0
    header_classify_linear_per_rule: float = 110.0
    tcam_lookup: float = 500.0
    dpi_base: float = 1_000.0
    dpi_per_byte: float = 55.0
    modifier_base: float = 300.0
    gzip_per_byte: float = 45.0
    html_per_byte: float = 8.0
    shaper_cost: float = 200.0
    static_cost: float = 150.0
    alert_cost: float = 400.0
    metadata_block: float = 250.0
    nsh_codec: float = 450.0

    #: Per-type fixed-cost overrides for injected custom block types.
    custom_costs: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _header_classifier_fixed(self, config: dict) -> float:
        implementation = config.get("implementation", "trie")
        rules = config.get("rules") or []
        if implementation == "tcam":
            return self.tcam_lookup
        if implementation == "linear":
            return self.header_classify_linear_per_rule * max(len(rules), 1)
        return (
            self.header_classify_base
            + self.header_classify_per_field * _classifier_fields(rules)
            + self.header_classify_per_log_rule * math.log2(1 + len(rules))
        )

    def profile(self, block_type: str, config: dict) -> BlockCostProfile:
        """Resolve the cost profile of one block."""
        dispatch = self.block_dispatch
        if block_type in self.custom_costs:
            return BlockCostProfile(fixed=dispatch + self.custom_costs[block_type])
        if block_type == "HeaderClassifier":
            return BlockCostProfile(fixed=dispatch + self._header_classifier_fixed(config))
        if block_type == "RegexClassifier":
            return BlockCostProfile(
                fixed=dispatch + self.dpi_base, per_payload_byte=self.dpi_per_byte
            )
        if block_type == "HeaderPayloadClassifier":
            return BlockCostProfile(
                fixed=dispatch + self._header_classifier_fixed(config) + self.dpi_base,
                per_payload_byte=self.dpi_per_byte,
            )
        if block_type in ("GzipDecompressor", "GzipCompressor"):
            return BlockCostProfile(
                fixed=dispatch + self.modifier_base, per_payload_byte=self.gzip_per_byte
            )
        if block_type in ("HtmlNormalizer", "UrlNormalizer",
                          "HeaderPayloadRewriter", "HttpCacheResponder"):
            return BlockCostProfile(
                fixed=dispatch + self.modifier_base, per_payload_byte=self.html_per_byte
            )
        if block_type in ("NshEncapsulate", "NshDecapsulate",
                          "VxlanEncapsulate", "VxlanDecapsulate",
                          "GeneveEncapsulate", "GeneveDecapsulate"):
            return BlockCostProfile(fixed=dispatch + self.nsh_codec)
        if block_type in ("SetMetadata", "MetadataClassifier", "FlowClassifier",
                          "VlanClassifier", "ProtocolAnalyzer"):
            return BlockCostProfile(fixed=dispatch + self.metadata_block)
        if block_type == "Alert":
            return BlockCostProfile(fixed=dispatch + self.alert_cost)
        if block_type in ("BpsShaper", "PpsShaper", "Queue", "RedQueue", "DelayShaper"):
            return BlockCostProfile(fixed=dispatch + self.shaper_cost)
        if block_type in ("NetworkHeaderFieldRewriter", "Ipv4AddressTranslator",
                          "TcpPortTranslator", "DecTtl", "VlanEncapsulate",
                          "VlanDecapsulate", "StripEthernet", "Fragmenter",
                          "Defragmenter"):
            return BlockCostProfile(fixed=dispatch + self.modifier_base)
        # Terminals, Log, Counter, FlowTracker, StorePacket, Mirror, Tee.
        return BlockCostProfile(fixed=dispatch + self.static_cost)


class GraphCostProfile:
    """Per-block resolved costs for one graph."""

    def __init__(self, graph: ProcessingGraph, model: CostModel) -> None:
        self.graph = graph
        self.model = model
        self._profiles: dict[str, BlockCostProfile] = {}
        for block in graph.blocks.values():
            config = dict(block.config)
            if block.implementation is not None:
                config.setdefault("implementation", block.implementation)
            self._profiles[block.name] = model.profile(block.type, config)

    def path_cost(self, path: list[str], packet: Packet) -> float:
        payload_len = len(packet.payload)
        total = 0.0
        for name in path:
            profile = self._profiles.get(name)
            if profile is not None:
                total += profile.cost(payload_len)
        return total


@dataclass
class VmMeasurement:
    """Aggregate cost accounting for one VM over a trace."""

    packets: int = 0
    total_bits: float = 0.0
    total_cycles: float = 0.0
    total_path_len: int = 0
    per_packet_cycles: list = field(default_factory=list)

    def add(self, bits: float, cycles: float, path_len: int) -> None:
        self.packets += 1
        self.total_bits += bits
        self.total_cycles += cycles
        self.total_path_len += path_len
        self.per_packet_cycles.append(cycles)

    def latency_percentile(self, vm: VmSpec, percentile: float) -> float:
        """Per-packet latency at ``percentile`` (0-100), seconds.

        The paper reports mean latency only; percentiles expose the tail
        the trimodal packet mix induces (DPI cost scales with payload).
        """
        if not self.per_packet_cycles:
            return 0.0
        ordered = sorted(self.per_packet_cycles)
        index = min(
            len(ordered) - 1,
            max(0, int(round(percentile / 100.0 * (len(ordered) - 1)))),
        )
        return vm.overhead_seconds + ordered[index] / vm.cycles_per_second

    def throughput_bps(self, vm: VmSpec) -> float:
        """Saturation throughput: bits emitted per second of CPU time."""
        if self.total_cycles == 0:
            return float("inf")
        return vm.cycles_per_second * self.total_bits / self.total_cycles

    def latency_seconds(self, vm: VmSpec) -> float:
        """Mean unloaded per-packet latency for one traversal."""
        if self.packets == 0:
            return 0.0
        mean_cycles = self.total_cycles / self.packets
        return vm.overhead_seconds + mean_cycles / vm.cycles_per_second

    def mean_path_length(self) -> float:
        return self.total_path_len / self.packets if self.packets else 0.0


def measure_engine(
    engine: Engine,
    packets: list[Packet],
    model: CostModel,
) -> VmMeasurement:
    """Run ``packets`` through ``engine`` and account their path costs."""
    profile = GraphCostProfile(engine.graph, model)
    measurement = VmMeasurement()
    for packet in packets:
        clone = packet.clone()
        outcome = engine.process(clone)
        cycles = profile.path_cost(outcome.path, packet)
        measurement.add(
            bits=len(packet) * 8, cycles=cycles, path_len=len(outcome.path)
        )
    return measurement
