"""A functional packet-level network: hosts, OBIs, links, multiplexers.

This models the data-plane *forwarding* around OBIs (paper Figure 5):
packets leave a host, traverse a chain of OBIs — possibly through a
flow-hashing multiplexer in front of scaled replicas — and arrive at a
destination host. OBI output devices are wired to next nodes with
per-link latency; the whole thing runs on the virtual-time event
scheduler, which also drives OBI keepalives.

This network is *functional*: it moves real packets through real engine
code (NSH metadata and all). Performance numbers come from the cost
model in :mod:`repro.sim.runner`, not from here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.steering import SteeringHop
from repro.net.flow import FiveTuple
from repro.net.nsh import NshHeader
from repro.net.packet import Packet
from repro.obi.instance import OpenBoxInstance
from repro.sim.events import EventScheduler
from repro.transport.base import ChannelClosed


def flow_key_of(packet: Packet) -> int:
    """A load-balancing key for ``packet``, looking through NSH.

    Service-chain load balancers must hash the *inner* flow so that a
    flow keeps hitting the same replica regardless of encapsulation.
    """
    tuple5 = FiveTuple.of(packet)
    if tuple5 is None:
        try:
            nsh = NshHeader.parse(packet.data)
            inner = Packet(data=packet.data[nsh.header_len:])
            tuple5 = FiveTuple.of(inner)
        except ValueError:
            tuple5 = None
    return hash(tuple5.bidirectional_key()) if tuple5 is not None else 0


@dataclass
class ReceivedPacket:
    """A packet that arrived at a host, with its arrival time."""

    packet: Packet
    at: float


class Host:
    """A traffic endpoint: records everything it receives."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.received: list[ReceivedPacket] = []

    def deliver(self, network: "SimNetwork", packet: Packet) -> None:
        self.received.append(ReceivedPacket(packet=packet, at=network.clock.now))


class ObiNode:
    """An OBI attached to the network; output devices wire to next nodes."""

    def __init__(self, name: str, instance: OpenBoxInstance) -> None:
        self.name = name
        self.instance = instance
        self.dropped = 0
        self.punted = 0
        #: Packets refused by overload admission control — counted here
        #: so the packet-conservation invariant (injected == delivered +
        #: accounted drops) closes over every loss reason.
        self.shed = 0

    def deliver(self, network: "SimNetwork", packet: Packet) -> None:
        outcome = self.instance.process_packet(packet)
        if outcome.dropped:
            self.dropped += 1
        if outcome.punted:
            self.punted += 1
        if outcome.shed:
            self.shed += 1
        for devname, out_packet in outcome.outputs:
            network.emit(self.name, devname, out_packet)


class MultiplexerNode:
    """Flow-hash load balancing in front of OBI replicas (Figure 5, step 3->4).

    "this OBI is scaled to two instances, multiplexed by the network for
    load balancing" — replica choice uses the steering module's
    rendezvous hashing so flows stay pinned.
    """

    def __init__(self, name: str, hop: SteeringHop) -> None:
        self.name = name
        self.hop = hop
        self.per_replica: dict[str, int] = {}

    def deliver(self, network: "SimNetwork", packet: Packet) -> None:
        replica = self.hop.pick(flow_key_of(packet))
        self.per_replica[replica] = self.per_replica.get(replica, 0) + 1
        network.deliver(replica, packet)


@dataclass
class _Link:
    dst: str
    latency: float = 0.0


class SimNetwork:
    """The wiring fabric plus virtual clock."""

    def __init__(self) -> None:
        self.clock = EventScheduler()
        self.nodes: dict[str, object] = {}
        #: (node name, devname) -> link
        self.links: dict[tuple[str, str], _Link] = {}
        self.unrouted: list[tuple[str, str, Packet]] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        host = Host(name)
        self._add_node(name, host)
        return host

    def add_obi(self, name: str, instance: OpenBoxInstance) -> ObiNode:
        node = ObiNode(name, instance)
        self._add_node(name, node)
        return node

    def add_multiplexer(self, name: str, replicas: list[str],
                        weights: dict[str, float] | None = None) -> MultiplexerNode:
        node = MultiplexerNode(
            name, SteeringHop(group=name, replicas=replicas, weights=weights or {})
        )
        self._add_node(name, node)
        return node

    def _add_node(self, name: str, node: object) -> None:
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name!r}")
        self.nodes[name] = node

    def link(self, src: str, devname: str, dst: str, latency: float = 0.0) -> None:
        """Wire ``src``'s output device ``devname`` to node ``dst``."""
        for name in (src, dst):
            if name not in self.nodes:
                raise ValueError(f"unknown node: {name!r}")
        self.links[(src, devname)] = _Link(dst=dst, latency=latency)

    # ------------------------------------------------------------------
    # Packet movement
    # ------------------------------------------------------------------
    def inject(self, node: str, packet: Packet, at: float | None = None) -> None:
        """Schedule ``packet`` for delivery to ``node``."""
        when = at if at is not None else self.clock.now
        self.clock.schedule_at(when, lambda: self.deliver(node, packet))

    def deliver(self, node_name: str, packet: Packet) -> None:
        node = self.nodes.get(node_name)
        if node is None:
            raise KeyError(f"unknown node: {node_name!r}")
        node.deliver(self, packet)

    def emit(self, src: str, devname: str, packet: Packet) -> None:
        """An OBI emitted ``packet`` on ``devname``; follow the link."""
        link = self.links.get((src, devname))
        if link is None:
            self.unrouted.append((src, devname, packet))
            return
        if link.latency > 0:
            self.clock.schedule(link.latency, lambda: self.deliver(link.dst, packet))
        else:
            self.deliver(link.dst, packet)

    def run(self, until: float | None = None) -> int:
        if until is None:
            return self.clock.run()
        return self.clock.run_until(until)

    # ------------------------------------------------------------------
    # Control-plane beacons
    # ------------------------------------------------------------------
    def schedule_keepalives(self, name: str, interval: float | None = None) -> None:
        """Beacon an OBI node's keepalive every ``interval`` virtual seconds.

        ``interval`` defaults to the instance's configured
        ``keepalive_interval``. A dead controller makes the send raise
        ``ChannelClosed``; that is swallowed here — exactly the signal
        that eventually tips the OBI into headless mode, which recovery
        scenarios drive on this same virtual clock.
        """
        node = self.nodes.get(name)
        if not isinstance(node, ObiNode):
            raise ValueError(f"node {name!r} is not an OBI node")
        instance = node.instance
        period = (
            interval if interval is not None
            else instance.config.keepalive_interval
        )

        def beacon() -> None:
            try:
                instance.send_keepalive()
            except ChannelClosed:
                pass

        self.clock.schedule_every(period, beacon)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def observability(self, max_traces: int = 0) -> dict[str, object]:
        """Pull an observability snapshot from every OBI node.

        Returns node name -> serialized
        :class:`~repro.protocol.messages.ObservabilitySnapshotResponse`,
        the same shape the controller aggregates over the wire — handy
        for inspecting a simulation without standing up a control plane.
        """
        snapshots: dict[str, object] = {}
        for name, node in self.nodes.items():
            if isinstance(node, ObiNode):
                response = node.instance.observability_snapshot(
                    max_traces=max_traces
                )
                snapshots[name] = response.to_dict()
        return snapshots
