"""The experiment harness: chain vs merged performance measurement.

Reproduces the paper's two evaluation configurations (§5.3):

* **pipelined** — packets traverse a service chain of NFs, one per VM:
  chain throughput is the minimum over VMs, chain latency the sum
  (Figure 7(a)/(b), the "Regular ... chain" rows of Table 2);
* **merged/OpenBox** — the controller merges all NFs into one graph
  deployed on ``n`` OBI replicas, traffic load-balanced across them:
  throughput is the sum of replicas, latency that of a single traversal
  (Figure 7(c), the "OpenBox ... OBI" rows).

All numbers derive from the engine-reported block paths priced by the
cost model — no fabricated constants per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.apps import OpenBoxApplication
from repro.core.graph import ProcessingGraph
from repro.core.merge import MergePolicy, MergeResult, merge_graphs
from repro.net.packet import Packet
from repro.obi.translation import build_engine
from repro.sim.costmodel import (
    CostModel,
    GraphCostProfile,
    VmMeasurement,
    VmSpec,
    measure_engine,
)


@dataclass
class ChainMeasurement:
    """Throughput/latency of one configuration."""

    name: str
    vms_used: int
    throughput_bps: float
    latency_seconds: float
    per_vm: list[VmMeasurement]
    merge_result: MergeResult | None = None

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6

    @property
    def latency_us(self) -> float:
        return self.latency_seconds * 1e6

    def latency_percentile_us(self, percentile: float, vm: VmSpec | None = None) -> float:
        """End-to-end per-packet latency percentile in microseconds.

        Conservative composition for chains: the per-VM percentiles are
        summed (exact for a single VM; an upper-bound tail estimate for
        pipelines, since per-stage tails of one packet correlate through
        its payload size).
        """
        vm = vm or VmSpec()
        return sum(
            m.latency_percentile(vm, percentile) for m in self.per_vm
        ) * 1e6


def _graph_of(nf: "OpenBoxApplication | ProcessingGraph") -> ProcessingGraph:
    if isinstance(nf, ProcessingGraph):
        return nf
    statements = nf.statements()
    if len(statements) != 1:
        raise ValueError(f"NF {nf.name!r} must declare exactly one statement")
    return statements[0].graph


def measure_chain(
    nfs: list,
    packets: list[Packet],
    vm: VmSpec | None = None,
    model: CostModel | None = None,
    name: str = "chain",
) -> ChainMeasurement:
    """Pipelined configuration: one NF per VM, packets traverse all.

    Packets flow through NF *i*'s engine; its emitted packets feed NF
    *i+1* (drops shorten downstream load, exactly as on the testbed).
    """
    vm = vm or VmSpec()
    model = model or CostModel()
    per_vm: list[VmMeasurement] = []
    current = [packet.clone() for packet in packets]
    for nf in nfs:
        graph = _graph_of(nf).copy(rename=True)
        engine = build_engine(graph)
        profile = GraphCostProfile(graph, model)
        measurement = VmMeasurement()
        emitted: list[Packet] = []
        for packet in current:
            outcome = engine.process(packet)
            cycles = profile.path_cost(outcome.path, packet)
            measurement.add(len(packet) * 8, cycles, len(outcome.path))
            emitted.extend(out for _dev, out in outcome.outputs)
        per_vm.append(measurement)
        current = emitted
    throughput = min(m.throughput_bps(vm) for m in per_vm)
    latency = sum(m.latency_seconds(vm) for m in per_vm)
    return ChainMeasurement(
        name=name,
        vms_used=len(per_vm),
        throughput_bps=throughput,
        latency_seconds=latency,
        per_vm=per_vm,
    )


def measure_merged(
    nfs: list,
    packets: list[Packet],
    replicas: int = 2,
    vm: VmSpec | None = None,
    model: CostModel | None = None,
    policy: MergePolicy | None = None,
    name: str = "openbox",
) -> ChainMeasurement:
    """OpenBox configuration: merged graph on ``replicas`` OBIs.

    The same merged graph runs on every replica; the forwarding plane
    load-balances, so saturation throughput scales with the replica
    count while latency stays that of a single traversal.
    """
    vm = vm or VmSpec()
    model = model or CostModel()
    graphs = [_graph_of(nf) for nf in nfs]
    merge_result = merge_graphs(graphs, policy)
    engine = build_engine(merge_result.graph.copy(rename=True))
    measurement = measure_engine(engine, packets, model)
    single_vm_bps = measurement.throughput_bps(vm)
    return ChainMeasurement(
        name=name,
        vms_used=replicas,
        throughput_bps=single_vm_bps * replicas,
        latency_seconds=measurement.latency_seconds(vm),
        per_vm=[measurement],
        merge_result=merge_result,
    )


def measure_single(
    nf,
    packets: list[Packet],
    vm: VmSpec | None = None,
    model: CostModel | None = None,
    name: str | None = None,
) -> ChainMeasurement:
    """One NF on one VM (the standalone rows of Table 2)."""
    label = name or getattr(nf, "name", "nf")
    return measure_chain([nf], packets, vm=vm, model=model, name=label)


def throughput_region(
    capacity_a_bps: float,
    capacity_b_bps: float,
    replicas: int = 2,
    points: int = 21,
) -> dict[str, list[tuple[float, float]]]:
    """Achievable-throughput regions for the distinct-chain setup (Fig. 9).

    ``capacity_*_bps`` are the measured single-VM saturation throughputs
    of the two NFs. Returns the frontier of:

    * ``static`` — each NF owns one VM: the rectangle corner path
      ``(a <= cap_a, b <= cap_b)``;
    * ``dynamic`` — both NFs merged on all ``replicas`` OBIs: the fluid
      limit ``a/cap_a + b/cap_b <= replicas`` (each VM divides its cycle
      budget between the two NFs' traffic).
    """
    static = [
        (capacity_a_bps, 0.0),
        (capacity_a_bps, capacity_b_bps),
        (0.0, capacity_b_bps),
    ]
    dynamic: list[tuple[float, float]] = []
    for index in range(points):
        fraction = index / (points - 1)
        # Offered mix: fraction of VM cycles devoted to NF A.
        rate_a = replicas * fraction * capacity_a_bps
        rate_b = replicas * (1.0 - fraction) * capacity_b_bps
        dynamic.append((rate_a, rate_b))
    return {"static": static, "dynamic": dynamic}
