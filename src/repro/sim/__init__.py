"""Evaluation substrate: what stands in for the paper's 10 Gbps testbed.

The paper evaluates on two Xeon machines with KVM VMs and a campus
packet trace. This package substitutes (see DESIGN.md):

* :mod:`repro.sim.costmodel` — a calibrated per-block cycle-cost model;
  VM throughput and latency derive from the block paths packets actually
  take through the engine, so merge-induced path shortening translates
  into measured speedups exactly as in the paper;
* :mod:`repro.sim.traffic` — a seeded synthetic campus-like trace;
* :mod:`repro.sim.rulesets` — synthetic firewall (4560-rule scale) and
  Snort-web rule generators;
* :mod:`repro.sim.network` — a functional packet-level network: hosts,
  links, OBI placements, service chains with NSH hand-off;
* :mod:`repro.sim.runner` — the experiment harness the benchmarks call.
"""

from repro.sim.costmodel import CostModel, VmSpec
from repro.sim.runner import (
    ChainMeasurement,
    measure_chain,
    measure_merged,
    throughput_region,
)
from repro.sim.traffic import TraceConfig, TrafficGenerator

__all__ = [
    "ChainMeasurement",
    "CostModel",
    "TraceConfig",
    "TrafficGenerator",
    "VmSpec",
    "measure_chain",
    "measure_merged",
    "throughput_region",
]
