"""Wiring helpers: connect controllers and OBIs over a transport.

These helpers encapsulate the connection choreography so tests,
examples, and the simulator do not repeat it:

* :func:`connect_inproc` — deterministic in-process wiring;
* :func:`serve_controller_rest` / :func:`connect_obi_rest` — the paper's
  dual REST channel: the controller listens, each OBI runs its own local
  REST server and advertises it in ``Hello.callback_url``, and the
  controller connects back.
"""

from __future__ import annotations

from typing import Callable

from repro.controller.obc import OpenBoxController
from repro.obi.instance import OpenBoxInstance
from repro.protocol.messages import Hello, Message
from repro.transport.base import Channel
from repro.transport.inproc import InProcPair
from repro.transport.rest import RestEndpoint, RestPeerChannel
from repro.transport.retry import ResilientChannel, RetryPolicy, derive_seed


def connect_inproc(
    controller: OpenBoxController,
    instance: OpenBoxInstance,
    wrap_downstream: Callable[[Channel], Channel] | None = None,
) -> InProcPair:
    """Connect an OBI to a controller over an in-process channel pair.

    Performs the Hello handshake and binds the controller's downstream
    channel (triggering auto-deployment if enabled). ``wrap_downstream``
    decorates the controller→OBI channel before it is bound — the hook
    the fault-injection suite uses to interpose a
    :class:`~repro.transport.faults.FaultyChannel` and/or
    :class:`~repro.transport.retry.ResilientChannel`.
    """
    pair = InProcPair(left_name="obc", right_name=f"obi:{instance.config.obi_id}")
    pair.left.set_handler(controller.handle_message)
    instance.connect(pair.right)
    downstream: Channel = pair.left
    if wrap_downstream is not None:
        downstream = wrap_downstream(downstream)
    controller.connect_obi(instance.config.obi_id, downstream)
    return pair


def serve_controller_rest(
    controller: OpenBoxController,
    host: str = "127.0.0.1",
    port: int = 0,
    retry: RetryPolicy | None = None,
) -> RestEndpoint:
    """Start the controller's REST endpoint.

    Wraps the controller's handler so that when an OBI's ``Hello``
    arrives with a callback URL, the controller dials back — the "dual"
    half of the dual REST channel. ``retry`` hardens the dial-back
    channel with idempotent retry (safe: OBIs deduplicate by xid).
    """
    endpoint = RestEndpoint(host=host, port=port)

    def handler(message: Message) -> Message | None:
        response = controller.handle_message(message)
        if isinstance(message, Hello) and message.callback_url:
            downstream: Channel = RestPeerChannel(message.callback_url)
            if retry is not None:
                # Seed jitter by who we dial and under which epoch —
                # never by construction order, which two controllers
                # replaying the same journal would share (their
                # "jittered" retries would land in lockstep).
                downstream = ResilientChannel(
                    downstream, retry,
                    seed=derive_seed(
                        message.callback_url, controller.generation
                    ),
                )
            controller.connect_obi(message.obi_id, downstream)
        return response

    endpoint.set_handler(handler)
    endpoint.start()
    return endpoint


def connect_obi_rest(
    instance: OpenBoxInstance,
    controller_url: str,
    host: str = "127.0.0.1",
    port: int = 0,
    retry: RetryPolicy | None = None,
) -> tuple[RestEndpoint, Channel]:
    """Start an OBI's local REST server and register with the controller.

    Returns the OBI's endpoint and its upstream channel. The endpoint
    serves downstream requests (SetProcessingGraph, handles, stats);
    the channel carries upstream traffic (Hello, KeepAlive, Alerts),
    wrapped with retry/backoff when a ``retry`` policy is given.
    """
    endpoint = RestEndpoint(host=host, port=port)
    endpoint.set_handler(instance.handle_message)
    endpoint.start()
    upstream: Channel = RestPeerChannel(controller_url)
    if retry is not None:
        upstream = ResilientChannel(
            upstream, retry,
            seed=derive_seed(controller_url, instance.config.obi_id),
        )
    instance.set_upstream(upstream)
    instance.reconnect(callback_url=endpoint.url)
    return endpoint, upstream


def reconnect_inproc(
    controller: OpenBoxController,
    instance: OpenBoxInstance,
    pair: InProcPair,
    wrap_downstream: Callable[[Channel], Channel] | None = None,
) -> InProcPair:
    """Re-wire an existing in-process pair after a controller restart.

    Models a controller process coming back at the same address: the
    pair is reopened (sends during the outage failed with
    ``ChannelClosed``, like a refused connection), the recovered
    controller's handler is installed, and the OBI re-sends ``Hello`` —
    idempotent controller-side, carrying the running graph's digest so
    the recovered controller can *adopt* it instead of re-pushing
    (PROTOCOL.md §10). The OBI replays anything buffered while headless
    as part of the same exchange.
    """
    pair.reopen()
    pair.left.set_handler(controller.handle_message)
    instance.reconnect(pair.right)
    downstream: Channel = pair.left
    if wrap_downstream is not None:
        downstream = wrap_downstream(downstream)
    controller.connect_obi(instance.config.obi_id, downstream)
    return pair


def rehome_inproc(
    instance: OpenBoxInstance,
    candidates: list[tuple[str, OpenBoxController | None]],
) -> tuple[str, InProcPair] | None:
    """Re-home an OBI across controllers over fresh in-process pairs.

    Models the failover dial sequence (PROTOCOL.md §12): each candidate
    endpoint gets its own channel pair — a different controller lives
    at a different address — and the OBI walks them in order with
    :meth:`OpenBoxInstance.rehome`, skipping dead addresses (a ``None``
    controller: the pair is closed, so dialing it raises like a refused
    connection) and deposed leaders (stale HelloResponse generation).
    The winner's downstream channel is bound exactly like a reconnect.

    Returns ``(endpoint, pair)`` for the adopted controller, or None.
    """
    pairs: dict[str, tuple[InProcPair, OpenBoxController | None]] = {}
    dial_list = []
    for endpoint, controller in candidates:
        pair = InProcPair(
            left_name=f"obc:{endpoint}",
            right_name=f"obi:{instance.config.obi_id}",
        )
        if controller is None:
            pair.close()
        else:
            pair.left.set_handler(controller.handle_message)
        pairs[endpoint] = (pair, controller)
        dial_list.append((endpoint, pair.right))
    winner = instance.rehome(dial_list)
    if winner is None:
        return None
    pair, controller = pairs[winner]
    assert controller is not None
    controller.connect_obi(instance.config.obi_id, pair.left)
    return winner, pair


def reconnect_obi_rest(instance: OpenBoxInstance, endpoint: RestEndpoint) -> Message:
    """Re-register an OBI with a (possibly restarted) controller.

    The REST transport needs no channel surgery — every send opens a
    fresh connection, so a controller restarted at the same URL is
    reachable as soon as :func:`serve_controller_rest` installs its
    handler (the 503 window maps to ``ChannelClosed`` and is absorbed
    by retry policies). This just re-runs the Hello handshake on the
    existing upstream channel, advertising the same callback URL.
    """
    return instance.reconnect(callback_url=endpoint.url)
