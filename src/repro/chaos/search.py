"""Random scenario search: bounded vocabulary, shrinkable schedules.

Hand-written scenarios verify the failures someone already imagined;
the soak verifies the ones nobody did. :func:`random_scenario` draws a
schedule from the same bounded op vocabulary the declarative runner
executes — every fault is addressed by fault-point name, every knob by
a small numeric range — so any failing schedule is (a) replayable from
its seed alone and (b) *shrinkable*: :func:`shrink` greedily deletes
steps (ddmin-style, halving chunk sizes) while the failure reproduces,
leaving the minimal schedule to debug.

:func:`run_soak` is the nightly job: N seeds, each played to the end
with every invariant checked after every step; failing seeds are
persisted (schedule + violations + shrunken repro) as JSON under
``benchmarks/results/`` so a red nightly run ships its own repro.

Every schedule ends with a deterministic **heal epilogue** — lift all
faults, fail over if the leader was killed, revive dead OBIs, tick,
converge — because the strongest invariants (digest agreement, journal
replay) are promises about the *healed* system: chaos may bend the
fleet, but healing must always straighten it.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from typing import Any, Callable, Iterable

from repro.chaos.scenario import Scenario, ScenarioResult, ScenarioRunner, Step, step

#: Clock faults stay within one lease TTL so leadership perturbations
#: are recoverable by design (bigger jumps belong in targeted tests).
_MAX_CLOCK_JUMP = 25.0


def random_scenario(
    seed: int,
    steps: int = 40,
    obi_ids: tuple[str, ...] = ("obi-1", "obi-2"),
) -> Scenario:
    """A seeded random fault schedule over the standard topology."""
    rng = random.Random(seed)
    storage_points = (["storage:leader", "storage:standby"]
                      + [f"storage:{o}" for o in obi_ids])
    transport_points = (["transport:standby"]
                        + [f"transport:{o}" for o in obi_ids])
    clock_points = (["clock:leader", "clock:standby"]
                    + [f"clock:{o}" for o in obi_ids])

    schedule: list[Step] = []
    leader_dead = False
    failed_over = False
    dead_obis: set[str] = set()

    def fault_ops() -> list[tuple[float, Callable[[], Step | None]]]:
        return [
            (3.0, lambda: step("advance",
                               seconds=round(rng.uniform(0.5, 12.0), 3))),
            (3.0, lambda: step("inject", count=rng.randint(1, 8),
                               kind=rng.choice(["pass", "drop", "alert"]))),
            (2.0, lambda: step("tick")),
            (1.0, lambda: step("deploy", obi=rng.choice(obi_ids))),
            (1.0, lambda: step("storage_fail_writes",
                               point=rng.choice(storage_points),
                               error=rng.choice(["ENOSPC", "EIO"]),
                               count=rng.randint(1, 4))),
            (1.0, lambda: step("storage_fail_fsync",
                               point=rng.choice(storage_points),
                               error=rng.choice(["ENOSPC", "EIO"]),
                               count=rng.randint(1, 4))),
            (0.5, lambda: step("storage_lie_fsync",
                               point=rng.choice(storage_points),
                               count=rng.randint(1, 3))),
            (0.5, lambda: step("storage_fail_replace",
                               point=rng.choice(storage_points),
                               count=rng.randint(1, 2))),
            (0.5, lambda: step("storage_slow",
                               point=rng.choice(storage_points),
                               seconds=round(rng.uniform(0.01, 0.2), 3))),
            (1.0, lambda: step("storage_heal",
                               point=rng.choice(storage_points))),
            (1.0, lambda: step("partition",
                               point=rng.choice(transport_points),
                               mode=rng.choice(["both", "tx", "rx"]))),
            (1.0, lambda: step("heal", point=rng.choice(transport_points))),
            (0.5, lambda: step("clock_jump", point=rng.choice(clock_points),
                               seconds=round(rng.uniform(
                                   -_MAX_CLOCK_JUMP, _MAX_CLOCK_JUMP), 3))),
            (0.5, lambda: step("clock_skew", point=rng.choice(clock_points),
                               rate=round(rng.uniform(0.5, 2.0), 3))),
            (0.5, _kill_obi),
            (0.5, _revive_obi),
            (0.3, _kill_leader),
            (0.3, _fail_over),
        ]

    def _kill_obi() -> Step | None:
        candidates = [o for o in obi_ids if o not in dead_obis]
        if not candidates:
            return None
        victim = rng.choice(candidates)
        dead_obis.add(victim)
        return step("kill", point=f"process:{victim}")

    def _revive_obi() -> Step | None:
        if not dead_obis:
            return None
        lucky = rng.choice(sorted(dead_obis))
        dead_obis.discard(lucky)
        return step("revive", point=f"process:{lucky}")

    def _kill_leader() -> Step | None:
        nonlocal leader_dead
        if leader_dead:
            return None
        leader_dead = True
        return step("kill", point="process:leader")

    def _fail_over() -> Step | None:
        nonlocal failed_over
        if failed_over or not leader_dead:
            return None
        failed_over = True
        return [step("advance", seconds=61.0), step("fail_over")]  # type: ignore[return-value]

    while len(schedule) < steps:
        ops = fault_ops()
        total = sum(weight for weight, _ in ops)
        roll = rng.uniform(0.0, total)
        for weight, make in ops:
            roll -= weight
            if roll <= 0:
                produced = make()
                if produced is None:
                    break
                if isinstance(produced, list):
                    schedule.extend(produced)
                else:
                    schedule.append(produced)
                break

    # The deterministic heal epilogue (see module docstring).
    schedule.append(step("heal_all"))
    if leader_dead and not failed_over:
        schedule.append(step("advance", seconds=61.0))
        schedule.append(step("fail_over"))
    for name in sorted(dead_obis):
        schedule.append(step("revive", point=f"process:{name}"))
    schedule.append(step("advance", seconds=5.0))
    schedule.append(step("tick", n=2))
    schedule.append(step("converge"))
    schedule.append(step("inject", count=4))

    return Scenario(name=f"random-{seed}", steps=schedule, seed=seed)


def shrink(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_attempts: int = 200,
) -> Scenario:
    """Greedy ddmin-style schedule minimization.

    Repeatedly tries deleting chunks of steps (halving the chunk size
    down to 1) and keeps any deletion under which ``still_fails`` —
    typically "re-run in a fresh root and check it still violates" —
    remains true. The result reproduces the same failure with (usually
    far) fewer steps. ``max_attempts`` bounds total re-runs.
    """
    current = scenario
    attempts = 0
    chunk = max(1, len(current.steps) // 2)
    while chunk >= 1 and attempts < max_attempts:
        shrunk_this_pass = False
        start = 0
        while start < len(current.steps) and attempts < max_attempts:
            candidate_steps = (current.steps[:start]
                               + current.steps[start + chunk:])
            if not candidate_steps:
                start += chunk
                continue
            candidate = Scenario(
                name=current.name, steps=candidate_steps,
                seed=current.seed, env_kwargs=dict(current.env_kwargs),
            )
            attempts += 1
            if still_fails(candidate):
                current = candidate
                shrunk_this_pass = True
                # Same start index now names the next chunk.
            else:
                start += chunk
        if not shrunk_this_pass:
            chunk //= 2
    return current


def run_soak(
    seeds: Iterable[int] | int = 20,
    steps: int = 40,
    work_dir: str | None = None,
    results_dir: str | None = None,
    runner: ScenarioRunner | None = None,
    shrink_failures: bool = True,
) -> dict[str, Any]:
    """Play N random scenarios; persist every failing seed with a repro.

    Returns a summary dict (also what the nightly job uploads):
    ``{"scenarios", "passed", "failed", "failures": [...]}`` where each
    failure carries the seed, the violations, and the shrunken schedule.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    seed_list = list(seeds)
    runner = runner or ScenarioRunner()
    work_dir = work_dir or tempfile.mkdtemp(prefix="chaos-soak-")
    os.makedirs(work_dir, exist_ok=True)

    counter = 0

    def fresh_root() -> str:
        nonlocal counter
        counter += 1
        root = os.path.join(work_dir, f"run-{counter}")
        os.makedirs(root, exist_ok=True)
        return root

    failures: list[dict[str, Any]] = []
    for seed in seed_list:
        scenario = random_scenario(seed, steps=steps)
        result = runner.run(scenario, fresh_root())
        if result.ok:
            continue
        failure: dict[str, Any] = {
            "seed": seed,
            "steps": steps,
            "violations": [str(v) for v in result.violations],
            "error": result.error,
            "schedule": scenario.to_dict(),
        }
        if shrink_failures:
            def _reproduces(candidate: Scenario) -> bool:
                rerun = runner.run(candidate, fresh_root())
                return not rerun.ok
            shrunk = shrink(scenario, _reproduces, max_attempts=60)
            failure["shrunk_schedule"] = shrunk.to_dict()
        failures.append(failure)

    summary = {
        "scenarios": len(seed_list),
        "steps_per_scenario": steps,
        "passed": len(seed_list) - len(failures),
        "failed": len(failures),
        "failures": failures,
    }
    if results_dir is not None and failures:
        os.makedirs(results_dir, exist_ok=True)
        for failure in failures:
            path = os.path.join(
                results_dir, f"CHAOS_seed_{failure['seed']}.json"
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(failure, handle, indent=2, sort_keys=True)
    if results_dir is not None:
        os.makedirs(results_dir, exist_ok=True)
        with open(os.path.join(results_dir, "CHAOS_soak.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(
                {key: value for key, value in summary.items()
                 if key != "failures"},
                handle, indent=2, sort_keys=True,
            )
    return summary


def acceptance_scenario() -> Scenario:
    """The ISSUE's end-to-end acceptance schedule: ENOSPC during an
    fsync-batched append storm, graceful degradation, heal, automatic
    resume with a valid fresh segment (see tests/integration)."""
    return Scenario(
        name="enospc-degrade-heal-resume",
        seed=1337,
        steps=[
            # Healthy baseline: traffic flows, journal is in sync.
            step("inject", count=10),
            step("tick"),
            # The disk fills: every fsync refuses until healed.
            step("storage_fail_fsync", point="storage:leader",
                 error="ENOSPC"),
            # The next journaled mutation trips degraded mode.
            step("register_app", name="ips"),
            step("tick"),
            # Deploys are fenced; the data plane keeps forwarding.
            step("deploy", obi="obi-1"),
            step("inject", count=25),
            step("advance", seconds=5.0),
            step("inject", count=25),
            # Storage heals; the next tick's probe rebuilds a fresh
            # fsync'd segment and lifts the fence automatically.
            step("storage_heal", point="storage:leader"),
            step("tick"),
            step("deploy", obi="obi-1"),
            step("deploy", obi="obi-2"),
            step("tick"),
            step("converge"),
            step("inject", count=10),
        ],
    )
