"""System-wide invariants evaluated after every scenario step.

An :class:`Invariant` is a named predicate over the whole
:class:`~repro.chaos.env.ChaosEnv` — not one component's unit contract
but a promise the *system* keeps while faults rain down:

* **zero split-brain accepts** — once a successor leads, no push from
  the deposed leader is ever accepted (epoch fencing);
* **zero telemetry loss** — the cursored telemetry rings plus replay
  mean ``lost_total`` stays 0 on every controller;
* **packet conservation** — every injected packet is either delivered
  or accounted to a named loss reason (drop, punt, shed, unrouted);
  silent loss is the one unforgivable outcome;
* **digest agreement** — after a heal plus anti-entropy convergence,
  every OBI's running graph digest matches controller intent;
* **journal replay fidelity** — replaying the active controller's
  journal from disk reproduces its live intent (generation, apps,
  segments, per-OBI digests). Skipped while degraded: the journal is
  *known* stale then, by design, until the rebuild.

Checkers return ``None`` when satisfied or a human-readable detail
string; the :class:`~repro.chaos.scenario.ScenarioRunner` wraps details
into :class:`InvariantViolation` records with step provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.controller.journal import StateJournal

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.env import ChaosEnv


@dataclass(frozen=True)
class Invariant:
    """One named system-wide predicate."""

    name: str
    description: str
    check: Callable[["ChaosEnv"], str | None] = field(compare=False)

    def __call__(self, env: "ChaosEnv") -> str | None:
        return self.check(env)


@dataclass
class InvariantViolation:
    """One invariant broken at one step of one scenario."""

    invariant: str
    detail: str
    #: Index of the step after which the check failed (-1: final sweep).
    step_index: int = -1
    #: The operation that step performed.
    op: str = ""

    def __str__(self) -> str:
        where = f"step {self.step_index} ({self.op})" if self.op else "final"
        return f"[{self.invariant}] after {where}: {self.detail}"


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
def _check_split_brain(env: "ChaosEnv") -> str | None:
    if env.split_brain_accepts:
        return (
            f"{env.split_brain_accepts} push(es) from the deposed leader "
            "were accepted after a successor took over"
        )
    return None


def _check_telemetry(env: "ChaosEnv") -> str | None:
    lost = {
        f"c{index + 1}": controller.telemetry.lost_total
        for index, controller in enumerate(env.controllers())
    }
    total = sum(lost.values())
    if total:
        return f"telemetry records lost: {lost}"
    return None


def _check_conservation(env: "ChaosEnv") -> str | None:
    losses = env.drop_accounting()
    accounted = env.delivered() + sum(losses.values())
    if accounted != env.injected:
        return (
            f"injected {env.injected} != delivered {env.delivered()} "
            f"+ accounted losses {losses} (silent loss or duplication)"
        )
    return None


def _check_digest_agreement(env: "ChaosEnv") -> str | None:
    # Only promised after an explicit heal + converge; while faults are
    # standing (or convergence has not been run) divergence is expected.
    if not env.converged:
        return None
    active = env.active
    if active.degraded:
        return None
    for obi_id, obi in env.obis.items():
        handle = active.obis.get(obi_id)
        if handle is None or not handle.intended_digest:
            continue
        if obi.graph_digest != handle.intended_digest:
            return (
                f"{obi_id} runs digest {obi.graph_digest[:12]!r} but the "
                f"controller intends {handle.intended_digest[:12]!r} "
                "after convergence"
            )
    return None


def _check_journal_replay(env: "ChaosEnv") -> str | None:
    active = env.active
    if active.journal is None or active.degraded:
        return None
    replayed = StateJournal.replay(active.journal.path).state
    intent = active._journal_state()
    if replayed.generation != intent.generation:
        return (
            f"replayed generation {replayed.generation} != live "
            f"{intent.generation}"
        )
    if replayed.apps != intent.apps:
        return f"replayed apps {sorted(replayed.apps)} != live {sorted(intent.apps)}"
    if sorted(replayed.segments) != sorted(intent.segments):
        return (
            f"replayed segments {sorted(replayed.segments)} != live "
            f"{sorted(intent.segments)}"
        )
    if replayed.obis != intent.obis:
        return (
            f"replayed OBI intent diverges from live state: "
            f"{replayed.obis} != {intent.obis}"
        )
    return None


DEFAULT_INVARIANTS: tuple[Invariant, ...] = (
    Invariant(
        name="split_brain_accepts",
        description="no deposed leader's push is ever accepted",
        check=_check_split_brain,
    ),
    Invariant(
        name="telemetry_lossless",
        description="cursored telemetry rings lose nothing (lost_total == 0)",
        check=_check_telemetry,
    ),
    Invariant(
        name="packet_conservation",
        description="injected == delivered + counted drops per reason",
        check=_check_conservation,
    ),
    Invariant(
        name="digest_agreement",
        description="post-heal convergence leaves every OBI on intent",
        check=_check_digest_agreement,
    ),
    Invariant(
        name="journal_replay",
        description="journal replay reproduces live controller intent",
        check=_check_journal_replay,
    ),
)
