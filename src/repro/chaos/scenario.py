"""Declarative chaos scenarios: a seeded fault schedule + invariants.

A :class:`Scenario` is a list of :func:`step` operations played against
a fresh :class:`~repro.chaos.env.ChaosEnv`; the
:class:`ScenarioRunner` executes them in order and evaluates every
registered invariant **after each step**, so a violation is pinned to
the exact operation that caused it rather than discovered in a final
sweep. The op vocabulary is deliberately small and fault-point-addressed
— it is the same vocabulary the random search draws from, which is what
makes failing schedules shrinkable and replayable from a seed.

Operations (``step(op, **args)``):

======================  =================================================
``advance``             run virtual time ``seconds`` forward
``inject``              inject ``count`` packets of ``kind`` at the chain head
``tick``                ``n`` orchestration ticks on the live loop
``deploy``              push current intent to ``obi``
``register_app``        register (auto-deploy) app ``name``
``half_deploy``         the mid-deploy crash window (ips on obi-1 only)
``kill`` / ``revive``   a ``process:*`` fault point
``storage_fail_writes`` / ``storage_fail_fsync`` / ``storage_lie_fsync``
/ ``storage_fail_replace`` / ``storage_slow`` / ``storage_heal``
/ ``storage_crash``     a ``storage:*`` fault point
``partition`` / ``heal``  a ``transport:*`` fault point (``mode``)
``lease_partition`` / ``lease_heal``  cut ``owner`` off the lease store
``clock_jump`` / ``clock_skew`` / ``clock_reset``  a ``clock:*`` point
``fail_over``           standby lease + takeover + OBI re-homing
``ghost_deploy``        the deposed leader pushes anyway (must be fenced)
``converge``            anti-entropy until converged on the active leader
``heal_all``            lift every standing fault
======================  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.chaos.env import ChaosEnv
from repro.chaos.invariants import (
    DEFAULT_INVARIANTS,
    Invariant,
    InvariantViolation,
)
from repro.controller.lease import LeaseUnavailable
from repro.protocol.errors import ProtocolError
from repro.transport.base import ChannelClosed, ChannelTimeout

#: Exceptions an operation may *legitimately* surface under faults —
#: recorded as the step's outcome, never a scenario error.
EXPECTED_ERRORS = (ProtocolError, ChannelClosed, ChannelTimeout,
                   LeaseUnavailable, OSError)

#: Ops that do not disturb a previously established convergence (the
#: digest-agreement invariant only applies between ``converge`` and the
#: next intent mutation or fault).
_CONVERGENCE_SAFE = {
    "advance", "inject", "tick", "converge", "ghost_deploy",
    "heal", "storage_heal", "lease_heal", "clock_reset", "heal_all",
}


@dataclass(frozen=True)
class Step:
    """One scenario operation."""

    op: str
    args: dict[str, Any] = field(default_factory=dict)

    def to_list(self) -> list[Any]:
        return [self.op, dict(self.args)]


def step(op: str, **args: Any) -> Step:
    """Sugar: ``step("storage_fail_fsync", point="storage:leader")``."""
    return Step(op=op, args=args)


@dataclass
class Scenario:
    """A named, seeded, replayable fault schedule."""

    name: str
    steps: list[Step]
    seed: int = 0
    #: Extra :class:`ChaosEnv` constructor kwargs (plans, OBI count).
    env_kwargs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "steps": [s.to_list() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        return cls(
            name=str(data.get("name", "scenario")),
            seed=int(data.get("seed", 0)),
            steps=[Step(op=str(op), args=dict(args))
                   for op, args in data.get("steps", [])],
        )


@dataclass
class ScenarioResult:
    """What one scenario run observed."""

    scenario: Scenario
    ok: bool
    violations: list[InvariantViolation] = field(default_factory=list)
    #: Per-step record: {"op", "args", "outcome"}.
    observations: list[dict[str, Any]] = field(default_factory=list)
    steps_run: int = 0
    #: Non-empty on an *unexpected* exception (a scenario bug or a real
    #: crash in the system under test — always a failure).
    error: str = ""
    #: The environment, for post-run assertions (migrated tests).
    env: ChaosEnv | None = field(default=None, repr=False)

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.scenario.name}: OK "
                f"({self.steps_run} steps, seed {self.scenario.seed})"
            )
        lines = [
            f"{self.scenario.name}: FAILED after {self.steps_run} steps "
            f"(seed {self.scenario.seed})"
        ]
        lines += [f"  {v}" for v in self.violations]
        if self.error:
            lines.append(f"  error: {self.error}")
        return "\n".join(lines)


class ScenarioRunner:
    """Plays scenarios and holds the invariant catalog."""

    def __init__(
        self,
        invariants: Iterable[Invariant] = DEFAULT_INVARIANTS,
        env_factory: Callable[..., ChaosEnv] = ChaosEnv,
        fail_fast: bool = False,
    ) -> None:
        self.invariants = tuple(invariants)
        self.env_factory = env_factory
        self.fail_fast = fail_fast

    # ------------------------------------------------------------------
    def run(
        self,
        scenario: Scenario,
        root: str | None = None,
        env: ChaosEnv | None = None,
    ) -> ScenarioResult:
        """Play ``scenario`` against a fresh environment rooted at
        ``root`` (a scratch directory for journals/checkpoints), or
        against an existing ``env`` — which lets a test split one
        schedule into phases and assert on the environment in between.
        """
        if env is None:
            if root is None:
                raise ValueError("run() needs either a root or an env")
            env = self.env_factory(root, seed=scenario.seed,
                                   **scenario.env_kwargs)
        result = ScenarioResult(scenario=scenario, ok=True, env=env)
        for index, current in enumerate(scenario.steps):
            observation: dict[str, Any] = {
                "op": current.op, "args": dict(current.args),
            }
            try:
                observation["outcome"] = self._apply(env, current)
            except EXPECTED_ERRORS as exc:
                observation["outcome"] = f"raised {type(exc).__name__}: {exc}"
            except Exception as exc:  # noqa: BLE001 - a real bug: fail loud
                observation["outcome"] = f"ERROR {type(exc).__name__}: {exc}"
                result.observations.append(observation)
                result.steps_run = index + 1
                result.error = f"{type(exc).__name__}: {exc}"
                result.ok = False
                return result
            result.observations.append(observation)
            result.steps_run = index + 1
            if current.op not in _CONVERGENCE_SAFE:
                env.converged = False
            for invariant in self.invariants:
                detail = invariant(env)
                if detail is not None:
                    result.violations.append(InvariantViolation(
                        invariant=invariant.name, detail=detail,
                        step_index=index, op=current.op,
                    ))
            if result.violations and self.fail_fast:
                break
        result.ok = result.ok and not result.violations
        return result

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------
    def _apply(self, env: ChaosEnv, current: Step) -> Any:
        op, args = current.op, current.args
        if op == "advance":
            return env.advance(float(args.get("seconds", 1.0)))
        if op == "inject":
            env.inject(int(args.get("count", 1)),
                       kind=str(args.get("kind", "pass")))
            return env.injected
        if op == "tick":
            report = None
            for _ in range(int(args.get("n", 1))):
                report = env.tick()
            if report is None:
                return "no live orchestration loop"
            return {
                "leader": report.leader,
                "degraded": report.degraded,
                "journal_resumed": report.journal_resumed,
            }
        if op == "deploy":
            return env.deploy(str(args["obi"]))
        if op == "register_app":
            env.register_app(str(args["name"]))
            return True
        if op == "half_deploy":
            env.half_deploy()
            return True
        if op == "kill":
            env.point(str(args["point"])).kill()
            return True
        if op == "revive":
            env.point(str(args["point"])).revive()
            return True
        if op == "storage_fail_writes":
            env.point(str(args["point"])).fail_writes(
                error=str(args.get("error", "ENOSPC")),
                count=args.get("count"),
            )
            return True
        if op == "storage_fail_fsync":
            env.point(str(args["point"])).fail_fsync(
                error=str(args.get("error", "ENOSPC")),
                count=args.get("count"),
            )
            return True
        if op == "storage_lie_fsync":
            env.point(str(args["point"])).lie_fsync(args.get("count"))
            return True
        if op == "storage_fail_replace":
            env.point(str(args["point"])).fail_replace(
                error=str(args.get("error", "EIO")),
                count=args.get("count"),
            )
            return True
        if op == "storage_slow":
            env.point(str(args["point"])).slow_io(
                float(args.get("seconds", 0.1))
            )
            return True
        if op == "storage_heal":
            env.point(str(args["point"])).heal()
            return True
        if op == "storage_crash":
            env.point(str(args["point"])).crash(
                torn_tail=bool(args.get("torn_tail", False))
            )
            return True
        if op == "partition":
            env.point(str(args["point"])).partition(
                str(args.get("mode", "both"))
            )
            return True
        if op == "heal":
            env.point(str(args["point"])).heal()
            return True
        if op == "lease_partition":
            env.lease_partition(str(args["owner"]))
            return True
        if op == "lease_heal":
            env.lease_heal(str(args["owner"]))
            return True
        if op == "clock_jump":
            env.point(str(args["point"])).jump(float(args["seconds"]))
            return True
        if op == "clock_skew":
            env.point(str(args["point"])).skew(float(args["rate"]))
            return True
        if op == "clock_reset":
            env.point(str(args["point"])).reset()
            return True
        if op == "fail_over":
            promoted = env.fail_over()
            return promoted.generation if promoted is not None else None
        if op == "ghost_deploy":
            return env.ghost_deploy()
        if op == "converge":
            return env.converge()
        if op == "heal_all":
            env.heal_all()
            return True
        raise ValueError(f"unknown scenario op {op!r}")
