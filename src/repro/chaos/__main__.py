"""CLI for the seeded chaos soak (the nightly job's entry point).

``python -m repro.chaos --seeds 40 --steps 60`` plays 40 seeded random
fault schedules of 60 steps each, checking every system-wide invariant
after every step. Failing seeds are persisted under ``--results`` as
``CHAOS_seed_<seed>.json`` — schedule, violations, and a ddmin-shrunk
repro — and the exit status is non-zero, so CI turns red with the
repro already uploaded. ``CHAOS_soak.json`` summarizes every run.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos.search import run_soak


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Play seeded random chaos schedules against the "
                    "standard leader/standby/OBI topology and check "
                    "every invariant after every step.",
    )
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of seeds to play (default 20)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--steps", type=int, default=40,
                        help="random steps per schedule (default 40)")
    parser.add_argument("--results", default="benchmarks/results",
                        help="directory for CHAOS_*.json artifacts")
    parser.add_argument("--work-dir", default=None,
                        help="scratch directory for journals/checkpoints "
                             "(default: a fresh temp dir)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip ddmin shrinking of failing schedules")
    args = parser.parse_args(argv)

    summary = run_soak(
        seeds=range(args.seed_base, args.seed_base + args.seeds),
        steps=args.steps,
        work_dir=args.work_dir,
        results_dir=args.results,
        shrink_failures=not args.no_shrink,
    )
    json.dump({key: value for key, value in summary.items()
               if key != "failures"}, sys.stdout, indent=2, sort_keys=True)
    print()
    for failure in summary["failures"]:
        print(
            f"seed {failure['seed']}: "
            f"{failure['violations'] or failure['error']}",
            file=sys.stderr,
        )
    return 1 if summary["failed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
