"""Skewable, jumpable clocks for the chaos engine (clock-layer faults).

Every lease, liveness timeout, and headless transition in the repo rides
an injectable ``clock()`` callable. :class:`ChaosClock` wraps one such
base clock (typically the virtual-time scheduler's ``now``) and lets a
scenario inject the two classic clock pathologies:

* **jump** — a step change (NTP slew gone wrong, a VM resume): the
  clock instantly reads ``seconds`` later (or earlier);
* **skew** — a rate error (a bad oscillator): the clock runs ``rate``
  times as fast as the base from this moment on.

Both compose and both are reversible via :meth:`reset`, which re-anchors
at the *current skewed reading* — healing a clock never makes time run
backwards (that would be a third, nastier fault; scenarios that want it
can :meth:`jump` negative explicitly).
"""

from __future__ import annotations

from typing import Callable


class ChaosClock:
    """A monotonic-ish clock with injectable skew and jumps.

    Instances are callable, matching every ``clock=`` seam in the repo.
    """

    def __init__(self, base: Callable[[], float]) -> None:
        self._base = base
        self._rate = 1.0
        #: Base-clock reading at the last (re)anchor.
        self._anchor_base = base()
        #: Chaos-clock reading at the last (re)anchor.
        self._anchor_value = self._anchor_base
        self.jumps = 0
        self.skews = 0

    def __call__(self) -> float:
        elapsed = self._base() - self._anchor_base
        return self._anchor_value + elapsed * self._rate

    # -- fault controls -------------------------------------------------
    def jump(self, seconds: float) -> None:
        """Step the clock by ``seconds`` (negative steps it backwards)."""
        self._anchor_value += seconds
        self.jumps += 1

    def skew(self, rate: float) -> None:
        """Run at ``rate`` × base speed from the current reading on."""
        if rate <= 0:
            raise ValueError("clock rate must be positive")
        self._reanchor()
        self._rate = rate
        self.skews += 1

    def reset(self) -> None:
        """Heal: rate back to 1.0, anchored at the current reading."""
        self._reanchor()
        self._rate = 1.0

    @property
    def rate(self) -> float:
        return self._rate

    def _reanchor(self) -> None:
        self._anchor_value = self()
        self._anchor_base = self._base()
