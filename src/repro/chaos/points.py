"""The fault-point registry: one namespace over every injectable fault.

A **fault point** is a named handle on one chaos instrument somewhere in
the system under test, tagged with the *layer* it perturbs:

* ``transport`` — a :class:`~repro.transport.faults.FaultyChannel`
  (drops, duplicates, partitions, reordering, peer crashes);
* ``storage`` — a :class:`~repro.chaos.storage.FaultyStorage`
  (EIO/ENOSPC, lying fsyncs, torn replaces, slow I/O, power loss);
* ``clock`` — a :class:`~repro.chaos.clocks.ChaosClock` (skew, jumps);
* ``process`` — a :class:`ProcessPoint` (kill / revive, generalizing
  the hand-rolled SIGKILL helpers in the integration tests).

Scenarios address faults by point name (``"storage:leader"``,
``"transport:obi-2"``); the registry resolves the name to the live
instrument. Keeping the namespace flat and layer-tagged is what lets
the random scenario search enumerate a *bounded* fault vocabulary
instead of reaching into topology internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

LAYERS = ("transport", "storage", "clock", "process")


class ProcessPoint:
    """Kill/revive as a first-class fault (the process layer).

    The actual mechanics — closing in-process pairs, reconnecting a
    revived OBI — are topology-specific, so they are injected as
    callables by whoever builds the environment. ``revive`` may be
    ``None`` for processes that cannot come back as themselves (a
    SIGKILLed leader is replaced via failover/recovery, not revived).
    """

    def __init__(
        self,
        name: str,
        kill: Callable[[], None],
        revive: Callable[[], None] | None = None,
    ) -> None:
        self.name = name
        self._kill = kill
        self._revive = revive
        self.alive = True
        self.kills = 0
        self.revives = 0

    def kill(self) -> None:
        if not self.alive:
            return
        self._kill()
        self.alive = False
        self.kills += 1

    def revive(self) -> None:
        if self.alive:
            return
        if self._revive is None:
            raise ValueError(f"process point {self.name!r} is not revivable")
        self._revive()
        self.alive = True
        self.revives += 1


@dataclass(frozen=True)
class FaultPoint:
    """One named, layer-tagged chaos instrument."""

    name: str
    #: One of :data:`LAYERS`.
    layer: str
    #: The live instrument (FaultyChannel / FaultyStorage / ChaosClock /
    #: ProcessPoint) scenario operations act on.
    target: Any = field(compare=False)
    description: str = field(default="", compare=False)


class ChaosRegistry:
    """Flat name -> :class:`FaultPoint` namespace for one environment."""

    def __init__(self) -> None:
        self._points: dict[str, FaultPoint] = {}

    def register(
        self, name: str, layer: str, target: Any, description: str = ""
    ) -> FaultPoint:
        if layer not in LAYERS:
            raise ValueError(
                f"unknown fault layer {layer!r} (expected one of {LAYERS})"
            )
        if name in self._points:
            raise ValueError(f"duplicate fault point {name!r}")
        point = FaultPoint(
            name=name, layer=layer, target=target, description=description
        )
        self._points[name] = point
        return point

    def get(self, name: str) -> FaultPoint:
        try:
            return self._points[name]
        except KeyError:
            known = ", ".join(sorted(self._points)) or "<empty registry>"
            raise KeyError(
                f"unknown fault point {name!r}; registered: {known}"
            ) from None

    def target(self, name: str) -> Any:
        """The live instrument behind ``name`` (shorthand for scenarios)."""
        return self.get(name).target

    def by_layer(self, layer: str) -> list[FaultPoint]:
        if layer not in LAYERS:
            raise ValueError(f"unknown fault layer {layer!r}")
        return [p for p in self._points.values() if p.layer == layer]

    def names(self, layer: str | None = None) -> list[str]:
        if layer is None:
            return sorted(self._points)
        return sorted(p.name for p in self.by_layer(layer))

    def __contains__(self, name: str) -> bool:
        return name in self._points

    def __iter__(self) -> Iterator[FaultPoint]:
        return iter(self._points.values())

    def __len__(self) -> int:
        return len(self._points)
