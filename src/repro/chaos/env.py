"""The standard chaos topology: leader + standby + OBIs + data plane.

:class:`ChaosEnv` stands up the full system the integration suite grew
piecewise — a lease-managed journaled leader, a hot standby tailing the
journal, two (or more) checkpointing OBIs forwarding real packets
through the functional network simulator — with a chaos instrument
pre-registered at every fault point:

* every controller→OBI channel and the replication link are
  :class:`~repro.transport.faults.FaultyChannel` proxies;
* the leader journal, the standby replica journal, and each OBI's
  flow-state checkpoint ride a
  :class:`~repro.chaos.storage.FaultyStorage` backend;
* every process's clock is a :class:`~repro.chaos.clocks.ChaosClock`
  over the virtual-time scheduler;
* the leader and each OBI are :class:`~repro.chaos.points.ProcessPoint`
  kill/revive targets.

Everything is seeded and runs on the simulator's virtual clock — the
same schedule over the same seed reproduces the same run, byte for
byte. Scenario operations (``repro.chaos.scenario``) act on this
environment exclusively through the fault-point registry plus the small
verb set below, which is what keeps the random search's vocabulary
bounded.
"""

from __future__ import annotations

import os
from typing import Any

from repro.bootstrap import connect_inproc, reconnect_inproc, rehome_inproc
from repro.chaos.clocks import ChaosClock
from repro.chaos.points import ChaosRegistry, ProcessPoint
from repro.chaos.storage import FaultyStorage, StoragePlan
from repro.controller.apps import AppStatement, FunctionApplication
from repro.controller.journal import StateJournal
from repro.controller.lease import InProcLeaseStore, LeaseManager
from repro.controller.obc import OpenBoxController
from repro.controller.orchestrator import OrchestrationLoop, TickReport
from repro.controller.reconcile import AntiEntropyLoop
from repro.controller.replication import ReplicationHub, StandbyController
from repro.controller.scaling import ScalingManager, ScalingPolicy
from repro.core.blocks import Block
from repro.core.graph import ProcessingGraph
from repro.net.builder import make_tcp_packet
from repro.obi.instance import ObiConfig, OpenBoxInstance
from repro.sim.network import SimNetwork
from repro.transport.base import ChannelClosed, ChannelTimeout
from repro.transport.faults import FaultPlan, FaultyChannel
from repro.transport.inproc import InProcPair

LEASE_TTL = 30.0


def _fw_graph(name: str = "fw") -> ProcessingGraph:
    """Firewall: drop telnet, pass the rest (paper Figure 2(a), shrunk)."""
    graph = ProcessingGraph(name)
    read = Block("FromDevice", name=f"{name}_read", config={"devname": "in"})
    classify = Block(
        "HeaderClassifier",
        name=f"{name}_hc",
        config={
            "rules": [{"dst_port": [23, 23], "port": 0}],
            "default_port": 1,
        },
        origin_app=name,
    )
    drop = Block("Discard", name=f"{name}_drop")
    out = Block("ToDevice", name=f"{name}_out", config={"devname": "out"})
    graph.add_blocks([read, classify, drop, out])
    graph.connect(read, classify)
    graph.connect(classify, drop, 0)
    graph.connect(classify, out, 1)
    graph.validate()
    return graph


def _ips_graph(name: str = "ips") -> ProcessingGraph:
    """IPS: alert on ssh, pass everything (paper Figure 2(b), shrunk)."""
    graph = ProcessingGraph(name)
    read = Block("FromDevice", name=f"{name}_read", config={"devname": "in"})
    classify = Block(
        "HeaderClassifier",
        name=f"{name}_hc",
        config={
            "rules": [{"dst_port": [22, 22], "port": 0}],
            "default_port": 1,
        },
        origin_app=name,
    )
    alert = Block("Alert", name=f"{name}_alert",
                  config={"message": f"{name} alert"}, origin_app=name)
    out = Block("ToDevice", name=f"{name}_out", config={"devname": "out"})
    graph.add_blocks([read, classify, alert, out])
    graph.connect(read, classify)
    graph.connect(classify, alert, 0)
    graph.connect(alert, out)
    graph.connect(classify, out, 1)
    graph.validate()
    return graph


def _fw_app() -> FunctionApplication:
    return FunctionApplication(
        "fw", lambda: [AppStatement(graph=_fw_graph("fw"))], priority=1
    )


def _ips_app() -> FunctionApplication:
    return FunctionApplication(
        "ips", lambda: [AppStatement(graph=_ips_graph("ips"))], priority=2
    )


_APP_FACTORIES = {"fw": _fw_app, "ips": _ips_app}

PACKETS = {
    "pass": lambda: make_tcp_packet("44.0.0.1", "192.168.0.9", 9999, 12345),
    "drop": lambda: make_tcp_packet("10.1.2.3", "192.168.0.9", 1234, 23),
    "alert": lambda: make_tcp_packet("44.0.0.1", "192.168.0.9", 1234, 22),
}


class ChaosEnv:
    """One fully instrumented system under test (see module docstring).

    ``root`` is a scratch directory for journals and checkpoints;
    ``seed`` feeds every probabilistic instrument. The environment comes
    up healthy: lease acquired (epoch 1), firewall app deployed fleetwide,
    keepalives beaconing on the virtual clock.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        seed: int = 0,
        obi_ids: tuple[str, ...] = ("obi-1", "obi-2"),
        headless_buffer: int = 256,
        transport_plan: FaultPlan | None = None,
        storage_plan: StoragePlan | None = None,
    ) -> None:
        self.root = os.fspath(root)
        self.seed = seed
        self.obi_ids = tuple(obi_ids)
        self.net = SimNetwork()
        sched = self.net.clock
        self.registry = ChaosRegistry()

        # -- clock layer ------------------------------------------------
        base = lambda: sched.now  # noqa: E731 - the virtual-time source
        self.leader_clock = ChaosClock(base)
        self.standby_clock = ChaosClock(base)
        self.obi_clocks = {name: ChaosClock(base) for name in self.obi_ids}
        self.registry.register("clock:leader", "clock", self.leader_clock,
                               "leader controller clock")
        self.registry.register("clock:standby", "clock", self.standby_clock,
                               "standby controller clock")
        for name, clock in self.obi_clocks.items():
            self.registry.register(f"clock:{name}", "clock", clock,
                                   f"{name} instance clock")

        # -- storage layer ----------------------------------------------
        plan = storage_plan or StoragePlan(seed=seed)
        self.leader_storage = FaultyStorage(plan)
        self.standby_storage = FaultyStorage(plan)
        self.obi_storages = {name: FaultyStorage(plan) for name in self.obi_ids}
        self.registry.register("storage:leader", "storage",
                               self.leader_storage, "leader journal backend")
        self.registry.register("storage:standby", "storage",
                               self.standby_storage, "replica journal backend")
        for name, storage in self.obi_storages.items():
            self.registry.register(f"storage:{name}", "storage", storage,
                                   f"{name} flow-state checkpoint backend")

        # -- control plane ----------------------------------------------
        self.store = InProcLeaseStore()
        self.leader_lease = LeaseManager(
            "c1", self.store, ttl=LEASE_TTL, clock=self.leader_clock
        )
        self.standby_lease = LeaseManager(
            "c2", self.store, ttl=LEASE_TTL, clock=self.standby_clock
        )
        self.leader = OpenBoxController(
            clock=self.leader_clock,
            journal=StateJournal(
                os.path.join(self.root, "leader.journal"),
                fsync_every=1, storage=self.leader_storage,
            ),
        )
        self.hub = ReplicationHub(
            self.leader, leader_id="c1", endpoints=["c1", "c2"]
        )
        self.standby = StandbyController(
            "c2", os.path.join(self.root, "replica.journal"),
            clock=self.standby_clock, storage=self.standby_storage,
        )
        self.replica_link = InProcPair("c1", "standby:c2")
        self.replica_link.right.set_handler(self.standby.handle_message)
        replica_channel = FaultyChannel(
            self.replica_link.left,
            transport_plan or FaultPlan(seed=seed),
        )
        self.registry.register("transport:standby", "transport",
                               replica_channel, "leader -> standby stream")
        self.hub.attach("c2", replica_channel)

        # -- OBIs + transport layer -------------------------------------
        self.obis: dict[str, OpenBoxInstance] = {}
        self.pairs: dict[str, InProcPair] = {}
        self.channels: dict[str, FaultyChannel] = {}
        for index, name in enumerate(self.obi_ids):
            self.obis[name] = self._connect_obi(
                name, headless_buffer,
                transport_plan or FaultPlan(seed=seed + index + 1),
            )

        # -- data plane (packet conservation closes over this chain) ----
        self.src = self.net.add_host("src")
        self.dst = self.net.add_host("dst")
        chain = list(self.obi_ids)
        for name in chain:
            self.net.add_obi(name, self.obis[name])
        for here, there in zip(chain, chain[1:]):
            self.net.link(here, "out", there)
        self.net.link(chain[-1], "out", "dst")
        for name in chain:
            self.net.schedule_keepalives(name)

        # -- process layer ----------------------------------------------
        self.leader_dead = False
        self.registry.register(
            "process:leader", "process",
            ProcessPoint("process:leader", kill=self.kill_leader),
            "SIGKILL the leader (no close, no final flush)",
        )
        for name in self.obi_ids:
            self.registry.register(
                f"process:{name}", "process",
                ProcessPoint(
                    f"process:{name}",
                    kill=(lambda n=name: self.pairs[n].close()),
                    revive=(lambda n=name: self._revive_obi(n)),
                ),
                f"kill/revive the {name} control channel",
            )

        # -- scenario bookkeeping ---------------------------------------
        self.promoted: OpenBoxController | None = None
        self.promoted_loop: OrchestrationLoop | None = None
        self.injected = 0
        self.split_brain_accepts = 0
        #: Set by :meth:`converge`; cleared by any fault/mutation verb.
        #: Gates the digest-agreement invariant (which is only promised
        #: *after* an anti-entropy round over a healed system).
        self.converged = False
        self._lease_partitions: set[str] = set()

        # -- orchestration ----------------------------------------------
        scaling = ScalingManager(self.leader.stats, provisioner=None,
                                 policy=ScalingPolicy())
        self.loop = OrchestrationLoop(
            self.leader, scaling,
            lease=self.leader_lease, replication=self.hub,
        )
        # First tick: acquire the lease (epoch 1 == fresh generation 1),
        # announce, and replicate the bootstrap journal.
        self.loop.tick()

        self._app_names: list[str] = []
        self.register_app("fw")
        self.tick()

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def _connect_obi(self, name: str, headless_buffer: int,
                     plan: FaultPlan) -> "OpenBoxInstance":
        obi = OpenBoxInstance(
            ObiConfig(
                obi_id=name, segment="corp",
                headless_after=30.0, headless_buffer=headless_buffer,
                state_checkpoint_path=os.path.join(self.root, f"{name}.state"),
                state_checkpoint_fsync_every=1,
            ),
            clock=self.obi_clocks[name],
            state_storage=self.obi_storages[name],
        )
        self.pairs[name] = connect_inproc(
            self.leader, obi,
            wrap_downstream=lambda ch: FaultyChannel(ch, plan),
        )
        channel = self.leader.obis[name].channel
        self.channels[name] = channel
        self.registry.register(f"transport:{name}", "transport", channel,
                               f"controller -> {name} channel")
        return obi

    def _revive_obi(self, name: str) -> None:
        """Reconnect a killed OBI to the active controller."""
        controller = self.active
        pair = reconnect_inproc(
            controller, self.obis[name], self.pairs[name],
            wrap_downstream=lambda ch: FaultyChannel(
                ch, FaultPlan(seed=self.seed)
            ),
        )
        self.pairs[name] = pair
        self.channels[name] = controller.obis[name].channel

    @property
    def active(self) -> OpenBoxController:
        """The controller currently entitled to act (promoted wins)."""
        return self.promoted if self.promoted is not None else self.leader

    def point(self, name: str) -> Any:
        """The live instrument behind fault point ``name``."""
        return self.registry.target(name)

    # ------------------------------------------------------------------
    # Scenario verbs
    # ------------------------------------------------------------------
    def advance(self, seconds: float) -> int:
        """Run virtual time forward (keepalives and in-flight packets)."""
        sched = self.net.clock
        return sched.run_until(sched.now + seconds)

    def inject(self, count: int = 1, kind: str = "pass") -> None:
        """Inject ``count`` packets at the head of the OBI chain and
        drain zero-latency deliveries so conservation holds at rest."""
        make = PACKETS[kind]
        head = self.obi_ids[0]
        for _ in range(count):
            self.injected += 1
            self.net.inject(head, make())
        self.net.clock.run_until(self.net.clock.now)

    def tick(self) -> TickReport | None:
        """One orchestration tick on whichever loop is alive."""
        if self.promoted_loop is not None:
            return self.promoted_loop.tick()
        if not self.leader_dead:
            return self.loop.tick()
        return None

    def register_app(self, name: str) -> None:
        """Register (and auto-deploy) one of the known applications."""
        factory = _APP_FACTORIES[name]
        self.active.register_application(factory())
        if name not in self._app_names:
            self._app_names.append(name)

    def half_deploy(self) -> None:
        """The mid-deploy crash window: the ips app reaches the first
        OBI, the journal (and standby) know the intent, but no later
        deploy or anti-entropy round ever healed the rest."""
        self.leader.auto_deploy = False
        self.register_app("ips")
        self.leader.deploy(self.obi_ids[0])
        self.hub.sync()

    def deploy(self, obi_id: str) -> bool:
        """Deploy current intent to one OBI; False on (expected) refusal."""
        try:
            self.active.deploy(obi_id)
            return True
        except (ChannelClosed, ChannelTimeout):
            return False

    def kill_leader(self) -> None:
        """SIGKILL: no close(), no final flush; every channel to the
        dead process starts refusing."""
        for pair in self.pairs.values():
            pair.close()
        self.replica_link.close()
        self.leader_dead = True

    def lease_partition(self, owner: str) -> None:
        self.store.partition(owner)
        self._lease_partitions.add(owner)

    def lease_heal(self, owner: str) -> None:
        self.store.heal(owner)
        self._lease_partitions.discard(owner)

    def fail_over(self) -> OpenBoxController | None:
        """The standby's side of §12: lease, takeover, re-homing."""
        lease = self.standby_lease.tick()
        if lease is None:
            return None
        promoted = self.standby.take_over(
            lease,
            applications=[_APP_FACTORIES[n]() for n in self._app_names],
            storage=self.standby_storage,
        )
        for obi in self.obis.values():
            won = rehome_inproc(obi, [("c1", None), ("c2", promoted)])
            if won is not None:
                self.pairs[obi.config.obi_id] = won[1]
                self.channels[obi.config.obi_id] = (
                    promoted.obis[obi.config.obi_id].channel
                )
        self.promoted = promoted
        self.promoted_loop = OrchestrationLoop(
            promoted,
            ScalingManager(promoted.stats, provisioner=None,
                           policy=ScalingPolicy()),
            lease=self.standby_lease,
        )
        return promoted

    def ghost_deploy(self) -> int:
        """The deposed leader ignores its demotion and pushes anyway.

        Returns (and accumulates) the number of pushes that were
        *accepted* — the split-brain invariant demands zero once a
        successor exists.
        """
        accepts = 0
        for obi_id in self.obi_ids:
            try:
                self.leader.deploy(obi_id)
                if self.promoted is not None:
                    accepts += 1
            except Exception:  # noqa: BLE001 - timeout/stale/closed all fine
                pass
        self.split_brain_accepts += accepts
        return accepts

    def converge(self) -> bool:
        """Run anti-entropy on the active controller until converged."""
        reports = AntiEntropyLoop(self.active).run_until_converged()
        self.converged = bool(reports) and reports[-1].all_converged
        return self.converged

    def heal_all(self) -> None:
        """Lift every standing fault (storage, transport, lease, clock)."""
        for point in self.registry.by_layer("storage"):
            point.target.heal()
        for point in self.registry.by_layer("transport"):
            point.target.heal()
            point.target.revive()
        for owner in list(self._lease_partitions):
            self.lease_heal(owner)
        for point in self.registry.by_layer("clock"):
            point.target.reset()

    # ------------------------------------------------------------------
    # Invariant feeds
    # ------------------------------------------------------------------
    def delivered(self) -> int:
        return len(self.dst.received)

    def drop_accounting(self) -> dict[str, int]:
        """Every counted way a packet can fail to reach ``dst``."""
        dropped = punted = shed = 0
        for name in self.obi_ids:
            node = self.net.nodes[name]
            dropped += node.dropped
            punted += node.punted
            shed += node.shed
        return {
            "dropped": dropped,
            "punted": punted,
            "shed": shed,
            "unrouted": len(self.net.unrouted),
        }

    def controllers(self) -> list[OpenBoxController]:
        live = [self.leader]
        if self.promoted is not None:
            live.append(self.promoted)
        return live
