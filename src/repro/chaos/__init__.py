"""Deterministic, seeded chaos orchestration (ISSUE 10).

The repo's robustness story — retry, headless mode, WAL recovery, HA
leases — was built one hand-written failure sequence at a time. This
package turns those point fixes into a continuously verified property:

* :mod:`repro.chaos.storage` — a fault-injecting
  :class:`~repro.durable.Storage` backend (EIO, ENOSPC, fsyncs that
  lie, torn replaces, slow I/O, power-loss crashes);
* :mod:`repro.chaos.clocks` — skewable/jumpable clocks over the
  virtual-time scheduler;
* :mod:`repro.chaos.points` — the fault-point registry spanning the
  transport, storage, clock, and process layers;
* :mod:`repro.chaos.env` — a standard leader/standby/OBI/network
  topology with every fault point pre-registered;
* :mod:`repro.chaos.invariants` — global checkers (split-brain
  accepts, telemetry loss, packet conservation, digest agreement,
  journal-replay fidelity) evaluated after every scenario step;
* :mod:`repro.chaos.scenario` — the declarative
  :class:`~repro.chaos.scenario.ScenarioRunner`;
* :mod:`repro.chaos.search` — seeded random scenario search with
  greedy schedule shrinking, run as the nightly soak.

See ``docs/CHAOS.md`` for the fault vocabulary and scenario format.
"""

from repro.chaos.env import ChaosEnv
from repro.chaos.invariants import (
    DEFAULT_INVARIANTS,
    Invariant,
    InvariantViolation,
)
from repro.chaos.points import ChaosRegistry, FaultPoint
from repro.chaos.scenario import Scenario, ScenarioResult, ScenarioRunner, step
from repro.chaos.search import (
    acceptance_scenario,
    random_scenario,
    run_soak,
    shrink,
)
from repro.chaos.storage import FaultyStorage, StoragePlan

__all__ = [
    "ChaosEnv",
    "ChaosRegistry",
    "DEFAULT_INVARIANTS",
    "FaultPoint",
    "FaultyStorage",
    "Invariant",
    "InvariantViolation",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "StoragePlan",
    "acceptance_scenario",
    "random_scenario",
    "run_soak",
    "shrink",
    "step",
]
