"""Storage-fault injection: a :class:`~repro.durable.Storage` that lies.

The durable layers (controller journal, flow-state checkpoints, the
replication sink) promise exactly one thing: *a record acknowledged as
durable survives a crash*. Disks attack that promise in well-known
ways, and this backend reproduces each of them deterministically:

* **write errors** — ``write`` raises ENOSPC/EIO mid-append, possibly
  after some bytes already landed (a torn line);
* **fsync errors** — the device refuses the barrier; the caller must
  not count the batch as durable and must re-surface the failure;
* **fsyncs that lie** — fsync "succeeds" but the bytes never reached
  stable storage, which only :meth:`crash` can reveal;
* **torn replace** — the atomic snapshot swap fails, leaving the temp
  file behind and the original journal untouched;
* **slow I/O** — latency charged through an injectable ``sleep`` so
  virtual-time tests never really block.

Durability is modeled honestly: the backend tracks, per path, the byte
offset covered by the last *honest* fsync. :meth:`crash` — power loss,
not a polite SIGKILL — truncates every file back to that offset (and
can smear a torn half-record over the cut), so recovery code is tested
against what a real disk would actually serve after the outage.

Faults come from two sources that compose: **scripted windows**
(:meth:`fail_writes`, :meth:`fail_fsync`, :meth:`lie_fsync`,
:meth:`fail_replace` — used by declarative scenarios) take precedence;
otherwise seeded **probabilistic rates** from :class:`StoragePlan`
roll per operation (used by the random scenario search). Same seed,
same call sequence ⇒ same faults.
"""

from __future__ import annotations

import contextlib
import errno as errno_module
import os
import random
from dataclasses import dataclass
from typing import IO, Any, Callable

from repro.durable import Storage

#: Errno names accepted by the fault controls.
_ERRNOS = {
    "ENOSPC": errno_module.ENOSPC,
    "EIO": errno_module.EIO,
    "EDQUOT": getattr(errno_module, "EDQUOT", errno_module.ENOSPC),
    "EROFS": errno_module.EROFS,
}


def _errno_of(name: str) -> int:
    try:
        return _ERRNOS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown storage errno {name!r} (know {sorted(_ERRNOS)})"
        ) from None


@dataclass(frozen=True)
class StoragePlan:
    """Seeded probabilistic storage faults (the random-search vocabulary)."""

    seed: int = 0
    #: Probability one ``write`` call raises.
    write_error_rate: float = 0.0
    #: Probability one ``fsync`` raises (the batch stays non-durable).
    fsync_error_rate: float = 0.0
    #: Probability one ``fsync`` *lies*: returns success without
    #: advancing the durable offset. Only :meth:`FaultyStorage.crash`
    #: exposes the betrayal.
    fsync_lie_rate: float = 0.0
    #: Probability one ``replace`` raises, leaving the temp file behind.
    replace_error_rate: float = 0.0
    #: Errno name injected by the probabilistic failures.
    error: str = "ENOSPC"
    #: Probability an operation is slow, and the uniform latency bounds.
    slow_rate: float = 0.0
    slow_range: tuple[float, float] = (0.0, 0.0)


class _Scripted:
    """One scripted fault window: fail the next ``count`` ops (None=all)."""

    def __init__(self, error: str, count: int | None) -> None:
        self.errno = _errno_of(error)
        self.error = error
        self.count = count

    def consume(self) -> bool:
        """True when this window claims the current operation."""
        if self.count is None:
            return True
        if self.count <= 0:
            return False
        self.count -= 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.count is not None and self.count <= 0


class _FaultyFile:
    """Write-path proxy charging every write to the fault rolls."""

    def __init__(self, storage: "FaultyStorage", path: str, inner: IO[str]) -> None:
        self._storage = storage
        self.path = path
        self.inner = inner
        self.closed = False

    def write(self, data: str) -> int:
        self._storage._roll_write(self.path)
        return self.inner.write(data)

    def flush(self) -> None:
        self.inner.flush()

    def fileno(self) -> int:
        return self.inner.fileno()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            with contextlib.suppress(OSError, ValueError):
                self.inner.close()
            self._storage._files.discard(self)

    def __enter__(self) -> "_FaultyFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class FaultyStorage(Storage):
    """A chaos proxy implementing the :class:`~repro.durable.Storage` seam.

    ``sleep`` receives injected latency; the default accumulates it in
    :attr:`total_delay` without sleeping (virtual-time safe).
    """

    def __init__(
        self,
        plan: StoragePlan | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.plan = plan or StoragePlan()
        self._rng = random.Random(self.plan.seed)
        self._sleep = sleep
        #: path -> byte offset covered by the last honest fsync.
        self._durable: dict[str, int] = {}
        self._files: set[_FaultyFile] = set()
        # Scripted fault windows (None = no window active).
        self._write_fault: _Scripted | None = None
        self._fsync_fault: _Scripted | None = None
        self._fsync_lies: int | None = 0  # remaining lies; None = forever
        self._replace_fault: _Scripted | None = None
        self._slow: float = 0.0
        # Accounting.
        self.writes = 0
        self.write_failures = 0
        self.fsyncs = 0
        self.fsync_failures = 0
        self.fsync_lies = 0
        self.replaces = 0
        self.replace_failures = 0
        self.crashes = 0
        self.total_delay = 0.0

    # ------------------------------------------------------------------
    # Fault controls (the scenario vocabulary)
    # ------------------------------------------------------------------
    def fail_writes(self, error: str = "ENOSPC", count: int | None = None) -> None:
        """Fail the next ``count`` writes (None = until :meth:`heal`)."""
        self._write_fault = _Scripted(error, count)

    def fail_fsync(self, error: str = "EIO", count: int | None = None) -> None:
        """Fail the next ``count`` fsyncs (None = until :meth:`heal`)."""
        self._fsync_fault = _Scripted(error, count)

    def lie_fsync(self, count: int | None = None) -> None:
        """The next ``count`` fsyncs return success without durability."""
        self._fsync_lies = count

    def fail_replace(self, error: str = "EIO", count: int | None = None) -> None:
        """Fail the next ``count`` replaces, leaving the temp file behind."""
        self._replace_fault = _Scripted(error, count)

    def slow_io(self, seconds: float) -> None:
        """Charge ``seconds`` of latency to every write/fsync until healed."""
        self._slow = max(0.0, seconds)

    def heal(self) -> None:
        """Clear every scripted fault window (plan rates still roll)."""
        self._write_fault = None
        self._fsync_fault = None
        self._fsync_lies = 0
        self._replace_fault = None
        self._slow = 0.0

    @property
    def healthy(self) -> bool:
        """No scripted fault window is currently active."""
        return (
            (self._write_fault is None or self._write_fault.exhausted)
            and (self._fsync_fault is None or self._fsync_fault.exhausted)
            and not self._fsync_lies
            and (self._replace_fault is None or self._replace_fault.exhausted)
        )

    def crash(self, torn_tail: bool = False) -> None:
        """Power loss: discard everything past the last honest fsync.

        Closes every open handle, truncates each tracked file back to
        its durable offset, and — with ``torn_tail`` — smears half a
        record over the cut so replay must exercise its
        longest-valid-prefix tolerance. Scripted faults survive the
        crash (the disk is still the same bad disk).
        """
        self.crashes += 1
        for handle in list(self._files):
            handle.close()
        for path, durable in self._durable.items():
            if not os.path.exists(path):
                continue
            with contextlib.suppress(OSError):
                os.truncate(path, durable)
                if torn_tail:
                    with open(path, "ab") as tail:
                        tail.write(b'{"rec":"torn')

    def durable_size(self, path: str | os.PathLike[str]) -> int | None:
        """The honestly-fsynced byte offset of ``path`` (None: untracked)."""
        return self._durable.get(os.fspath(path))

    # ------------------------------------------------------------------
    # Fault rolls
    # ------------------------------------------------------------------
    def _charge(self) -> None:
        seconds = self._slow
        if not seconds and self.plan.slow_rate and (
            self._rng.random() < self.plan.slow_rate
        ):
            low, high = self.plan.slow_range
            seconds = self._rng.uniform(low, high)
        if seconds > 0:
            self.total_delay += seconds
            if self._sleep is not None:
                self._sleep(seconds)

    def _roll_write(self, path: str) -> None:
        self.writes += 1
        self._charge()
        if self._write_fault is not None and self._write_fault.consume():
            self.write_failures += 1
            raise OSError(
                self._write_fault.errno,
                f"injected {self._write_fault.error} writing {path!r}",
            )
        if self._rng.random() < self.plan.write_error_rate:
            self.write_failures += 1
            raise OSError(
                _errno_of(self.plan.error),
                f"injected {self.plan.error} writing {path!r} "
                f"(seed {self.plan.seed})",
            )

    # ------------------------------------------------------------------
    # Storage API
    # ------------------------------------------------------------------
    def open(self, path: str | os.PathLike[str], mode: str = "a") -> IO[str]:
        fspath = os.fspath(path)
        inner = open(fspath, mode, encoding="utf-8")
        # What is on disk at open is durable ("a" inherits the existing
        # bytes; "w" truncates to zero) — until the first honest fsync
        # moves the high-water mark.
        self._durable[fspath] = (
            os.path.getsize(fspath) if "a" in mode else 0
        )
        proxy = _FaultyFile(self, fspath, inner)
        self._files.add(proxy)
        return proxy  # type: ignore[return-value]

    def fsync(self, handle: Any) -> None:
        self.fsyncs += 1
        self._charge()
        handle.flush()
        if self._fsync_fault is not None and self._fsync_fault.consume():
            self.fsync_failures += 1
            raise OSError(
                self._fsync_fault.errno,
                f"injected {self._fsync_fault.error} on fsync",
            )
        if self._rng.random() < self.plan.fsync_error_rate:
            self.fsync_failures += 1
            raise OSError(
                _errno_of(self.plan.error),
                f"injected {self.plan.error} on fsync (seed {self.plan.seed})",
            )
        lying = False
        if self._fsync_lies is None:
            lying = True
        elif self._fsync_lies > 0:
            self._fsync_lies -= 1
            lying = True
        elif self._rng.random() < self.plan.fsync_lie_rate:
            lying = True
        if lying:
            # Success reported, durability withheld: the bytes sit in a
            # cache :meth:`crash` will destroy.
            self.fsync_lies += 1
            return
        os.fsync(handle.fileno())
        path = getattr(handle, "path", None)
        if path is not None:
            self._durable[path] = os.fstat(handle.fileno()).st_size

    def replace(self, src: str | os.PathLike[str],
                dst: str | os.PathLike[str]) -> None:
        self.replaces += 1
        self._charge()
        src_path, dst_path = os.fspath(src), os.fspath(dst)
        if self._replace_fault is not None and self._replace_fault.consume():
            self.replace_failures += 1
            raise OSError(
                self._replace_fault.errno,
                f"injected {self._replace_fault.error} replacing "
                f"{dst_path!r} (temp file left behind)",
            )
        if self._rng.random() < self.plan.replace_error_rate:
            self.replace_failures += 1
            raise OSError(
                _errno_of(self.plan.error),
                f"injected {self.plan.error} replacing {dst_path!r} "
                f"(seed {self.plan.seed})",
            )
        os.replace(src_path, dst_path)
        self._durable[dst_path] = os.path.getsize(dst_path)
        self._durable.pop(src_path, None)
