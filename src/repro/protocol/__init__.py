"""The OpenBox protocol: messages exchanged between the OBC and OBIs.

The protocol (paper §3.2, spec [35]) defines JSON-encoded messages over a
dual REST channel. This package provides:

* :mod:`repro.protocol.messages` — one dataclass per message type, with
  transaction ids (``xid``) for request/response correlation;
* :mod:`repro.protocol.codec` — the JSON wire codec with protocol
  versioning;
* :mod:`repro.protocol.blocks_spec` — serialization of the abstract
  block-type registry for capability advertisement in ``Hello``;
* :mod:`repro.protocol.errors` — protocol-level error codes.
"""

from repro.protocol.codec import PROTOCOL_VERSION, CodecError, decode_message, encode_message
from repro.protocol.errors import ErrorCode, ProtocolError
from repro.protocol.messages import (
    AddCustomModuleRequest,
    AddCustomModuleResponse,
    Alert,
    BarrierRequest,
    BarrierResponse,
    ErrorMessage,
    GlobalStatsRequest,
    GlobalStatsResponse,
    Hello,
    KeepAlive,
    ListCapabilitiesRequest,
    ListCapabilitiesResponse,
    LogMessage,
    Message,
    ReadRequest,
    ReadResponse,
    SetExternalServices,
    SetProcessingGraphRequest,
    SetProcessingGraphResponse,
    WriteRequest,
    WriteResponse,
)

__all__ = [
    "AddCustomModuleRequest",
    "AddCustomModuleResponse",
    "Alert",
    "BarrierRequest",
    "BarrierResponse",
    "CodecError",
    "ErrorCode",
    "ErrorMessage",
    "GlobalStatsRequest",
    "GlobalStatsResponse",
    "Hello",
    "KeepAlive",
    "ListCapabilitiesRequest",
    "ListCapabilitiesResponse",
    "LogMessage",
    "Message",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReadRequest",
    "ReadResponse",
    "SetExternalServices",
    "SetProcessingGraphRequest",
    "SetProcessingGraphResponse",
    "WriteRequest",
    "WriteResponse",
    "decode_message",
    "encode_message",
]
