"""Protocol-level error codes and exceptions."""

from __future__ import annotations


class ErrorCode:
    """Error codes carried by ``ErrorMessage`` responses."""

    UNSUPPORTED_VERSION = "unsupported_version"
    UNKNOWN_MESSAGE = "unknown_message"
    MALFORMED_MESSAGE = "malformed_message"
    UNKNOWN_BLOCK = "unknown_block"
    UNKNOWN_HANDLE = "unknown_handle"
    HANDLE_NOT_WRITABLE = "handle_not_writable"
    INVALID_GRAPH = "invalid_graph"
    UNSUPPORTED_BLOCK_TYPE = "unsupported_block_type"
    MODULE_REJECTED = "module_rejected"
    INTERNAL_ERROR = "internal_error"
    NOT_CONNECTED = "not_connected"
    #: The sender's controller generation is older than one the receiver
    #: has already obeyed (split-brain guard, PROTOCOL.md §10).
    STALE_GENERATION = "stale_generation"
    #: The controller is in journaled-read-only degraded mode (its
    #: durable storage is refusing writes): state-mutating operations
    #: are fenced until storage heals and the journal is rebuilt.
    DEGRADED = "degraded"


class ProtocolError(Exception):
    """An error that maps to an ``ErrorMessage`` on the wire."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail
