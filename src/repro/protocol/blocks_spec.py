"""Wire representation of the abstract block-type registry.

The block types themselves live in :mod:`repro.core.blocks` (the single
source of truth shared by controller and OBI). This module serializes
them for the protocol: ``Hello`` capability advertisement and
``AddCustomModuleRequest.block_types`` declarations both use this schema.
"""

from __future__ import annotations

from typing import Any

from repro.core.blocks import (
    PORTS_BY_CONFIG,
    BlockTypeSpec,
    HandleSpec,
    block_registry,
)


def spec_to_dict(spec: BlockTypeSpec) -> dict[str, Any]:
    """Serialize one block-type spec for the wire."""
    return {
        "name": spec.name,
        "class": spec.block_class,
        "description": spec.description,
        "num_ports": spec.num_ports,
        "params": list(spec.params),
        "required_params": list(spec.required_params),
        "handles": [
            {"name": handle.name, "writable": handle.writable}
            for handle in spec.handles
        ],
        "mergeable": spec.mergeable,
        "cacheable": spec.cacheable,
    }


def spec_from_dict(data: dict[str, Any]) -> BlockTypeSpec:
    """Deserialize a block-type declaration (e.g. from a custom module).

    ``combine`` hooks are code, not data — custom block types arrive
    without one and therefore never participate in static combining.
    ``cacheable`` likewise defaults to False on the wire: a custom type
    must *opt in* to the flow-decision fast path, since the OBI cannot
    inspect foreign code for hidden per-packet state.
    """
    return BlockTypeSpec(
        name=data["name"],
        block_class=data["class"],
        description=data.get("description", ""),
        num_ports=int(data.get("num_ports", 1)),
        params=tuple(data.get("params", ())),
        required_params=tuple(data.get("required_params", ())),
        handles=tuple(
            HandleSpec(name=handle["name"], writable=bool(handle.get("writable")))
            for handle in data.get("handles", ())
        ),
        mergeable=bool(data.get("mergeable", False)),
        cacheable=bool(data.get("cacheable", False)),
    )


def all_specs() -> list[dict[str, Any]]:
    """Every built-in abstract block type, serialized."""
    return [spec_to_dict(spec) for spec in block_registry]


#: Pseudo-block addressing the OBI itself in Read requests. It is not a
#: processing block — reads against it answer from instance-level
#: robustness state (PROTOCOL.md §7), uniformly for the controller and
#: for chaos tests.
OBI_PSEUDO_BLOCK = "_obi"

#: Read handles served by the OBI pseudo-block.
OBI_READ_HANDLES = (
    "alerts_sent",
    "alerts_suppressed",
    "errors_total",
    "packets_shed",
    "quarantined_blocks",
    "poison_quarantine",
    "degraded",
    # Flow-decision fast path (PROTOCOL.md §8).
    "fastpath_hits",
    "fastpath_misses",
    "fastpath_uncacheable",
    "fastpath_invalidations",
    "fastpath_entries",
    "fastpath_hit_rate",
    # Crash recovery / headless mode (PROTOCOL.md §10).
    "headless",
    "headless_entries",
    "headless_dropped",
    "headless_episodes",
    "graph_digest",
    "controller_generation",
    "stale_generation_rejections",
    # Resilient flow state (PROTOCOL.md §11).
    "fastpath_flow_invalidations",
    "state_entries",
    "state_protected",
    "state_evictions",
    "state_eviction_reasons",
    "state_drops",
    "state_drop_reasons",
    "state_pressure",
    "state_generation",
    "stale_handoff_rejections",
)


def obi_handle_specs() -> list[dict[str, Any]]:
    """The `_obi` pseudo-block's handles, in the block-spec handle schema."""
    return [{"name": name, "writable": False} for name in OBI_READ_HANDLES]


def dynamic_port_types() -> list[str]:
    """Names of types whose port count depends on configuration."""
    return [spec.name for spec in block_registry if spec.num_ports == PORTS_BY_CONFIG]
