"""OpenBox protocol message types.

Every message is a dataclass with a transaction id (``xid``) used by the
controller's multiplexer to correlate responses with application requests
(paper §4.1: "The controller handles multiplexing of requests and
demultiplexing of responses"). Messages serialize to plain dicts; the
wire format is JSON (paper §3.3: "protocol messages are encoded with
JSON").
"""

from __future__ import annotations

import base64
import threading
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar


class _XidCounter:
    """Process-wide xid allocator that can be advanced after recovery.

    Receivers deduplicate requests by xid (PROTOCOL.md §6), so a
    restarted controller must never re-issue xids its peers may still
    hold in their dedup caches — the journal persists a high-watermark
    and :func:`advance_xids` jumps past it on recovery.
    """

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            self._value += 1
            return self._value

    def advance(self, past: int) -> None:
        with self._lock:
            self._value = max(self._value, int(past))

    def current(self) -> int:
        with self._lock:
            return self._value


_xids = _XidCounter()


def next_xid() -> int:
    """Allocate a process-wide unique transaction id."""
    return _xids.next()


def advance_xids(past: int) -> None:
    """Ensure future xids are allocated strictly after ``past``.

    Called during controller recovery with the journaled high-watermark,
    so retransmit deduplication on OBIs stays sound across restarts.
    """
    _xids.advance(past)


def xid_watermark() -> int:
    """The highest xid allocated so far (journaled on every deploy)."""
    return _xids.current()


@dataclass
class Message:
    """Base class: concrete messages declare ``TYPE`` and their fields."""

    TYPE: ClassVar[str] = ""

    xid: int = field(default_factory=next_xid)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"type": self.TYPE}
        for spec in fields(self):
            data[spec.name] = getattr(self, spec.name)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Message":
        names = {spec.name for spec in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in names}
        return cls(**kwargs)


_MESSAGE_TYPES: dict[str, type[Message]] = {}


def register_message(cls: type[Message]) -> type[Message]:
    """Class decorator adding the message to the codec registry."""
    if not cls.TYPE:
        raise ValueError(f"{cls.__name__} must define TYPE")
    if cls.TYPE in _MESSAGE_TYPES:
        raise ValueError(f"duplicate message type: {cls.TYPE}")
    _MESSAGE_TYPES[cls.TYPE] = cls
    return cls


def message_class(type_name: str) -> type[Message] | None:
    return _MESSAGE_TYPES.get(type_name)


# ----------------------------------------------------------------------
# Session establishment and liveness
# ----------------------------------------------------------------------

@register_message
@dataclass
class Hello(Message):
    """OBI → OBC: first message after connecting.

    ``capabilities`` lists, per supported abstract block type, the
    concrete implementations the OBI offers (paper §3.1: the OBI
    "declares its implementation block types and their corresponding
    abstract block in the Hello message").
    """

    TYPE: ClassVar[str] = "Hello"

    obi_id: str = ""
    version: str = ""
    segment: str = ""
    capabilities: dict[str, list[str]] = field(default_factory=dict)
    supports_custom_modules: bool = False
    capacity_hint: float = 0.0
    #: Where the OBC should send downstream requests (the OBI's local
    #: REST server, paper §4.2); empty for in-process transports.
    callback_url: str = ""
    #: Recovery handshake (PROTOCOL.md §10): the version epoch and
    #: canonical digest of the graph the OBI is currently running (0/""
    #: when nothing is deployed), and the highest controller generation
    #: the OBI has witnessed — lets a recovered controller reconcile
    #: without blind re-pushes, and lets the OBI detect stale peers.
    graph_version: int = 0
    graph_digest: str = ""
    controller_generation: int = 0


@register_message
@dataclass
class HelloResponse(Message):
    """OBC → OBI: acknowledges a Hello (PROTOCOL.md §10).

    Carries the controller's current generation so the OBI can arm its
    split-brain guard (messages stamped with a lower generation are
    rejected as ``stale_generation``).
    """

    TYPE: ClassVar[str] = "HelloResponse"

    ok: bool = True
    detail: str = ""
    controller_generation: int = 0
    keepalive_interval: float = 10.0


@register_message
@dataclass
class KeepAlive(Message):
    """OBI → OBC: periodic liveness beacon (interval set by the OBC).

    Doubles as the anti-entropy report: each beacon restates what the
    OBI is running (version epoch + canonical graph digest) and the
    highest controller generation it has seen, so the controller's
    reconciliation loop can compare intended vs. reported state without
    an extra round trip.
    """

    TYPE: ClassVar[str] = "KeepAlive"

    obi_id: str = ""
    graph_version: int = 0
    graph_digest: str = ""
    controller_generation: int = 0


# ----------------------------------------------------------------------
# Capabilities and statistics
# ----------------------------------------------------------------------

@register_message
@dataclass
class ListCapabilitiesRequest(Message):
    TYPE: ClassVar[str] = "ListCapabilitiesRequest"


@register_message
@dataclass
class ListCapabilitiesResponse(Message):
    TYPE: ClassVar[str] = "ListCapabilitiesResponse"

    capabilities: dict[str, list[str]] = field(default_factory=dict)
    supports_custom_modules: bool = False


@register_message
@dataclass
class GlobalStatsRequest(Message):
    """OBC → OBI: request system-load information (paper Table 3)."""

    TYPE: ClassVar[str] = "GlobalStatsRequest"


@register_message
@dataclass
class GlobalStatsResponse(Message):
    TYPE: ClassVar[str] = "GlobalStatsResponse"

    obi_id: str = ""
    cpu_load: float = 0.0
    memory_used: int = 0
    memory_total: int = 0
    packets_processed: int = 0
    bytes_processed: int = 0
    uptime: float = 0.0


# ----------------------------------------------------------------------
# Processing-graph deployment
# ----------------------------------------------------------------------

@register_message
@dataclass
class SetProcessingGraphRequest(Message):
    """OBC → OBI: deploy a (merged) processing graph.

    ``graph`` is the serialized :class:`~repro.core.graph.ProcessingGraph`.
    """

    TYPE: ClassVar[str] = "SetProcessingGraphRequest"

    graph: dict[str, Any] = field(default_factory=dict)
    #: Split-brain guard (PROTOCOL.md §10): the sending controller's
    #: generation. 0 means "unversioned" (legacy senders) and is always
    #: accepted; otherwise an OBI rejects generations older than the
    #: highest it has seen with ``stale_generation``.
    controller_generation: int = 0
    #: Canonical digest of ``graph`` as the controller computed it; the
    #: OBI recomputes and refuses on mismatch (wire-corruption guard).
    graph_digest: str = ""


@register_message
@dataclass
class SetProcessingGraphResponse(Message):
    TYPE: ClassVar[str] = "SetProcessingGraphResponse"

    ok: bool = True
    detail: str = ""
    #: What the OBI is now running: lets the controller update its
    #: reported-state view without waiting for the next keepalive.
    graph_version: int = 0
    graph_digest: str = ""


# ----------------------------------------------------------------------
# Read / write handles
# ----------------------------------------------------------------------

@register_message
@dataclass
class ReadRequest(Message):
    """OBC → OBI: invoke a read handle on a block (paper §3.2)."""

    TYPE: ClassVar[str] = "ReadRequest"

    block: str = ""
    handle: str = ""


@register_message
@dataclass
class ReadResponse(Message):
    TYPE: ClassVar[str] = "ReadResponse"

    block: str = ""
    handle: str = ""
    value: Any = None


@register_message
@dataclass
class WriteRequest(Message):
    """OBC → OBI: invoke a write handle on a block (paper §3.2)."""

    TYPE: ClassVar[str] = "WriteRequest"

    block: str = ""
    handle: str = ""
    value: Any = None


@register_message
@dataclass
class WriteResponse(Message):
    TYPE: ClassVar[str] = "WriteResponse"

    block: str = ""
    handle: str = ""
    ok: bool = True


# ----------------------------------------------------------------------
# Custom module injection
# ----------------------------------------------------------------------

@register_message
@dataclass
class AddCustomModuleRequest(Message):
    """OBC → OBI: inject a custom module (paper §3.2.1).

    ``module_binary`` is base64 on the wire (a compiled Click module in
    the paper's implementation; Python source in this reproduction).
    ``block_types`` declares the new blocks the module implements, in the
    same schema as built-in block types; ``translation`` carries the
    information needed to translate OpenBox configs to the module's
    lower-level notation.
    """

    TYPE: ClassVar[str] = "AddCustomModuleRequest"

    module_name: str = ""
    module_binary: str = ""
    block_types: list[dict[str, Any]] = field(default_factory=list)
    translation: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_binary(
        cls,
        module_name: str,
        binary: bytes,
        block_types: list[dict[str, Any]],
        translation: dict[str, Any] | None = None,
        **kwargs: Any,
    ) -> "AddCustomModuleRequest":
        return cls(
            module_name=module_name,
            module_binary=base64.b64encode(binary).decode("ascii"),
            block_types=block_types,
            translation=translation or {},
            **kwargs,
        )

    def binary(self) -> bytes:
        return base64.b64decode(self.module_binary)


@register_message
@dataclass
class AddCustomModuleResponse(Message):
    TYPE: ClassVar[str] = "AddCustomModuleResponse"

    module_name: str = ""
    ok: bool = True
    detail: str = ""


# ----------------------------------------------------------------------
# Upstream events
# ----------------------------------------------------------------------

@register_message
@dataclass
class Alert(Message):
    """OBI → OBC: an Alert block fired (paper §3.4: upstream events)."""

    TYPE: ClassVar[str] = "Alert"

    obi_id: str = ""
    block: str = ""
    origin_app: str = ""
    message: str = ""
    severity: str = "info"
    packet_summary: str = ""
    count: int = 1


@register_message
@dataclass
class HealthReport(Message):
    """OBI → OBC: periodic data-plane health beacon (PROTOCOL.md §7).

    Carries the robustness counters of the armored data plane:
    quarantined blocks, contained element errors, packets shed by the
    admission gate, alert-suppression totals, and whether the OBI is
    currently running degraded (bypassing ``degradable`` blocks). The
    controller feeds these into its health view and scaling decisions.
    """

    TYPE: ClassVar[str] = "HealthReport"

    obi_id: str = ""
    quarantined_blocks: list[str] = field(default_factory=list)
    errors_total: int = 0
    packets_shed: int = 0
    alerts_sent: int = 0
    alerts_suppressed: int = 0
    degraded: bool = False
    graph_version: int = 0
    #: Fraction of keyable packets served from the flow-decision cache
    #: since startup; feeds the controller's load estimates.
    fastpath_hit_rate: float = 0.0
    #: Headless-mode accounting (PROTOCOL.md §10): whether the OBI is
    #: currently running without a reachable controller, how many
    #: upstream messages its ring buffer dropped (oldest-first) since
    #: startup, and how many times it entered headless mode.
    headless: bool = False
    headless_dropped: int = 0
    headless_entries: int = 0
    #: Canonical digest of the running graph (anti-entropy input).
    graph_digest: str = ""
    #: Flow-state table accounting (PROTOCOL.md §11): live entries,
    #: protected (established) entries, evictions and refused inserts
    #: since startup, whether occupancy crossed the degradation
    #: watermark, and the state generation (bumped per restore).
    state_entries: int = 0
    state_protected: int = 0
    state_evictions: int = 0
    state_drops: int = 0
    state_pressure: bool = False
    state_generation: int = 0


@register_message
@dataclass
class ObservabilitySnapshotRequest(Message):
    """OBC → OBI: pull the instance's metrics and recent traces (§9).

    Read-only and side-effect free, so it rides the normal idempotent
    retry machinery with no special casing.
    """

    TYPE: ClassVar[str] = "ObservabilitySnapshotRequest"

    #: Include the sampled trace ring in the response (metrics are
    #: always included — they are cheap; traces can be large).
    include_traces: bool = True
    #: Return at most this many most-recent traces (0 = all retained).
    max_traces: int = 0


@register_message
@dataclass
class ObservabilitySnapshotResponse(Message):
    """OBI → OBC: one instance's observability state (PROTOCOL.md §9).

    ``metrics`` is the registry snapshot shape of
    :meth:`repro.observability.metrics.MetricsRegistry.snapshot`;
    ``traces`` is a list of serialized ``PacketTrace`` dicts whose spans
    carry per-block ``origin_app`` attribution. Everything is plain
    JSON — no wall-clock values appear in metric keys, so snapshots
    from different OBIs merge and diff cleanly.
    """

    TYPE: ClassVar[str] = "ObservabilitySnapshotResponse"

    obi_id: str = ""
    graph_version: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)
    traces: list[dict[str, Any]] = field(default_factory=list)
    #: Trace-sampling accounting: packets considered / actually traced.
    packets_seen: int = 0
    packets_sampled: int = 0
    sample_rate: float = 0.0


@register_message
@dataclass
class LogMessage(Message):
    """OBI → OBC/log service: a Log block fired."""

    TYPE: ClassVar[str] = "Log"

    obi_id: str = ""
    block: str = ""
    origin_app: str = ""
    message: str = ""
    packet_summary: str = ""


# ----------------------------------------------------------------------
# External services & synchronization
# ----------------------------------------------------------------------

@register_message
@dataclass
class SetExternalServices(Message):
    """OBC → OBI: addresses of the log and storage services (paper §3.1)."""

    TYPE: ClassVar[str] = "SetExternalServices"

    log_server: str = ""
    storage_server: str = ""
    keepalive_interval: float = 10.0


@register_message
@dataclass
class PacketHistoryRequest(Message):
    """OBC → OBI: fetch the recent per-packet traversal records.

    The OpenBox answer to SDN packet-history debugging (paper §6 cites
    "I know what your packet did last hop"): each record names the exact
    block path a packet took, its verdict, outputs, and alerts.
    """

    TYPE: ClassVar[str] = "PacketHistoryRequest"

    #: Return at most this many most-recent records (0 = all retained).
    limit: int = 0


@register_message
@dataclass
class PacketHistoryResponse(Message):
    TYPE: ClassVar[str] = "PacketHistoryResponse"

    records: list[dict[str, Any]] = field(default_factory=list)


@register_message
@dataclass
class ExportStateRequest(Message):
    """OBC → OBI: snapshot the session storage (OpenNF-style migration)."""

    TYPE: ClassVar[str] = "ExportStateRequest"


@register_message
@dataclass
class ExportStateResponse(Message):
    TYPE: ClassVar[str] = "ExportStateResponse"

    #: One entry per flow: {"key": five-tuple dict, "session": entries,
    #: "created_at": float, "last_seen": float}.
    state: list[dict[str, Any]] = field(default_factory=list)


@register_message
@dataclass
class ImportStateRequest(Message):
    """OBC → OBI: install exported session state before flows arrive."""

    TYPE: ClassVar[str] = "ImportStateRequest"

    state: list[dict[str, Any]] = field(default_factory=list)


@register_message
@dataclass
class ImportStateResponse(Message):
    TYPE: ClassVar[str] = "ImportStateResponse"

    flows_imported: int = 0
    #: Entries refused by validation, keyed by reason ("malformed",
    #: "expired", "capacity"); empty on a complete transfer.
    rejected: dict[str, int] = field(default_factory=dict)


@register_message
@dataclass
class StateCheckpointRequest(Message):
    """OBC → OBI: export session state *with* its generation (§11).

    The checkpoint form of ExportStateRequest: the orchestrator's
    snapshot stage uses it so a later handoff can be generation-fenced
    against a ghost OBI's stale state.
    """

    TYPE: ClassVar[str] = "StateCheckpointRequest"


@register_message
@dataclass
class StateCheckpointResponse(Message):
    TYPE: ClassVar[str] = "StateCheckpointResponse"

    obi_id: str = ""
    #: The exporting table's incarnation (bumped on every restore).
    state_generation: int = 0
    #: export_entries() schema, including per-entry "age", "version",
    #: and "protected".
    state: list[dict[str, Any]] = field(default_factory=list)


@register_message
@dataclass
class StateHandoffRequest(Message):
    """OBC → OBI: install a dead peer's last checkpoint (failover, §11).

    The survivor fences on ``(source_obi, state_generation)``: a
    handoff older than one it already imported from the same source is
    rejected as stale — a partitioned ghost OBI's checkpoint can never
    overwrite the state a newer incarnation handed off.
    """

    TYPE: ClassVar[str] = "StateHandoffRequest"

    source_obi: str = ""
    state_generation: int = 0
    state: list[dict[str, Any]] = field(default_factory=list)


@register_message
@dataclass
class StateHandoffResponse(Message):
    TYPE: ClassVar[str] = "StateHandoffResponse"

    accepted: bool = True
    #: True when the handoff was fenced as stale (generation below the
    #: highest already imported from the same source OBI).
    stale: bool = False
    flows_imported: int = 0
    rejected: dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Controller high availability (PROTOCOL.md §12)
# ----------------------------------------------------------------------

@register_message
@dataclass
class LeaseAnnounce(Message):
    """Leader → standby/OBI: "I hold the leadership lease".

    ``epoch`` is the lease epoch, which **is** the controller
    generation for lease-managed controllers — one monotonic fencing
    token for both replication and the data plane. ``endpoints`` is the
    ordered list of controller endpoints an OBI should try when
    re-homing after leader loss (the announcing leader first).
    Receivers fence: an announce with an epoch below the highest
    witnessed is answered ``stale_generation``.
    """

    TYPE: ClassVar[str] = "LeaseAnnounce"

    leader_id: str = ""
    epoch: int = 0
    #: Seconds of lease validity remaining at send time (advisory: lets
    #: a standby size its takeover patience without a shared clock).
    lease_remaining: float = 0.0
    endpoints: list[str] = field(default_factory=list)


@register_message
@dataclass
class JournalStream(Message):
    """Leader → standby: a batch of journal records past the replica's
    acknowledged cursor (PROTOCOL.md §12).

    ``snapshot`` True means the batch replaces the replica's journal
    wholesale — sent when the replica's cursor predates a compaction
    (its segment no longer exists) or on first contact. The replica
    fences on ``epoch`` exactly like an OBI fences deploys: a stream
    from a lower epoch than the highest witnessed is rejected
    ``stale_generation`` (a deposed leader must not overwrite the
    replica that may be about to succeed it).
    """

    TYPE: ClassVar[str] = "JournalStream"

    leader_id: str = ""
    epoch: int = 0
    snapshot: bool = False
    #: Position after applying ``records`` (segment = the leader
    #: journal's compaction incarnation, offset = record count).
    segment: int = 0
    offset: int = 0
    records: list[dict[str, Any]] = field(default_factory=list)


@register_message
@dataclass
class ReplicaAck(Message):
    """Standby → leader: durable replication progress (PROTOCOL.md §12).

    Acknowledges the cursor position the replica has *fsynced*; the
    leader uses it to track lag and to resume streaming after its own
    restart. ``epoch`` echoes the highest epoch the replica has
    witnessed — a leader seeing its own epoch exceeded there knows it
    has been superseded without waiting for an OBI to fence it.
    """

    TYPE: ClassVar[str] = "ReplicaAck"

    replica_id: str = ""
    epoch: int = 0
    segment: int = 0
    offset: int = 0


@register_message
@dataclass
class BarrierRequest(Message):
    """OBC → OBI: flush — respond only after all prior messages applied."""

    TYPE: ClassVar[str] = "BarrierRequest"


@register_message
@dataclass
class BarrierResponse(Message):
    TYPE: ClassVar[str] = "BarrierResponse"


@register_message
@dataclass
class ErrorMessage(Message):
    """Either direction: request failed; ``xid`` echoes the request."""

    TYPE: ClassVar[str] = "Error"

    code: str = ""
    detail: str = ""


# ----------------------------------------------------------------------
# Streaming telemetry (PROTOCOL.md §13)
# ----------------------------------------------------------------------

@register_message
@dataclass
class TelemetrySubscribe(Message):
    """OBC → OBI: open or refresh a telemetry subscription (§13).

    The OBI registers (or resumes) the named subscriber cursor on its
    telemetry ring and answers with a :class:`TelemetryStream` — the
    first batch, starting with a baseline record for a brand-new or
    gap-afflicted cursor. ``controller_generation`` rides the standard
    split-brain fence (§10): a subscribe from a deposed controller is
    rejected ``stale_generation`` before it can redirect the stream.
    """

    TYPE: ClassVar[str] = "TelemetrySubscribe"

    subscriber: str = "controller"
    #: Topic filter: any subset of {"metrics", "traces", "alerts"}
    #: (empty = all). Baselines ride the metrics topic.
    topics: list[str] = field(default_factory=list)
    #: Resume position: -1 resumes the OBI-side cursor (0 for a new
    #: subscriber, i.e. replay retained history); >= 0 sets it exactly.
    cursor: int = -1
    #: Max records per TelemetryStream batch (backpressure credit).
    window: int = 64
    #: One-shot drain: ignore ``window`` and return everything pending
    #: (the poll_observability compatibility wrapper uses this).
    drain: bool = False
    controller_generation: int = 0


@register_message
@dataclass
class TelemetryStream(Message):
    """OBI → OBC (push) or subscribe response: one cursored batch (§13).

    ``records`` each carry their ring ``seq``; the consumer folds only
    seqs above its cursor, so at-least-once redelivery after a
    reconnect deduplicates cleanly. ``lost`` counts records evicted
    before this batch could be read — never silent; the OBI emits a
    fresh baseline record after any gap so the consumer cannot stay
    stale. ``epoch`` is the controller generation the subscription was
    registered under; a consumer at a higher generation rejects the
    batch (NACK ``stale_generation``) so a stream started by a deposed
    controller dies at the first fence.
    """

    TYPE: ClassVar[str] = "TelemetryStream"

    obi_id: str = ""
    subscriber: str = "controller"
    #: Each record: {"seq": int, "kind": "baseline|metrics|trace|alert", ...}
    records: list[dict[str, Any]] = field(default_factory=list)
    #: Records evicted unread before this batch (counted gap).
    lost: int = 0
    #: Records still retained past this batch (drain loops stop at 0).
    pending: int = 0
    #: Highest ring seq this batch covers *inclusive* — may exceed the
    #: last record's seq when topic-filtered records were skipped; the
    #: consumer acks ``through_seq`` so filtered history is not replayed.
    through_seq: int = 0
    epoch: int = 0


@register_message
@dataclass
class TelemetryAck(Message):
    """OBC → OBI: consume/refuse a pushed TelemetryStream batch (§13).

    ``ok`` True acknowledges durably folding through ``cursor`` — the
    OBI advances the subscriber cursor and may evict acked records.
    ``ok`` False is a NACK: the OBI rewinds the cursor to ``cursor``
    and replays from there on the next publish (at-least-once).
    ``window`` re-extends backpressure credit for the next batch.
    """

    TYPE: ClassVar[str] = "TelemetryAck"

    subscriber: str = "controller"
    ok: bool = True
    cursor: int = 0
    window: int = 64
    error: str = ""
