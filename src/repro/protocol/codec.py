"""JSON wire codec for OpenBox protocol messages."""

from __future__ import annotations

import json
from typing import Any

from repro.protocol.errors import ErrorCode, ProtocolError
from repro.protocol.messages import Message, message_class

#: Protocol version implemented by this repo (the paper's spec is 1.1.0;
#: minor bump 1.2.0 adds the crash-recovery handshake: controller
#: generations, graph digests on Hello/KeepAlive, HelloResponse).
PROTOCOL_VERSION = "1.2.0"

#: Versions this codec accepts (same major version).
_ACCEPTED_MAJOR = PROTOCOL_VERSION.split(".")[0]


class CodecError(ProtocolError):
    """Raised when a wire payload cannot be decoded."""


def encode_message(message: Message) -> bytes:
    """Encode a message as a versioned JSON payload."""
    envelope = {"version": PROTOCOL_VERSION, "message": message.to_dict()}
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def decode_message(payload: bytes | str) -> Message:
    """Decode a wire payload back into the matching message dataclass."""
    try:
        envelope: Any = json.loads(payload)
    except (ValueError, TypeError) as exc:
        raise CodecError(ErrorCode.MALFORMED_MESSAGE, str(exc)) from exc
    if not isinstance(envelope, dict):
        raise CodecError(ErrorCode.MALFORMED_MESSAGE, "payload is not an object")

    version = envelope.get("version", "")
    if not isinstance(version, str) or version.split(".")[0] != _ACCEPTED_MAJOR:
        raise CodecError(ErrorCode.UNSUPPORTED_VERSION, f"version {version!r}")

    data = envelope.get("message")
    if not isinstance(data, dict):
        raise CodecError(ErrorCode.MALFORMED_MESSAGE, "missing message body")
    type_name = data.get("type")
    cls = message_class(type_name) if isinstance(type_name, str) else None
    if cls is None:
        raise CodecError(ErrorCode.UNKNOWN_MESSAGE, f"type {type_name!r}")
    try:
        return cls.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise CodecError(ErrorCode.MALFORMED_MESSAGE, str(exc)) from exc
