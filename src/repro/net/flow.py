"""Flow identification and tracking.

OpenBox's *session storage* (paper §3.4.2) is keyed by flow: a stateful NF
application stores per-flow data (tags, gzip windows, DPI search state)
that must live in the data plane. :class:`FlowTable` provides the flow
lifecycle — creation on first packet, idle timeout, TCP FIN/RST teardown —
on which the OBI's session storage is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.net.ip import IpProto, int_to_ip
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """The canonical 5-tuple flow key."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int

    @classmethod
    def of(cls, packet: Packet) -> "FiveTuple | None":
        """Extract the 5-tuple from ``packet``, or None for non-IP frames."""
        ipv4 = packet.ipv4
        if ipv4 is None:
            return None
        l4 = packet.l4
        src_port = l4.src_port if l4 is not None else 0
        dst_port = l4.dst_port if l4 is not None else 0
        return cls(ipv4.src, ipv4.dst, src_port, dst_port, ipv4.proto)

    def reversed(self) -> "FiveTuple":
        """The 5-tuple of the reverse direction."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.proto)

    def bidirectional_key(self) -> "FiveTuple":
        """A direction-independent key (the lexicographically smaller side)."""
        forward = (self.src_ip, self.src_port)
        backward = (self.dst_ip, self.dst_port)
        return self if forward <= backward else self.reversed()

    def to_dict(self) -> dict[str, int]:
        """JSON-safe form (used by state export/migration)."""
        return {
            "src_ip": self.src_ip, "dst_ip": self.dst_ip,
            "src_port": self.src_port, "dst_port": self.dst_port,
            "proto": self.proto,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FiveTuple":
        return cls(
            src_ip=int(data["src_ip"]), dst_ip=int(data["dst_ip"]),
            src_port=int(data["src_port"]), dst_port=int(data["dst_port"]),
            proto=int(data["proto"]),
        )

    def __str__(self) -> str:
        proto = {IpProto.TCP: "tcp", IpProto.UDP: "udp"}.get(self.proto, str(self.proto))
        return (
            f"{proto} {int_to_ip(self.src_ip)}:{self.src_port} -> "
            f"{int_to_ip(self.dst_ip)}:{self.dst_port}"
        )


@dataclass
class Flow:
    """Mutable per-flow state tracked by a :class:`FlowTable`."""

    key: FiveTuple
    created_at: float
    last_seen: float
    packets: int = 0
    bytes: int = 0
    fin_seen: bool = False
    rst_seen: bool = False
    session: dict[str, Any] = field(default_factory=dict)
    #: Bumped on every session write / state transition; cached flow
    #: decisions record the version they read so a transition can
    #: invalidate exactly the affected flow's cache entry.
    version: int = 0
    #: Protected entries (established connections) are never evicted by
    #: state-pressure policies — a SYN flood may only displace other
    #: embryonic entries, not live sessions.
    protected: bool = False

    @property
    def closed(self) -> bool:
        return self.rst_seen or self.fin_seen

    def touch(self, packet: Packet, now: float) -> None:
        self.last_seen = now
        self.packets += 1
        self.bytes += len(packet)
        tcp = packet.tcp
        if tcp is not None:
            if tcp.has_flag(TcpFlags.FIN):
                self.fin_seen = True
            if tcp.has_flag(TcpFlags.RST):
                self.rst_seen = True


class FlowTable:
    """Tracks active flows with idle-timeout eviction.

    ``bidirectional`` controls whether both directions of a connection map
    to the same flow entry (the default, matching how Snort-style NFs use
    session state).
    """

    def __init__(
        self,
        idle_timeout: float = 60.0,
        bidirectional: bool = True,
        max_flows: int | None = None,
    ) -> None:
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.idle_timeout = idle_timeout
        self.bidirectional = bidirectional
        self.max_flows = max_flows
        self._flows: dict[FiveTuple, Flow] = {}
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows.values())

    def _key_for(self, key: FiveTuple) -> FiveTuple:
        return key.bidirectional_key() if self.bidirectional else key

    def canonical_key(self, key: FiveTuple) -> FiveTuple:
        """The table's internal key for ``key`` (direction-folded if
        the table is bidirectional)."""
        return self._key_for(key)

    def install(self, flow: Flow) -> None:
        """Insert a pre-built flow entry (state import/migration)."""
        if self.max_flows is not None and len(self._flows) >= self.max_flows:
            self._evict_oldest()
        self._flows[flow.key] = flow

    def lookup(self, key: FiveTuple) -> Flow | None:
        """Return the flow for ``key`` without creating or touching it."""
        return self._flows.get(self._key_for(key))

    def observe(self, packet: Packet, now: float) -> Flow | None:
        """Account ``packet`` to its flow, creating the flow if new.

        Returns None for non-IP packets. Runs opportunistic expiry so the
        table stays bounded even without explicit :meth:`expire` calls.
        """
        tuple5 = FiveTuple.of(packet)
        if tuple5 is None:
            return None
        key = self._key_for(tuple5)
        flow = self._flows.get(key)
        if flow is None:
            if self.max_flows is not None and len(self._flows) >= self.max_flows:
                self._evict_oldest()
            flow = Flow(key=key, created_at=now, last_seen=now)
            self._flows[key] = flow
        flow.touch(packet, now)
        return flow

    def expire(self, now: float) -> list[Flow]:
        """Remove and return flows idle for longer than the timeout."""
        expired = [
            flow for flow in self._flows.values()
            if now - flow.last_seen > self.idle_timeout
        ]
        for flow in expired:
            del self._flows[flow.key]
            self.evictions += 1
        return expired

    def remove(self, key: FiveTuple) -> Flow | None:
        """Explicitly remove a flow (e.g. after FIN handshake completes)."""
        return self._flows.pop(self._key_for(key), None)

    def _evict_oldest(self) -> None:
        oldest = min(self._flows.values(), key=lambda flow: flow.last_seen, default=None)
        if oldest is not None:
            del self._flows[oldest.key]
            self.evictions += 1

    def export_state(self) -> dict[str, dict[str, Any]]:
        """Serializable snapshot of per-flow session state.

        This is the hook an OpenNF-style migration framework would use to
        move session storage between replicated OBIs (paper §3.4.2 defers
        migration itself to OpenNF).
        """
        return {str(flow.key): dict(flow.session) for flow in self._flows.values()}
