"""VXLAN encapsulation (RFC 7348).

The paper lists VXLAN as an alternative to NSH for carrying OpenBox
metadata between service instances (§3.1). VXLAN has no native metadata
TLVs, so when used as the OpenBox metadata channel the blob rides as a
shim between the VXLAN header and the inner frame (this mirrors how
FlowTags-style deployments smuggle state, and is why the paper notes such
schemes "may require increasing the MTU").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass


@dataclass(slots=True)
class VxlanHeader:
    """A VXLAN header: flags + 24-bit VNI."""

    vni: int
    flags: int = 0x08  # I flag set: VNI is valid.

    HEADER_LEN = 8

    def __post_init__(self) -> None:
        if not 0 <= self.vni < (1 << 24):
            raise ValueError(f"VNI out of range: {self.vni}")

    @classmethod
    def parse(cls, data: bytes | memoryview, offset: int = 0) -> "VxlanHeader":
        buf = bytes(data)
        if len(buf) - offset < cls.HEADER_LEN:
            raise ValueError("truncated VXLAN header")
        flags_word, vni_word = struct.unpack_from("!II", buf, offset)
        flags = (flags_word >> 24) & 0xFF
        if not flags & 0x08:
            raise ValueError("VXLAN I flag not set")
        return cls(vni=vni_word >> 8, flags=flags)

    def serialize(self) -> bytes:
        return struct.pack("!II", self.flags << 24, self.vni << 8)


def encap_with_metadata(vni: int, metadata: bytes, inner: bytes) -> bytes:
    """Build ``VXLAN | len | metadata | inner-frame`` bytes."""
    if len(metadata) > 0xFFFF:
        raise ValueError("metadata blob too large for VXLAN shim")
    return VxlanHeader(vni).serialize() + struct.pack("!H", len(metadata)) + metadata + inner


def decap_with_metadata(data: bytes) -> tuple[VxlanHeader, bytes, bytes]:
    """Split VXLAN-encapsulated bytes into (header, metadata, inner frame)."""
    header = VxlanHeader.parse(data)
    pos = VxlanHeader.HEADER_LEN
    if len(data) - pos < 2:
        raise ValueError("truncated VXLAN metadata shim")
    (md_len,) = struct.unpack_from("!H", data, pos)
    pos += 2
    if len(data) - pos < md_len:
        raise ValueError("truncated VXLAN metadata blob")
    return header, data[pos : pos + md_len], data[pos + md_len :]
