"""Packet-level networking substrate for the OpenBox reproduction.

This subpackage implements, from scratch, everything OpenBox's data plane
needs to handle packets: header parsing and serialization for Ethernet,
802.1Q VLAN, IPv4, TCP, and UDP; a minimal HTTP/1.x parser; the Network
Service Header (NSH) used to carry OpenBox metadata between service
instances; VXLAN as an alternative encapsulation; and flow tracking.

The central type is :class:`~repro.net.packet.Packet`, a mutable packet
buffer with lazily parsed header views and an attached per-packet metadata
store (the OpenBox "metadata storage").
"""

from repro.net.checksum import internet_checksum
from repro.net.ethernet import EtherType, EthernetHeader, MacAddress, VlanTag
from repro.net.flow import FiveTuple, Flow, FlowTable
from repro.net.geneve import GeneveHeader
from repro.net.http import HttpMessage, HttpRequest, HttpResponse, parse_http
from repro.net.icmp import IcmpMessage, IcmpType
from repro.net.ip import IpProto, Ipv4Header
from repro.net.nsh import NshHeader
from repro.net.packet import Packet
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.net.vxlan import VxlanHeader

__all__ = [
    "EtherType",
    "EthernetHeader",
    "FiveTuple",
    "Flow",
    "FlowTable",
    "GeneveHeader",
    "HttpMessage",
    "HttpRequest",
    "HttpResponse",
    "IcmpMessage",
    "IcmpType",
    "IpProto",
    "Ipv4Header",
    "MacAddress",
    "NshHeader",
    "Packet",
    "PcapReader",
    "PcapWriter",
    "TcpFlags",
    "TcpHeader",
    "UdpHeader",
    "VlanTag",
    "VxlanHeader",
    "internet_checksum",
    "parse_http",
    "read_pcap",
    "write_pcap",
]
