"""Ethernet II framing and 802.1Q VLAN tags."""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")


class EtherType:
    """Well-known EtherType values (host-order integers)."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD
    NSH = 0x894F


@dataclass(frozen=True, slots=True)
class MacAddress:
    """A 48-bit MAC address, stored as 6 raw bytes."""

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != 6:
            raise ValueError(f"MAC address must be 6 bytes, got {len(self.raw)}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse a colon- or dash-separated MAC string like ``aa:bb:cc:dd:ee:ff``."""
        if not _MAC_RE.match(text):
            raise ValueError(f"invalid MAC address: {text!r}")
        return cls(bytes(int(part, 16) for part in re.split("[:-]", text)))

    @classmethod
    def broadcast(cls) -> "MacAddress":
        return cls(b"\xff" * 6)

    @property
    def is_broadcast(self) -> bool:
        return self.raw == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        return bool(self.raw[0] & 0x01)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.raw)

    def __int__(self) -> int:
        return int.from_bytes(self.raw, "big")


@dataclass(slots=True)
class VlanTag:
    """An 802.1Q tag: priority (PCP), drop-eligible (DEI), and VLAN id."""

    vid: int
    pcp: int = 0
    dei: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.vid < 4096:
            raise ValueError(f"VLAN id out of range: {self.vid}")
        if not 0 <= self.pcp < 8:
            raise ValueError(f"VLAN PCP out of range: {self.pcp}")

    @property
    def tci(self) -> int:
        """The 16-bit Tag Control Information field."""
        return (self.pcp << 13) | (int(self.dei) << 12) | self.vid

    @classmethod
    def from_tci(cls, tci: int) -> "VlanTag":
        return cls(vid=tci & 0x0FFF, pcp=(tci >> 13) & 0x7, dei=bool((tci >> 12) & 1))


@dataclass(slots=True)
class EthernetHeader:
    """An Ethernet II header, optionally carrying a stack of 802.1Q tags.

    ``ethertype`` is always the *inner* EtherType (the payload protocol);
    VLAN tags, if present, are serialized between the source MAC and the
    inner EtherType in stack order.
    """

    dst: MacAddress
    src: MacAddress
    ethertype: int
    vlan_tags: list[VlanTag] = field(default_factory=list)

    HEADER_LEN = 14
    VLAN_TAG_LEN = 4

    @property
    def header_len(self) -> int:
        return self.HEADER_LEN + self.VLAN_TAG_LEN * len(self.vlan_tags)

    @property
    def vlan(self) -> VlanTag | None:
        """The outermost VLAN tag, or None if the frame is untagged."""
        return self.vlan_tags[0] if self.vlan_tags else None

    def push_vlan(self, tag: VlanTag) -> None:
        """Push ``tag`` as the new outermost 802.1Q tag."""
        self.vlan_tags.insert(0, tag)

    def pop_vlan(self) -> VlanTag:
        """Pop and return the outermost 802.1Q tag."""
        if not self.vlan_tags:
            raise ValueError("cannot pop VLAN tag from untagged frame")
        return self.vlan_tags.pop(0)

    @classmethod
    def parse(cls, data: bytes | memoryview, offset: int = 0) -> "EthernetHeader":
        """Parse an Ethernet header (and any stacked VLAN tags) from ``data``."""
        buf = bytes(data)
        if len(buf) - offset < cls.HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst = MacAddress(buf[offset : offset + 6])
        src = MacAddress(buf[offset + 6 : offset + 12])
        pos = offset + 12
        tags: list[VlanTag] = []
        (ethertype,) = struct.unpack_from("!H", buf, pos)
        pos += 2
        while ethertype == EtherType.VLAN:
            if len(buf) - pos < 4:
                raise ValueError("truncated 802.1Q tag")
            (tci, ethertype) = struct.unpack_from("!HH", buf, pos)
            tags.append(VlanTag.from_tci(tci))
            pos += 4
        return cls(dst=dst, src=src, ethertype=ethertype, vlan_tags=tags)

    def serialize(self) -> bytes:
        parts = [self.dst.raw, self.src.raw]
        for tag in self.vlan_tags:
            parts.append(struct.pack("!HH", EtherType.VLAN, tag.tci))
        parts.append(struct.pack("!H", self.ethertype))
        return b"".join(parts)
