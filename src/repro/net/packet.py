"""The Packet type: a mutable frame buffer with lazily parsed header views.

A :class:`Packet` is what flows through an OpenBox processing graph. It
wraps the raw frame bytes and offers cached, lazily parsed header objects
(:attr:`eth`, :attr:`ipv4`, :attr:`l4`) plus the OpenBox *metadata storage*
(:attr:`metadata`) — the short-lived per-packet key-value store defined by
the protocol (paper §3.4.2).

Mutating a header view marks the packet dirty; :meth:`rebuild` re-serializes
the frame (recomputing lengths and checksums). Blocks that modify headers
call :meth:`mark_dirty` via the helpers here, so downstream blocks always
observe consistent bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.net.ethernet import EtherType, EthernetHeader
from repro.net.ip import IpProto, Ipv4Header
from repro.net.tcp import TcpHeader
from repro.net.udp import UdpHeader

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A network packet traversing the OpenBox data plane."""

    data: bytes
    timestamp: float = 0.0
    ingress_port: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    _eth: EthernetHeader | None = field(default=None, repr=False)
    _ipv4: Ipv4Header | None = field(default=None, repr=False)
    _l4: TcpHeader | UdpHeader | None = field(default=None, repr=False)
    _parsed: bool = field(default=False, repr=False)
    _dirty: bool = field(default=False, repr=False)

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    def _parse(self) -> None:
        if self._parsed:
            return
        self._parsed = True
        try:
            self._eth = EthernetHeader.parse(self.data)
        except ValueError:
            return
        offset = self._eth.header_len
        if self._eth.ethertype != EtherType.IPV4:
            return
        try:
            self._ipv4 = Ipv4Header.parse(self.data, offset)
        except ValueError:
            return
        offset += self._ipv4.header_len
        try:
            if self._ipv4.proto == IpProto.TCP:
                self._l4 = TcpHeader.parse(self.data, offset)
            elif self._ipv4.proto == IpProto.UDP:
                self._l4 = UdpHeader.parse(self.data, offset)
        except ValueError:
            self._l4 = None

    @property
    def eth(self) -> EthernetHeader | None:
        """The Ethernet header view, or None if the frame is malformed."""
        self._parse()
        return self._eth

    @property
    def ipv4(self) -> Ipv4Header | None:
        """The IPv4 header view, or None for non-IPv4 frames."""
        self._parse()
        return self._ipv4

    @property
    def l4(self) -> TcpHeader | UdpHeader | None:
        """The TCP or UDP header view, or None."""
        self._parse()
        return self._l4

    @property
    def tcp(self) -> TcpHeader | None:
        l4 = self.l4
        return l4 if isinstance(l4, TcpHeader) else None

    @property
    def udp(self) -> UdpHeader | None:
        l4 = self.l4
        return l4 if isinstance(l4, UdpHeader) else None

    @property
    def payload_offset(self) -> int:
        """Byte offset of the L4 payload (or end of deepest parsed header)."""
        self._parse()
        offset = 0
        if self._eth is not None:
            offset += self._eth.header_len
        if self._ipv4 is not None:
            offset += self._ipv4.header_len
        if self._l4 is not None:
            offset += self._l4.header_len if isinstance(self._l4, TcpHeader) else UdpHeader.HEADER_LEN
        return offset

    @property
    def payload(self) -> bytes:
        """The L4 payload bytes (empty for header-only packets)."""
        return self.data[self.payload_offset :]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mark_dirty(self) -> None:
        """Record that a header view was modified; bytes must be rebuilt."""
        self._parse()
        self._dirty = True

    def set_payload(self, payload: bytes) -> None:
        """Replace the L4 payload and rebuild the frame."""
        self._parse()
        prefix_end = self.payload_offset
        self.data = self.data[:prefix_end] + payload
        self._dirty = True
        self.rebuild()

    def rebuild(self) -> None:
        """Re-serialize modified headers back into :attr:`data`.

        Recomputes the IPv4 total length + checksum and the L4 checksum.
        No-op if the packet was never marked dirty.
        """
        if not self._dirty:
            return
        self._parse()
        eth, ipv4, l4 = self._eth, self._ipv4, self._l4
        payload = self.payload
        parts: list[bytes] = []
        if eth is not None:
            parts.append(eth.serialize())
        if ipv4 is not None:
            l4_bytes = b""
            if isinstance(l4, TcpHeader):
                l4_bytes = l4.serialize(payload, src_ip=ipv4.src, dst_ip=ipv4.dst)
            elif isinstance(l4, UdpHeader):
                l4_bytes = l4.serialize(payload, src_ip=ipv4.src, dst_ip=ipv4.dst)
            else:
                l4_bytes = payload
            if l4 is not None:
                parts.append(ipv4.serialize(payload_len=len(l4_bytes)))
                parts.append(l4_bytes)
            else:
                parts.append(ipv4.serialize(payload_len=len(payload)))
                parts.append(payload)
        elif eth is not None:
            parts.append(self.data[eth.header_len :])
        else:
            parts.append(self.data)
        self.data = b"".join(parts)
        self._dirty = False

    def clone(self) -> "Packet":
        """Deep-ish copy: fresh buffer + copied metadata, new packet id.

        Used by blocks that emit a packet to multiple output ports.
        """
        self.rebuild()
        return Packet(
            data=self.data,
            timestamp=self.timestamp,
            ingress_port=self.ingress_port,
            metadata=dict(self.metadata),
        )

    def invalidate(self) -> None:
        """Drop cached header views; next access re-parses :attr:`data`."""
        self._eth = None
        self._ipv4 = None
        self._l4 = None
        self._parsed = False
        self._dirty = False

    def summary(self) -> str:
        """One-line human-readable description, for logs and debugging."""
        self._parse()
        if self._ipv4 is None:
            return f"pkt#{self.packet_id} len={len(self.data)} non-ip"
        proto = {IpProto.TCP: "tcp", IpProto.UDP: "udp"}.get(self._ipv4.proto, str(self._ipv4.proto))
        ports = ""
        if self._l4 is not None:
            ports = f" {self._l4.src_port}->{self._l4.dst_port}"
        return (
            f"pkt#{self.packet_id} len={len(self.data)} {proto} "
            f"{self._ipv4.src_text}->{self._ipv4.dst_text}{ports}"
        )
