"""Convenience constructors for test and generator traffic."""

from __future__ import annotations

from repro.net.ethernet import EtherType, EthernetHeader, MacAddress, VlanTag
from repro.net.ip import IpProto, Ipv4Header, ip_to_int
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader

DEFAULT_SRC_MAC = MacAddress.parse("02:00:00:00:00:01")
DEFAULT_DST_MAC = MacAddress.parse("02:00:00:00:00:02")


def _as_ip(value: int | str) -> int:
    return ip_to_int(value) if isinstance(value, str) else value


def make_tcp_packet(
    src_ip: int | str,
    dst_ip: int | str,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    flags: int = TcpFlags.ACK,
    seq: int = 0,
    ack: int = 0,
    ttl: int = 64,
    vlan: int | None = None,
    timestamp: float = 0.0,
) -> Packet:
    """Build a fully serialized Ethernet/IPv4/TCP packet."""
    src, dst = _as_ip(src_ip), _as_ip(dst_ip)
    tcp = TcpHeader(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack, flags=flags)
    segment = tcp.serialize(payload, src_ip=src, dst_ip=dst)
    ipv4 = Ipv4Header(src=src, dst=dst, proto=IpProto.TCP, ttl=ttl)
    ip_bytes = ipv4.serialize(payload_len=len(segment))
    eth = EthernetHeader(dst=DEFAULT_DST_MAC, src=DEFAULT_SRC_MAC, ethertype=EtherType.IPV4)
    if vlan is not None:
        eth.push_vlan(VlanTag(vid=vlan))
    return Packet(data=eth.serialize() + ip_bytes + segment, timestamp=timestamp)


def make_udp_packet(
    src_ip: int | str,
    dst_ip: int | str,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    ttl: int = 64,
    vlan: int | None = None,
    timestamp: float = 0.0,
) -> Packet:
    """Build a fully serialized Ethernet/IPv4/UDP packet."""
    src, dst = _as_ip(src_ip), _as_ip(dst_ip)
    udp = UdpHeader(src_port=src_port, dst_port=dst_port)
    datagram = udp.serialize(payload, src_ip=src, dst_ip=dst)
    ipv4 = Ipv4Header(src=src, dst=dst, proto=IpProto.UDP, ttl=ttl)
    ip_bytes = ipv4.serialize(payload_len=len(datagram))
    eth = EthernetHeader(dst=DEFAULT_DST_MAC, src=DEFAULT_SRC_MAC, ethertype=EtherType.IPV4)
    if vlan is not None:
        eth.push_vlan(VlanTag(vid=vlan))
    return Packet(data=eth.serialize() + ip_bytes + datagram, timestamp=timestamp)


def make_http_get(
    src_ip: int | str,
    dst_ip: int | str,
    host: str,
    uri: str = "/",
    src_port: int = 40000,
    dst_port: int = 80,
    extra_headers: dict[str, str] | None = None,
    timestamp: float = 0.0,
) -> Packet:
    """Build a TCP packet carrying a simple HTTP GET request."""
    lines = [f"GET {uri} HTTP/1.1", f"Host: {host}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    payload = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return make_tcp_packet(
        src_ip, dst_ip, src_port, dst_port, payload=payload,
        flags=TcpFlags.ACK | TcpFlags.PSH, timestamp=timestamp,
    )
