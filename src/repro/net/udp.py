"""UDP header parsing and serialization."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum, pseudo_header_sum
from repro.net.ip import IpProto


@dataclass(slots=True)
class UdpHeader:
    """A UDP header."""

    src_port: int
    dst_port: int
    length: int = 0
    checksum: int = 0

    HEADER_LEN = 8

    @classmethod
    def parse(cls, data: bytes | memoryview, offset: int = 0) -> "UdpHeader":
        buf = bytes(data)
        if len(buf) - offset < cls.HEADER_LEN:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, checksum = struct.unpack_from("!HHHH", buf, offset)
        if length < cls.HEADER_LEN:
            raise ValueError(f"invalid UDP length: {length}")
        return cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum)

    def serialize(
        self,
        payload: bytes = b"",
        src_ip: int | None = None,
        dst_ip: int | None = None,
    ) -> bytes:
        """Serialize the datagram; checksum computed if IPs are supplied.

        Per RFC 768, a computed checksum of zero is transmitted as 0xFFFF.
        """
        self.length = self.HEADER_LEN + len(payload)
        header = struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)
        if src_ip is not None and dst_ip is not None:
            initial = pseudo_header_sum(src_ip, dst_ip, IpProto.UDP, self.length)
            checksum = internet_checksum(header + payload, initial)
            self.checksum = checksum if checksum != 0 else 0xFFFF
        return header[:6] + struct.pack("!H", self.checksum) + payload
