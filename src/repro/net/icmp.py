"""ICMP message codec (echo, unreachable, time-exceeded).

NFs interact with ICMP constantly — firewalls rate-limit echo floods,
NATs must translate embedded headers in errors, TTL-expiry handling
needs time-exceeded generation — so the packet substrate carries a
proper codec rather than treating protocol 1 as opaque bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum, verify_checksum


class IcmpType:
    """Common ICMP type values."""

    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass(slots=True)
class IcmpMessage:
    """A generic ICMP message; echo id/seq unpacked when applicable."""

    icmp_type: int
    code: int = 0
    checksum: int = 0
    #: The 4 "rest of header" bytes (id+seq for echo, unused for errors).
    rest: bytes = b"\x00\x00\x00\x00"
    payload: bytes = b""

    HEADER_LEN = 8

    @property
    def identifier(self) -> int:
        return struct.unpack("!H", self.rest[:2])[0]

    @property
    def sequence(self) -> int:
        return struct.unpack("!H", self.rest[2:4])[0]

    @property
    def is_echo(self) -> bool:
        return self.icmp_type in (IcmpType.ECHO_REQUEST, IcmpType.ECHO_REPLY)

    @classmethod
    def echo_request(cls, identifier: int, sequence: int, payload: bytes = b"") -> "IcmpMessage":
        return cls(
            icmp_type=IcmpType.ECHO_REQUEST,
            rest=struct.pack("!HH", identifier, sequence),
            payload=payload,
        )

    @classmethod
    def echo_reply_to(cls, request: "IcmpMessage") -> "IcmpMessage":
        """The reply a host would send to ``request`` (same id/seq/data)."""
        if request.icmp_type != IcmpType.ECHO_REQUEST:
            raise ValueError("can only reply to an echo request")
        return cls(
            icmp_type=IcmpType.ECHO_REPLY,
            rest=request.rest,
            payload=request.payload,
        )

    @classmethod
    def parse(cls, data: bytes | memoryview, offset: int = 0) -> "IcmpMessage":
        buf = bytes(data)
        if len(buf) - offset < cls.HEADER_LEN:
            raise ValueError("truncated ICMP message")
        icmp_type, code, checksum = struct.unpack_from("!BBH", buf, offset)
        return cls(
            icmp_type=icmp_type,
            code=code,
            checksum=checksum,
            rest=buf[offset + 4 : offset + 8],
            payload=buf[offset + 8 :],
        )

    def serialize(self) -> bytes:
        if len(self.rest) != 4:
            raise ValueError("ICMP rest-of-header must be 4 bytes")
        header = struct.pack("!BBH", self.icmp_type, self.code, 0) + self.rest
        self.checksum = internet_checksum(header + self.payload)
        return (
            struct.pack("!BBH", self.icmp_type, self.code, self.checksum)
            + self.rest + self.payload
        )

    def checksum_valid(self) -> bool:
        wire = (
            struct.pack("!BBH", self.icmp_type, self.code, self.checksum)
            + self.rest + self.payload
        )
        return verify_checksum(wire)
