"""Network Service Header (NSH) encapsulation.

OpenBox attaches per-packet metadata when a processing graph is split
across several OBIs (paper §3.1, Figures 5-6). The paper's implementation
uses NSH (draft-quinn-sfc-nsh); we implement the MD type 2 format with
variable-length context headers, which is what carrying an arbitrary
OpenBox metadata blob requires.

Layout (MD type 2)::

    0                   1                   2                   3
    |Ver|O|U|    TTL    |   Length  |U|U|U|U|MD Type| Next Proto |
    |          Service Path Identifier (SPI)       | Service Index |
    |               ... variable-length context headers ...        |

Each context header is a TLV: 2-byte metadata class, 1-byte type,
1-byte length, then the value padded to 4 bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

#: Metadata class registered for OpenBox context headers in this repo.
OPENBOX_MD_CLASS = 0x0B0C
#: Context type carrying the serialized OpenBox metadata blob.
OPENBOX_MD_TYPE = 0x01

NSH_NEXT_PROTO_IPV4 = 0x01
NSH_NEXT_PROTO_ETHERNET = 0x03


@dataclass(slots=True)
class NshContextHeader:
    """A single MD type 2 variable-length context TLV."""

    md_class: int
    md_type: int
    value: bytes

    @property
    def padded_len(self) -> int:
        return 4 + (len(self.value) + 3) // 4 * 4

    def serialize(self) -> bytes:
        if len(self.value) > 255:
            raise ValueError("NSH context value exceeds 255 bytes")
        pad = (-len(self.value)) % 4
        return (
            struct.pack("!HBB", self.md_class, self.md_type, len(self.value))
            + self.value
            + b"\x00" * pad
        )


@dataclass(slots=True)
class NshHeader:
    """An NSH base + service-path header with MD type 2 context headers."""

    spi: int
    si: int = 255
    ttl: int = 63
    next_proto: int = NSH_NEXT_PROTO_ETHERNET
    context: list[NshContextHeader] = field(default_factory=list)

    BASE_LEN = 8
    MD_TYPE = 0x2

    def __post_init__(self) -> None:
        if not 0 <= self.spi < (1 << 24):
            raise ValueError(f"SPI out of range: {self.spi}")
        if not 0 <= self.si <= 255:
            raise ValueError(f"service index out of range: {self.si}")

    @property
    def header_len(self) -> int:
        return self.BASE_LEN + sum(ctx.padded_len for ctx in self.context)

    def add_metadata(self, blob: bytes) -> None:
        """Attach an OpenBox metadata blob as a context header."""
        self.context.append(
            NshContextHeader(OPENBOX_MD_CLASS, OPENBOX_MD_TYPE, blob)
        )

    def openbox_metadata(self) -> bytes | None:
        """Return the OpenBox metadata blob, if one is attached."""
        for ctx in self.context:
            if ctx.md_class == OPENBOX_MD_CLASS and ctx.md_type == OPENBOX_MD_TYPE:
                return ctx.value
        return None

    def decrement_si(self) -> None:
        """Decrement the service index (one hop consumed on the path)."""
        if self.si == 0:
            raise ValueError("NSH service index underflow")
        self.si -= 1

    @classmethod
    def parse(cls, data: bytes | memoryview, offset: int = 0) -> "NshHeader":
        buf = bytes(data)
        if len(buf) - offset < cls.BASE_LEN:
            raise ValueError("truncated NSH header")
        word0, spi_si = struct.unpack_from("!II", buf, offset)
        version = (word0 >> 30) & 0x3
        if version != 0:
            raise ValueError(f"unsupported NSH version: {version}")
        ttl = (word0 >> 22) & 0x3F
        length_words = (word0 >> 16) & 0x3F
        md_type = (word0 >> 8) & 0xF
        next_proto = word0 & 0xFF
        if md_type != cls.MD_TYPE:
            raise ValueError(f"unsupported NSH MD type: {md_type}")
        total_len = length_words * 4
        if len(buf) - offset < total_len or total_len < cls.BASE_LEN:
            raise ValueError("truncated NSH context headers")
        header = cls(
            spi=spi_si >> 8, si=spi_si & 0xFF, ttl=ttl, next_proto=next_proto,
        )
        pos = offset + cls.BASE_LEN
        end = offset + total_len
        while pos < end:
            if end - pos < 4:
                raise ValueError("truncated NSH context TLV")
            md_class, ctx_type, value_len = struct.unpack_from("!HBB", buf, pos)
            pos += 4
            padded = (value_len + 3) // 4 * 4
            if pos + padded > end:
                raise ValueError("NSH context TLV overruns header")
            header.context.append(
                NshContextHeader(md_class, ctx_type, buf[pos : pos + value_len])
            )
            pos += padded
        return header

    def serialize(self) -> bytes:
        length_words = self.header_len // 4
        if length_words > 0x3F:
            raise ValueError("NSH header too long")
        word0 = (
            (0 << 30)
            | ((self.ttl & 0x3F) << 22)
            | (length_words << 16)
            | (self.MD_TYPE << 8)
            | (self.next_proto & 0xFF)
        )
        parts = [struct.pack("!II", word0, (self.spi << 8) | self.si)]
        parts.extend(ctx.serialize() for ctx in self.context)
        return b"".join(parts)
