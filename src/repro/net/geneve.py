"""Geneve encapsulation (draft-ietf-nvo3-geneve, paper §3.1 reference [19]).

The third metadata channel the paper lists alongside NSH and VXLAN.
Unlike VXLAN, Geneve has native TLV options, so the OpenBox metadata
blob rides as a proper option — no shim needed. Layout::

    |Ver|OptLen |O|C|  Reserved |     Protocol Type             |
    |      VNI (24 bits)                        |   Reserved    |
    |            ... variable-length options ...                |

Each option: 2-byte class, 1-byte type, 3-bit reserved + 5-bit length
(in 4-byte words), then the value padded to 4 bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

#: Option class registered for OpenBox metadata in this repo.
OPENBOX_OPT_CLASS = 0x0B0C
OPENBOX_OPT_TYPE = 0x42

GENEVE_PROTO_ETHERNET = 0x6558


@dataclass(slots=True)
class GeneveOption:
    """One Geneve TLV option."""

    opt_class: int
    opt_type: int
    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) > 4 * 31:
            raise ValueError("Geneve option value exceeds 124 bytes")

    @property
    def padded_value_len(self) -> int:
        return (len(self.value) + 3) // 4 * 4

    def serialize(self) -> bytes:
        length_words = self.padded_value_len // 4
        pad = self.padded_value_len - len(self.value)
        return (
            struct.pack("!HBB", self.opt_class, self.opt_type, length_words)
            + self.value + b"\x00" * pad
        )


@dataclass(slots=True)
class GeneveHeader:
    """A Geneve header with TLV options."""

    vni: int
    protocol: int = GENEVE_PROTO_ETHERNET
    critical: bool = False
    options: list[GeneveOption] = field(default_factory=list)

    BASE_LEN = 8

    def __post_init__(self) -> None:
        if not 0 <= self.vni < (1 << 24):
            raise ValueError(f"VNI out of range: {self.vni}")

    @property
    def options_len(self) -> int:
        return sum(4 + option.padded_value_len for option in self.options)

    @property
    def header_len(self) -> int:
        return self.BASE_LEN + self.options_len

    def add_metadata(self, blob: bytes) -> None:
        """Attach an OpenBox metadata blob as an option.

        The option value length field is 5 bits of 4-byte words, so the
        exact blob length must ride inside the value: 2-byte length prefix.
        """
        if len(blob) > 4 * 31 - 2:
            raise ValueError("metadata blob too large for one Geneve option")
        value = struct.pack("!H", len(blob)) + blob
        self.options.append(GeneveOption(OPENBOX_OPT_CLASS, OPENBOX_OPT_TYPE, value))

    def openbox_metadata(self) -> bytes | None:
        for option in self.options:
            if (option.opt_class, option.opt_type) == (OPENBOX_OPT_CLASS,
                                                       OPENBOX_OPT_TYPE):
                (length,) = struct.unpack_from("!H", option.value, 0)
                return option.value[2 : 2 + length]
        return None

    @classmethod
    def parse(cls, data: bytes | memoryview, offset: int = 0) -> "GeneveHeader":
        buf = bytes(data)
        if len(buf) - offset < cls.BASE_LEN:
            raise ValueError("truncated Geneve header")
        ver_optlen, flags, protocol, vni_word = struct.unpack_from(
            "!BBHI", buf, offset
        )
        version = ver_optlen >> 6
        if version != 0:
            raise ValueError(f"unsupported Geneve version: {version}")
        options_len = (ver_optlen & 0x3F) * 4
        header = cls(
            vni=vni_word >> 8,
            protocol=protocol,
            critical=bool(flags & 0x40),
        )
        pos = offset + cls.BASE_LEN
        end = pos + options_len
        if len(buf) < end:
            raise ValueError("truncated Geneve options")
        while pos < end:
            if end - pos < 4:
                raise ValueError("truncated Geneve option header")
            opt_class, opt_type, length_words = struct.unpack_from("!HBB", buf, pos)
            length_words &= 0x1F
            pos += 4
            value_len = length_words * 4
            if pos + value_len > end:
                raise ValueError("Geneve option overruns header")
            header.options.append(
                GeneveOption(opt_class, opt_type, buf[pos : pos + value_len])
            )
            pos += value_len
        return header

    def serialize(self) -> bytes:
        options = b"".join(option.serialize() for option in self.options)
        if len(options) % 4:
            raise ValueError("Geneve options must align to 4 bytes")
        optlen_words = len(options) // 4
        if optlen_words > 0x3F:
            raise ValueError("Geneve options too long")
        flags = 0x40 if self.critical else 0x00
        return struct.pack(
            "!BBHI", optlen_words, flags, self.protocol, self.vni << 8
        ) + options
