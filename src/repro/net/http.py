"""A minimal HTTP/1.x message parser.

OpenBox's payload-processing blocks (web cache matching, gzip decompression,
HTML normalization, protocol analysis) need to recognize HTTP requests and
responses inside TCP payloads. This module provides a small, forgiving
parser for single-packet HTTP messages: enough structure for classification
without a full streaming implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class HttpMessage:
    """Common parts of an HTTP request or response."""

    version: str = "HTTP/1.1"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    @property
    def is_gzip(self) -> bool:
        encoding = self.header("Content-Encoding", "") or ""
        return "gzip" in encoding.lower()

    @property
    def content_type(self) -> str:
        return (self.header("Content-Type", "") or "").split(";")[0].strip().lower()


@dataclass(slots=True)
class HttpRequest(HttpMessage):
    """An HTTP request line plus headers and body."""

    method: str = "GET"
    uri: str = "/"

    @property
    def host(self) -> str:
        return self.header("Host", "") or ""

    def start_line(self) -> str:
        return f"{self.method} {self.uri} {self.version}"


@dataclass(slots=True)
class HttpResponse(HttpMessage):
    """An HTTP status line plus headers and body."""

    status: int = 200
    reason: str = "OK"

    def start_line(self) -> str:
        return f"{self.version} {self.status} {self.reason}"


_METHODS = (
    b"GET ", b"POST ", b"PUT ", b"DELETE ", b"HEAD ", b"OPTIONS ",
    b"PATCH ", b"TRACE ", b"CONNECT ",
)


def looks_like_http(payload: bytes) -> bool:
    """Cheap test used by protocol-analysis blocks before full parsing."""
    return payload.startswith(_METHODS) or payload.startswith(b"HTTP/1.")


def parse_http(payload: bytes) -> HttpRequest | HttpResponse | None:
    """Parse ``payload`` as an HTTP/1.x message, or return None.

    Malformed messages return None rather than raising: classification
    blocks must never crash on hostile traffic.
    """
    if not looks_like_http(payload):
        return None
    head, sep, body = payload.partition(b"\r\n\r\n")
    if not sep:
        head, sep, body = payload.partition(b"\n\n")
        if not sep:
            # Header section not terminated; treat whole payload as headers
            # if it at least contains a start line.
            head, body = payload, b""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes anything
        return None
    lines = text.replace("\r\n", "\n").split("\n")
    start = lines[0].strip()
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        name, colon, value = line.partition(":")
        if not colon:
            return None
        headers[name.strip()] = value.strip()

    parts = start.split(" ", 2)
    if start.startswith("HTTP/1."):
        if len(parts) < 2:
            return None
        try:
            status = int(parts[1])
        except ValueError:
            return None
        reason = parts[2] if len(parts) > 2 else ""
        return HttpResponse(
            version=parts[0], status=status, reason=reason,
            headers=headers, body=body,
        )
    if len(parts) != 3:
        return None
    method, uri, version = parts
    if not version.startswith("HTTP/"):
        return None
    return HttpRequest(
        method=method, uri=uri, version=version, headers=headers, body=body,
    )


def serialize_http(message: HttpRequest | HttpResponse) -> bytes:
    """Serialize a parsed HTTP message back to bytes."""
    lines = [message.start_line()]
    lines.extend(f"{name}: {value}" for name, value in message.headers.items())
    head = "\r\n".join(lines).encode("latin-1")
    return head + b"\r\n\r\n" + message.body
