"""IPv4 header parsing, serialization and helpers."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum


class IpProto:
    """Well-known IP protocol numbers."""

    ICMP = 1
    TCP = 6
    UDP = 17


def ip_to_int(text: str) -> int:
    """Convert dotted-quad ``text`` to a host-order 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_cidr(text: str) -> tuple[int, int]:
    """Parse ``a.b.c.d/len`` into ``(network, mask)`` host-order integers.

    A bare address is treated as a /32.
    """
    if "/" in text:
        addr_text, plen_text = text.split("/", 1)
        plen = int(plen_text)
    else:
        addr_text, plen = text, 32
    if not 0 <= plen <= 32:
        raise ValueError(f"invalid prefix length in {text!r}")
    mask = 0 if plen == 0 else (0xFFFFFFFF << (32 - plen)) & 0xFFFFFFFF
    return ip_to_int(addr_text) & mask, mask


@dataclass(slots=True)
class Ipv4Header:
    """An IPv4 header (without a full options codec; options kept as bytes)."""

    src: int
    dst: int
    proto: int
    total_length: int = 0
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    ecn: int = 0
    flags: int = 0
    frag_offset: int = 0
    checksum: int = 0
    options: bytes = b""

    MIN_HEADER_LEN = 20

    FLAG_DF = 0b010
    FLAG_MF = 0b001

    @property
    def header_len(self) -> int:
        return self.MIN_HEADER_LEN + len(self.options)

    @property
    def ihl(self) -> int:
        return self.header_len // 4

    @property
    def dont_fragment(self) -> bool:
        return bool(self.flags & self.FLAG_DF)

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & self.FLAG_MF)

    @classmethod
    def parse(cls, data: bytes | memoryview, offset: int = 0) -> "Ipv4Header":
        buf = bytes(data)
        if len(buf) - offset < cls.MIN_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (ver_ihl, tos, total_length, identification, flags_frag, ttl, proto,
         checksum, src, dst) = struct.unpack_from("!BBHHHBBHII", buf, offset)
        version = ver_ihl >> 4
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        ihl = ver_ihl & 0x0F
        if ihl < 5:
            raise ValueError(f"invalid IHL: {ihl}")
        header_len = ihl * 4
        if len(buf) - offset < header_len:
            raise ValueError("truncated IPv4 options")
        options = buf[offset + cls.MIN_HEADER_LEN : offset + header_len]
        return cls(
            src=src,
            dst=dst,
            proto=proto,
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            flags=(flags_frag >> 13) & 0x7,
            frag_offset=flags_frag & 0x1FFF,
            checksum=checksum,
            options=options,
        )

    def serialize(self, payload_len: int | None = None) -> bytes:
        """Serialize the header, recomputing total length and checksum.

        If ``payload_len`` is given, ``total_length`` is set to
        ``header_len + payload_len``; otherwise the stored value is kept.
        """
        if len(self.options) % 4:
            raise ValueError("IPv4 options must be padded to 32-bit words")
        if payload_len is not None:
            self.total_length = self.header_len + payload_len
        tos = (self.dscp << 2) | self.ecn
        flags_frag = ((self.flags & 0x7) << 13) | (self.frag_offset & 0x1FFF)
        header = struct.pack(
            "!BBHHHBBHII",
            (4 << 4) | self.ihl,
            tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src,
            self.dst,
        ) + self.options
        self.checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", self.checksum) + header[12:]

    @property
    def src_text(self) -> str:
        return int_to_ip(self.src)

    @property
    def dst_text(self) -> str:
        return int_to_ip(self.dst)
