"""TCP header parsing and serialization."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum, pseudo_header_sum
from repro.net.ip import IpProto


class TcpFlags:
    """TCP flag bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80

    _NAMES = {
        FIN: "FIN", SYN: "SYN", RST: "RST", PSH: "PSH",
        ACK: "ACK", URG: "URG", ECE: "ECE", CWR: "CWR",
    }

    @classmethod
    def to_text(cls, flags: int) -> str:
        """Render a flags byte like ``SYN|ACK``."""
        names = [name for bit, name in cls._NAMES.items() if flags & bit]
        return "|".join(names) if names else "-"


@dataclass(slots=True)
class TcpHeader:
    """A TCP header; options carried as raw bytes."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    checksum: int = 0
    urgent: int = 0
    options: bytes = b""

    MIN_HEADER_LEN = 20

    @property
    def header_len(self) -> int:
        return self.MIN_HEADER_LEN + len(self.options)

    @property
    def data_offset(self) -> int:
        return self.header_len // 4

    def has_flag(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @classmethod
    def parse(cls, data: bytes | memoryview, offset: int = 0) -> "TcpHeader":
        buf = bytes(data)
        if len(buf) - offset < cls.MIN_HEADER_LEN:
            raise ValueError("truncated TCP header")
        (src_port, dst_port, seq, ack, off_flags, window, checksum,
         urgent) = struct.unpack_from("!HHIIHHHH", buf, offset)
        data_offset = (off_flags >> 12) & 0xF
        if data_offset < 5:
            raise ValueError(f"invalid TCP data offset: {data_offset}")
        header_len = data_offset * 4
        if len(buf) - offset < header_len:
            raise ValueError("truncated TCP options")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=off_flags & 0x1FF,
            window=window,
            checksum=checksum,
            urgent=urgent,
            options=buf[offset + cls.MIN_HEADER_LEN : offset + header_len],
        )

    def serialize(
        self,
        payload: bytes = b"",
        src_ip: int | None = None,
        dst_ip: int | None = None,
    ) -> bytes:
        """Serialize the header followed by ``payload``.

        When ``src_ip``/``dst_ip`` are given, the checksum is computed over
        the IPv4 pseudo-header, header and payload; otherwise the stored
        checksum value is written verbatim.
        """
        if len(self.options) % 4:
            raise ValueError("TCP options must be padded to 32-bit words")
        off_flags = (self.data_offset << 12) | (self.flags & 0x1FF)
        header = struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            off_flags,
            self.window,
            0,
            self.urgent,
        ) + self.options
        if src_ip is not None and dst_ip is not None:
            total_len = len(header) + len(payload)
            initial = pseudo_header_sum(src_ip, dst_ip, IpProto.TCP, total_len)
            self.checksum = internet_checksum(header + payload, initial)
        segment = header[:16] + struct.pack("!H", self.checksum) + header[18:]
        return segment + payload
