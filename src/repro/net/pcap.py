"""Classic libpcap file format reader/writer.

Backs the FromDump/ToDump terminals and lets the traffic generator
persist reproducible traces to disk — the equivalent of the paper's
"packet trace captured from a campus wireless network" as an artifact.

Implements the classic (non-ng) format: a 24-byte global header followed
by 16-byte per-record headers. Both byte orders are read; writing uses
the host-independent big-endian magic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator

from repro.net.packet import Packet

MAGIC_BE = 0xA1B2C3D4
MAGIC_LE = 0xD4C3B2A1

#: Link type for Ethernet frames.
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = "IHHiIII"  # magic, major, minor, tz, sigfigs, snaplen, network
_RECORD_HEADER = "IIII"     # ts_sec, ts_usec, incl_len, orig_len


class PcapError(ValueError):
    """Malformed pcap data."""


@dataclass(frozen=True)
class PcapRecord:
    """One captured frame."""

    timestamp: float
    data: bytes
    original_length: int

    @property
    def truncated(self) -> bool:
        return len(self.data) < self.original_length


class PcapWriter:
    """Streams packets into a classic pcap file."""

    def __init__(self, stream: BinaryIO, snaplen: int = 65535,
                 linktype: int = LINKTYPE_ETHERNET) -> None:
        self._stream = stream
        self.snaplen = snaplen
        self.packets_written = 0
        stream.write(struct.pack(
            ">" + _GLOBAL_HEADER, MAGIC_BE, 2, 4, 0, 0, snaplen, linktype,
        ))

    def write(self, packet: Packet | bytes, timestamp: float | None = None) -> None:
        if isinstance(packet, Packet):
            packet.rebuild()
            data = packet.data
            when = timestamp if timestamp is not None else packet.timestamp
        else:
            data = bytes(packet)
            when = timestamp or 0.0
        captured = data[: self.snaplen]
        seconds = int(when)
        microseconds = int(round((when - seconds) * 1_000_000))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        self._stream.write(struct.pack(
            ">" + _RECORD_HEADER, seconds, microseconds, len(captured), len(data),
        ))
        self._stream.write(captured)
        self.packets_written += 1


class PcapReader:
    """Iterates records of a classic pcap file (either byte order)."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        header = stream.read(struct.calcsize(">" + _GLOBAL_HEADER))
        if len(header) < struct.calcsize(">" + _GLOBAL_HEADER):
            raise PcapError("truncated pcap global header")
        (magic,) = struct.unpack_from(">I", header)
        if magic == MAGIC_BE:
            self._order = ">"
        elif magic == MAGIC_LE:
            self._order = "<"
        else:
            raise PcapError(f"bad pcap magic: {magic:#x}")
        (_magic, self.version_major, self.version_minor, _tz, _sig,
         self.snaplen, self.linktype) = struct.unpack(
            self._order + _GLOBAL_HEADER, header
        )

    def __iter__(self) -> Iterator[PcapRecord]:
        record_size = struct.calcsize(self._order + _RECORD_HEADER)
        while True:
            header = self._stream.read(record_size)
            if not header:
                return
            if len(header) < record_size:
                raise PcapError("truncated pcap record header")
            seconds, microseconds, incl_len, orig_len = struct.unpack(
                self._order + _RECORD_HEADER, header
            )
            data = self._stream.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated pcap record body")
            yield PcapRecord(
                timestamp=seconds + microseconds / 1_000_000,
                data=data,
                original_length=orig_len,
            )


def write_pcap(path: str, packets: Iterable[Packet]) -> int:
    """Write ``packets`` to ``path``; returns the record count."""
    with open(path, "wb") as stream:
        writer = PcapWriter(stream)
        for packet in packets:
            writer.write(packet)
        return writer.packets_written


def read_pcap(path: str) -> list[Packet]:
    """Load ``path`` into Packet objects (timestamps preserved)."""
    with open(path, "rb") as stream:
        return [
            Packet(data=record.data, timestamp=record.timestamp)
            for record in PcapReader(stream)
        ]
