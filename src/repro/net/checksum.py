"""Internet checksum (RFC 1071) helpers used by the IPv4/TCP/UDP codecs."""

from __future__ import annotations

import struct


def internet_checksum(data: bytes | bytearray | memoryview, initial: int = 0) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    ``initial`` allows chaining partial sums (e.g. a pseudo-header sum
    followed by the segment body). The returned value is the final,
    complemented checksum ready to be written into a header field.
    """
    total = initial
    buf = bytes(data)
    if len(buf) % 2:
        buf += b"\x00"
    for (word,) in struct.iter_unpack("!H", buf):
        total += word
    # Fold carries until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def ones_complement_sum(data: bytes | bytearray | memoryview, initial: int = 0) -> int:
    """Return the *uncomplemented* running one's-complement sum of ``data``.

    Useful for building pseudo-header sums that are then passed as the
    ``initial`` argument of :func:`internet_checksum`.
    """
    total = initial
    buf = bytes(data)
    if len(buf) % 2:
        buf += b"\x00"
    for (word,) in struct.iter_unpack("!H", buf):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def pseudo_header_sum(src_ip: int, dst_ip: int, proto: int, length: int) -> int:
    """One's-complement sum of the IPv4 pseudo-header for TCP/UDP checksums."""
    data = struct.pack("!IIBBH", src_ip, dst_ip, 0, proto, length)
    return ones_complement_sum(data)


def verify_checksum(data: bytes | bytearray | memoryview, initial: int = 0) -> bool:
    """Return True iff ``data`` (which includes its checksum field) sums to 0."""
    return internet_checksum(data, initial) == 0
