"""Simulated TCAM header classifier.

Models a ternary CAM: every rule is expanded into parallel (mask, value)
entries over a fixed key layout, and a lookup conceptually compares all
entries at once, returning the highest-priority hit. In software we scan
the entries, but the *modelled* lookup latency is constant — the cost
model (``repro.sim.costmodel``) charges one TCAM cycle per packet
regardless of rule count, which is what makes the hardware-assisted OBI
split of Figures 5-6 worthwhile.

Range fields (L4 ports) are expanded into the minimal set of
prefix-masks covering the range, as real TCAM compilers do; the
``entry_count`` property exposes the resulting table occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify.header import HeaderRuleSet
from repro.core.classify.rules import HeaderRule, PortRange
from repro.net.packet import Packet


def range_to_prefix_masks(lo: int, hi: int, width: int = 16) -> list[tuple[int, int]]:
    """Decompose [lo, hi] into minimal (value, mask) prefix pairs.

    Standard TCAM range expansion: at most ``2*width - 2`` entries.
    """
    if lo > hi:
        raise ValueError("empty range")
    pairs: list[tuple[int, int]] = []
    full = (1 << width) - 1
    while lo <= hi:
        # Largest aligned block starting at lo that fits within [lo, hi].
        size = lo & -lo if lo else 1 << width
        while size > hi - lo + 1:
            size >>= 1
        mask = full & ~(size - 1)
        pairs.append((lo, mask))
        lo += size
    return pairs


@dataclass(frozen=True, slots=True)
class TcamEntry:
    """One ternary entry: key & mask == value means hit."""

    value: int
    mask: int
    port: int
    priority: int


# Key layout: src_ip(32) | dst_ip(32) | src_port(16) | dst_port(16) |
#             proto(8) | vlan(16) | dscp(8) — 128 bits total.
_KEY_WIDTH = 128


def _pack_key(src_ip: int, dst_ip: int, src_port: int, dst_port: int,
              proto: int, vlan: int, dscp: int) -> int:
    key = src_ip
    key = (key << 32) | dst_ip
    key = (key << 16) | src_port
    key = (key << 16) | dst_port
    key = (key << 8) | proto
    key = (key << 16) | vlan
    key = (key << 8) | dscp
    return key


def _exact_field(value: int | None, width: int) -> list[tuple[int, int]]:
    if value is None:
        return [(0, 0)]
    return [(value, (1 << width) - 1)]


def _port_field(port_range: PortRange) -> list[tuple[int, int]]:
    if port_range == PortRange.ANY:
        return [(0, 0)]
    return range_to_prefix_masks(port_range.lo, port_range.hi)


class TcamMatcher:
    """TCAM-style matcher over expanded ternary entries."""

    implementation = "tcam"

    #: Modelled lookup latency in cycles, independent of entry count.
    LOOKUP_CYCLES = 1

    def __init__(self, ruleset: HeaderRuleSet, capacity: int | None = None) -> None:
        self.ruleset = ruleset
        self.entries: list[TcamEntry] = []
        for priority, rule in enumerate(ruleset.rules):
            self._expand(priority, rule)
        if capacity is not None and len(self.entries) > capacity:
            raise ValueError(
                f"ruleset needs {len(self.entries)} TCAM entries, "
                f"capacity is {capacity}"
            )

    @property
    def entry_count(self) -> int:
        return len(self.entries)

    def _expand(self, priority: int, rule: HeaderRule) -> None:
        src_pairs = [(rule.src.value, rule.src.mask)]
        dst_pairs = [(rule.dst.value, rule.dst.mask)]
        sport_pairs = _port_field(rule.src_port)
        dport_pairs = _port_field(rule.dst_port)
        proto_pairs = _exact_field(rule.proto, 8)
        vlan_pairs = _exact_field(rule.vlan, 16)
        dscp_pairs = _exact_field(rule.dscp, 8)
        for src_v, src_m in src_pairs:
            for dst_v, dst_m in dst_pairs:
                for sp_v, sp_m in sport_pairs:
                    for dp_v, dp_m in dport_pairs:
                        for pr_v, pr_m in proto_pairs:
                            for vl_v, vl_m in vlan_pairs:
                                for ds_v, ds_m in dscp_pairs:
                                    self.entries.append(TcamEntry(
                                        value=_pack_key(src_v, dst_v, sp_v, dp_v, pr_v, vl_v, ds_v),
                                        mask=_pack_key(src_m, dst_m, sp_m, dp_m, pr_m, vl_m, ds_m),
                                        port=rule.port,
                                        priority=priority,
                                    ))

    def _key_of(self, packet: Packet) -> int | None:
        ipv4 = packet.ipv4
        if ipv4 is None:
            return None
        l4 = packet.l4
        eth = packet.eth
        vlan_tag = eth.vlan if eth is not None else None
        return _pack_key(
            ipv4.src,
            ipv4.dst,
            l4.src_port if l4 is not None else 0,
            l4.dst_port if l4 is not None else 0,
            ipv4.proto,
            vlan_tag.vid if vlan_tag is not None else 0,
            ipv4.dscp,
        )

    def match(self, packet: Packet) -> int:
        key = self._key_of(packet)
        if key is None:
            # Non-IP: only rules that are full wildcards can match; fall
            # back to exact semantics via the rule objects.
            for rule in self.ruleset.rules:
                if rule.matches(packet):
                    return rule.port
            return self.ruleset.default_port
        best: TcamEntry | None = None
        for entry in self.entries:
            if key & entry.mask == entry.value:
                if best is None or entry.priority < best.priority:
                    best = entry
        return best.port if best is not None else self.ruleset.default_port
