"""HeaderPayloadClassifier: combined header + payload rules.

This is the block IPS-style NFs use (paper Table 1): each rule pairs a
header match (the Snort rule header: proto/addresses/ports) with an
optional payload pattern (content/pcre options). A rule matches when both
parts match; classification is first-match by rule order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.classify.regex import RegexPattern, RegexRuleSet
from repro.core.classify.rules import HeaderRule
from repro.net.packet import Packet


@dataclass(frozen=True)
class HeaderPayloadRule:
    """A combined rule: header constraints plus an optional payload pattern."""

    header: HeaderRule
    pattern: RegexPattern | None = None

    @property
    def port(self) -> int:
        return self.header.port

    def to_dict(self) -> dict[str, Any]:
        data = self.header.to_dict()
        if self.pattern is not None:
            data["payload"] = self.pattern.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HeaderPayloadRule":
        payload = data.get("payload")
        header = HeaderRule.from_dict({k: v for k, v in data.items() if k != "payload"})
        pattern = RegexPattern.from_dict(payload) if payload else None
        return cls(header=header, pattern=pattern)


class HeaderPayloadRuleSet:
    """Ordered combined rules with a shared payload-pattern automaton.

    Matching evaluates payload patterns once (one multi-pattern pass)
    and then walks rules in priority order, so the per-packet cost is
    one DPI scan plus header checks — the cost structure the paper's
    cost accounting assumes for IPS-style blocks.
    """

    def __init__(self, rules: list[HeaderPayloadRule], default_port: int = 0) -> None:
        self.rules = list(rules)
        self.default_port = default_port
        patterns: list[RegexPattern] = []
        self._pattern_index_of_rule: list[int | None] = []
        for rule in self.rules:
            if rule.pattern is None:
                self._pattern_index_of_rule.append(None)
            else:
                self._pattern_index_of_rule.append(len(patterns))
                patterns.append(rule.pattern)
        self._patterns = RegexRuleSet(patterns) if patterns else None

    def __len__(self) -> int:
        return len(self.rules)

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> "HeaderPayloadRuleSet":
        rules = [HeaderPayloadRule.from_dict(item) for item in config.get("rules", ())]
        return cls(rules, default_port=int(config.get("default_port", 0)))

    def to_config(self) -> dict[str, Any]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "default_port": self.default_port,
        }

    def classify(self, packet: Packet) -> int:
        payload = packet.payload
        matched_patterns: set[int] | None = None
        for rule_index, rule in enumerate(self.rules):
            if not rule.header.matches(packet):
                continue
            pattern_index = self._pattern_index_of_rule[rule_index]
            if pattern_index is None:
                return rule.port
            if matched_patterns is None:
                matched_patterns = (
                    self._patterns.match_all(payload)
                    if self._patterns is not None and payload
                    else set()
                )
            if pattern_index in matched_patterns:
                return rule.port
        return self.default_port
