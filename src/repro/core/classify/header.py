"""HeaderClassifier rule sets and the cross-product merge.

:func:`merge_rulesets` implements the paper's ``mergeWith`` logic
(§2.2.1): it "creates a cross-product of rules from both classifiers,
orders them according to their priority, removes duplicate rules caused by
the cross-product and empty rules caused by priority considerations, and
outputs a new classifier that uses the merged rule set."
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.classify.rules import HeaderRule
from repro.net.packet import Packet


class HeaderRuleSet:
    """An ordered (priority-descending) list of :class:`HeaderRule`.

    ``default_port`` is where packets matching no rule are emitted.
    """

    def __init__(self, rules: Sequence[HeaderRule], default_port: int = 0) -> None:
        self.rules = list(rules)
        self.default_port = default_port

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> "HeaderRuleSet":
        """Build from a HeaderClassifier block's config dict."""
        rules = [HeaderRule.from_dict(item) for item in config.get("rules", ())]
        return cls(rules, default_port=int(config.get("default_port", 0)))

    def to_config(self) -> dict[str, Any]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "default_port": self.default_port,
        }

    def classify(self, packet: Packet) -> int:
        """First-match classification; returns the output port."""
        for rule in self.rules:
            if rule.matches(packet):
                return rule.port
        return self.default_port

    def used_ports(self) -> set[int]:
        ports = {rule.port for rule in self.rules}
        ports.add(self.default_port)
        return ports

    def num_ports(self) -> int:
        return max(self.used_ports()) + 1

    #: Above this size, pairwise coverage pruning (O(n^2)) is skipped and
    #: only O(n) exact-duplicate elimination runs. Pruning is purely an
    #: optimization, so the threshold never affects semantics.
    FULL_PRUNE_LIMIT = 2_000

    def prune_shadowed(self) -> "HeaderRuleSet":
        """Drop rules that can never be the first match.

        Two passes (both semantics-preserving):

        1. exact-duplicate elimination — a rule whose match fields equal
           an earlier rule's never fires, whatever its port ("removes
           duplicate rules caused by the cross-product");
        2. for rule sets up to :data:`FULL_PRUNE_LIMIT`, single-rule
           coverage elimination — a rule fully covered by one earlier
           rule never fires ("empty rules caused by priority
           considerations").
        """
        kept: list[HeaderRule] = []
        seen_matches: set[tuple] = set()
        for rule in self.rules:
            fingerprint = (
                rule.src, rule.dst, rule.src_port, rule.dst_port,
                rule.proto, rule.vlan, rule.dscp,
            )
            if fingerprint in seen_matches:
                continue
            seen_matches.add(fingerprint)
            kept.append(rule)
        if len(kept) <= self.FULL_PRUNE_LIMIT:
            covered: list[HeaderRule] = []
            for rule in kept:
                if any(earlier.covers(rule) for earlier in covered):
                    continue
                covered.append(rule)
            kept = covered
        return HeaderRuleSet(kept, self.default_port)

    def prune_default_tail(self) -> "HeaderRuleSet":
        """Drop trailing rules that map to the default port.

        A suffix of rules whose port equals ``default_port`` is redundant:
        any packet reaching them gets the default port either way.
        """
        rules = list(self.rules)
        while rules and rules[-1].port == self.default_port:
            rules.pop()
        return HeaderRuleSet(rules, self.default_port)


class LinearMatcher:
    """Reference matcher: priority-ordered linear scan."""

    #: Name advertised to the controller as an implementation choice.
    implementation = "linear"

    def __init__(self, ruleset: HeaderRuleSet) -> None:
        self.ruleset = ruleset

    def match(self, packet: Packet) -> int:
        return self.ruleset.classify(packet)


def merge_rulesets(
    first: HeaderRuleSet,
    second: HeaderRuleSet,
    port_map: Callable[[int, int], int],
) -> HeaderRuleSet:
    """Cross-product merge of two classifiers applied in sequence.

    A packet classified to port ``a`` by ``first`` and port ``b`` by
    ``second`` must be classified to ``port_map(a, b)`` by the result.

    Priority is lexicographic ``(i, j)`` over the two input priorities,
    which reproduces sequential first-match semantics: the first matching
    rule of ``first`` decides ``a``, then the first matching rule of
    ``second`` decides ``b``.
    """
    # Materialize the implicit catch-all defaults so the cross product
    # covers the full packet space.
    rules_a = list(first.rules) + [HeaderRule(port=first.default_port)]
    rules_b = list(second.rules) + [HeaderRule(port=second.default_port)]

    merged: list[HeaderRule] = []
    for rule_a in rules_a:
        for rule_b in rules_b:
            combined = rule_a.intersect(rule_b, port_map(rule_a.port, rule_b.port))
            if combined is not None:
                merged.append(combined)

    # The final (catch-all x catch-all) pair becomes the new default.
    default_port = port_map(first.default_port, second.default_port)
    result = HeaderRuleSet(merged, default_port)
    result = result.prune_shadowed()
    return result.prune_default_tail()
