"""Header-classification rules: field matches, intersection, coverage.

A :class:`HeaderRule` matches on the classic 5-tuple plus VLAN id and
DSCP. Rules support the two operations the OpenBox classifier merge needs
(paper §2.2.1):

* :meth:`HeaderRule.intersect` — the cross-product step: the rule matched
  by packets that match *both* inputs (None if that set is empty);
* :meth:`HeaderRule.covers` — shadow detection: if an earlier rule covers
  a later one, the later rule can never match and is removed
  ("empty rules caused by priority considerations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.net.ip import int_to_ip, parse_cidr
from repro.net.packet import Packet


@dataclass(frozen=True, slots=True)
class Prefix:
    """An IPv4 prefix match (value/mask). A zero mask matches anything."""

    value: int
    mask: int

    ANY: ClassVar["Prefix"]  # populated below

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        value, mask = parse_cidr(text)
        return cls(value, mask)

    def matches(self, address: int) -> bool:
        return (address & self.mask) == self.value

    def intersect(self, other: "Prefix") -> "Prefix | None":
        """The prefix matched by both, or None if disjoint.

        For prefixes, one must contain the other for the intersection to
        be non-empty; the result is the more specific of the two.
        """
        narrow, wide = (self, other) if self.mask >= other.mask else (other, self)
        return narrow if wide.matches(narrow.value) else None

    def covers(self, other: "Prefix") -> bool:
        return self.mask <= other.mask and self.matches(other.value)

    @property
    def prefix_len(self) -> int:
        return bin(self.mask).count("1")

    def __str__(self) -> str:
        if self.mask == 0:
            return "*"
        return f"{int_to_ip(self.value)}/{self.prefix_len}"


Prefix.ANY = Prefix(0, 0)


@dataclass(frozen=True, slots=True)
class PortRange:
    """An inclusive L4 port range."""

    lo: int
    hi: int

    ANY: ClassVar["PortRange"]  # populated below

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi <= 65535:
            raise ValueError(f"invalid port range: [{self.lo}, {self.hi}]")

    @classmethod
    def exact(cls, port: int) -> "PortRange":
        return cls(port, port)

    def matches(self, port: int) -> bool:
        return self.lo <= port <= self.hi

    def intersect(self, other: "PortRange") -> "PortRange | None":
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return PortRange(lo, hi) if lo <= hi else None

    def covers(self, other: "PortRange") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def __str__(self) -> str:
        if self.lo == 0 and self.hi == 65535:
            return "*"
        if self.lo == self.hi:
            return str(self.lo)
        return f"{self.lo}-{self.hi}"


PortRange.ANY = PortRange(0, 65535)


def _intersect_exact(a: int | None, b: int | None) -> tuple[bool, int | None]:
    """Intersect two optional exact-match fields (None = wildcard).

    Returns ``(non_empty, merged_value)``.
    """
    if a is None:
        return True, b
    if b is None or a == b:
        return True, a
    return False, None


def _covers_exact(a: int | None, b: int | None) -> bool:
    return a is None or a == b


@dataclass(frozen=True, slots=True)
class HeaderRule:
    """One priority-ordered classification rule mapping a match to a port."""

    src: Prefix = Prefix.ANY
    dst: Prefix = Prefix.ANY
    src_port: PortRange = PortRange.ANY
    dst_port: PortRange = PortRange.ANY
    proto: int | None = None
    vlan: int | None = None
    dscp: int | None = None
    port: int = 0

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def matches(self, packet: Packet) -> bool:
        ipv4 = packet.ipv4
        if ipv4 is None:
            return self.is_catch_all
        if not self.src.matches(ipv4.src) or not self.dst.matches(ipv4.dst):
            return False
        if self.proto is not None and ipv4.proto != self.proto:
            return False
        if self.dscp is not None and ipv4.dscp != self.dscp:
            return False
        if self.vlan is not None:
            eth = packet.eth
            tag = eth.vlan if eth is not None else None
            if tag is None or tag.vid != self.vlan:
                return False
        needs_ports = (
            self.src_port != PortRange.ANY or self.dst_port != PortRange.ANY
        )
        if needs_ports:
            l4 = packet.l4
            if l4 is None:
                return False
            if not self.src_port.matches(l4.src_port):
                return False
            if not self.dst_port.matches(l4.dst_port):
                return False
        return True

    @property
    def is_catch_all(self) -> bool:
        return (
            self.src == Prefix.ANY
            and self.dst == Prefix.ANY
            and self.src_port == PortRange.ANY
            and self.dst_port == PortRange.ANY
            and self.proto is None
            and self.vlan is None
            and self.dscp is None
        )

    # ------------------------------------------------------------------
    # Merge-algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "HeaderRule", port: int) -> "HeaderRule | None":
        """Field-wise intersection; ``port`` becomes the merged output port."""
        src = self.src.intersect(other.src)
        if src is None:
            return None
        dst = self.dst.intersect(other.dst)
        if dst is None:
            return None
        src_port = self.src_port.intersect(other.src_port)
        if src_port is None:
            return None
        dst_port = self.dst_port.intersect(other.dst_port)
        if dst_port is None:
            return None
        ok, proto = _intersect_exact(self.proto, other.proto)
        if not ok:
            return None
        ok, vlan = _intersect_exact(self.vlan, other.vlan)
        if not ok:
            return None
        ok, dscp = _intersect_exact(self.dscp, other.dscp)
        if not ok:
            return None
        return HeaderRule(
            src=src, dst=dst, src_port=src_port, dst_port=dst_port,
            proto=proto, vlan=vlan, dscp=dscp, port=port,
        )

    def covers(self, other: "HeaderRule") -> bool:
        """True if every packet matching ``other`` also matches ``self``."""
        return (
            self.src.covers(other.src)
            and self.dst.covers(other.dst)
            and self.src_port.covers(other.src_port)
            and self.dst_port.covers(other.dst_port)
            and _covers_exact(self.proto, other.proto)
            and _covers_exact(self.vlan, other.vlan)
            and _covers_exact(self.dscp, other.dscp)
        )

    def same_match(self, other: "HeaderRule") -> bool:
        """True if the two rules match exactly the same packet set."""
        return self.covers(other) and other.covers(self)

    # ------------------------------------------------------------------
    # Serialization (the protocol wire format for rule configs)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"port": self.port}
        if self.src != Prefix.ANY:
            data["src_ip"] = str(self.src)
        if self.dst != Prefix.ANY:
            data["dst_ip"] = str(self.dst)
        if self.src_port != PortRange.ANY:
            data["src_port"] = [self.src_port.lo, self.src_port.hi]
        if self.dst_port != PortRange.ANY:
            data["dst_port"] = [self.dst_port.lo, self.dst_port.hi]
        for name in ("proto", "vlan", "dscp"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HeaderRule":
        def port_range(value: Any) -> PortRange:
            if value is None:
                return PortRange.ANY
            if isinstance(value, int):
                return PortRange.exact(value)
            lo, hi = value
            return PortRange(int(lo), int(hi))

        return cls(
            src=Prefix.parse(data["src_ip"]) if "src_ip" in data else Prefix.ANY,
            dst=Prefix.parse(data["dst_ip"]) if "dst_ip" in data else Prefix.ANY,
            src_port=port_range(data.get("src_port")),
            dst_port=port_range(data.get("dst_port")),
            proto=data.get("proto"),
            vlan=data.get("vlan"),
            dscp=data.get("dscp"),
            port=int(data.get("port", 0)),
        )

    def __str__(self) -> str:
        proto = "*" if self.proto is None else str(self.proto)
        return (
            f"[{proto} {self.src}:{self.src_port} -> {self.dst}:{self.dst_port}"
            f" => port {self.port}]"
        )
