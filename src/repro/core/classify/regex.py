"""Payload pattern matching for RegexClassifier blocks.

Snort-style rule sets are dominated by literal ``content`` patterns with
the occasional true regular expression (``pcre``). We therefore match the
way production IPS engines do:

* all literal patterns are compiled into a single :class:`AhoCorasick`
  automaton (built from scratch: goto/failure/output functions) and
  matched in one pass over the payload;
* true regexes are compiled with :mod:`re` and evaluated individually.

The classifier reports the *highest-priority* (lowest index) matching
pattern, which gives deterministic first-match semantics like the header
classifiers.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class RegexPattern:
    """A single payload pattern: literal bytes or a regular expression."""

    pattern: str
    port: int = 1
    is_regex: bool = False
    case_sensitive: bool = True

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"pattern": self.pattern, "port": self.port}
        if self.is_regex:
            data["is_regex"] = True
        if not self.case_sensitive:
            data["case_sensitive"] = False
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RegexPattern":
        return cls(
            pattern=data["pattern"],
            port=int(data.get("port", 1)),
            is_regex=bool(data.get("is_regex", False)),
            case_sensitive=bool(data.get("case_sensitive", True)),
        )


class AhoCorasick:
    """Multi-pattern literal matcher (Aho-Corasick automaton).

    Patterns are byte strings; matching runs in O(payload length +
    matches). ``find_first`` returns the lowest pattern id whose pattern
    occurs in the haystack, which is what first-match classification
    needs; ``find_all`` returns every (pattern id, end offset) occurrence.
    """

    def __init__(self, patterns: Iterable[bytes]) -> None:
        self._patterns = [bytes(pattern) for pattern in patterns]
        if any(not pattern for pattern in self._patterns):
            raise ValueError("empty pattern not allowed")
        # goto function: list of dicts byte -> state
        self._goto: list[dict[int, int]] = [{}]
        # output: pattern ids terminating at each state
        self._output: list[list[int]] = [[]]
        self._fail: list[int] = [0]
        for pattern_id, pattern in enumerate(self._patterns):
            self._add(pattern_id, pattern)
        self._build_failure_links()

    def _add(self, pattern_id: int, pattern: bytes) -> None:
        state = 0
        for byte in pattern:
            nxt = self._goto[state].get(byte)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._output.append([])
                self._fail.append(0)
                self._goto[state][byte] = nxt
            state = nxt
        self._output[state].append(pattern_id)

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, nxt in self._goto[state].items():
                queue.append(nxt)
                fallback = self._fail[state]
                while fallback and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] = self._output[nxt] + self._output[self._fail[nxt]]

    @property
    def num_states(self) -> int:
        return len(self._goto)

    def _step(self, state: int, byte: int) -> int:
        while state and byte not in self._goto[state]:
            state = self._fail[state]
        return self._goto[state].get(byte, 0)

    def find_all(self, haystack: bytes) -> list[tuple[int, int]]:
        """All matches as (pattern id, end offset) pairs."""
        matches: list[tuple[int, int]] = []
        state = 0
        for offset, byte in enumerate(haystack):
            state = self._step(state, byte)
            for pattern_id in self._output[state]:
                matches.append((pattern_id, offset + 1))
        return matches

    def find_first(self, haystack: bytes) -> int | None:
        """Lowest pattern id occurring in ``haystack``, or None.

        Scans the whole haystack (a later position may hold a
        lower-id pattern), tracking the minimum id seen.
        """
        best: int | None = None
        state = 0
        for byte in haystack:
            state = self._step(state, byte)
            for pattern_id in self._output[state]:
                if best is None or pattern_id < best:
                    if pattern_id == 0:
                        return 0
                    best = pattern_id
        return best

    def contains_any(self, haystack: bytes) -> bool:
        state = 0
        for byte in haystack:
            state = self._step(state, byte)
            if self._output[state]:
                return True
        return False


class RegexRuleSet:
    """A compiled RegexClassifier configuration.

    Splits patterns into a literal set (one Aho-Corasick pass) and a
    regex list (individual :mod:`re` evaluation), then reports the
    highest-priority match across both.
    """

    def __init__(self, patterns: list[RegexPattern], default_port: int = 0) -> None:
        self.patterns = list(patterns)
        self.default_port = default_port
        cs_literals: list[bytes] = []
        self._cs_ids: list[int] = []
        ci_literals: list[bytes] = []
        self._ci_ids: list[int] = []
        self._regexes: list[tuple[int, re.Pattern[bytes]]] = []
        for index, spec in enumerate(self.patterns):
            if spec.is_regex:
                flags = 0 if spec.case_sensitive else re.IGNORECASE
                self._regexes.append(
                    (index, re.compile(spec.pattern.encode("latin-1"), flags))
                )
            elif spec.case_sensitive:
                cs_literals.append(spec.pattern.encode("latin-1"))
                self._cs_ids.append(index)
            else:
                ci_literals.append(spec.pattern.encode("latin-1").lower())
                self._ci_ids.append(index)
        self._cs_automaton = AhoCorasick(cs_literals) if cs_literals else None
        self._ci_automaton = AhoCorasick(ci_literals) if ci_literals else None

    def __len__(self) -> int:
        return len(self.patterns)

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> "RegexRuleSet":
        patterns = [RegexPattern.from_dict(item) for item in config.get("patterns", ())]
        return cls(patterns, default_port=int(config.get("default_port", 0)))

    def to_config(self) -> dict[str, Any]:
        return {
            "patterns": [spec.to_dict() for spec in self.patterns],
            "default_port": self.default_port,
        }

    def first_match_index(self, payload: bytes) -> int | None:
        """Index of the highest-priority matching pattern, or None.

        The per-automaton id lists are built in pattern-index order, so
        the lowest automaton id maps to the lowest original index within
        each automaton; the overall winner is the minimum across sources.
        """
        best: int | None = None
        if self._cs_automaton is not None:
            hit = self._cs_automaton.find_first(payload)
            if hit is not None:
                best = self._cs_ids[hit]
        if self._ci_automaton is not None:
            hit = self._ci_automaton.find_first(payload.lower())
            if hit is not None:
                index = self._ci_ids[hit]
                if best is None or index < best:
                    best = index
        for index, compiled in self._regexes:
            if best is not None and index > best:
                continue
            if compiled.search(payload):
                if best is None or index < best:
                    best = index
        return best

    def match_all(self, payload: bytes) -> set[int]:
        """Indexes of *every* matching pattern (single multi-pattern pass)."""
        matched: set[int] = set()
        if self._cs_automaton is not None:
            for hit, _offset in self._cs_automaton.find_all(payload):
                matched.add(self._cs_ids[hit])
        if self._ci_automaton is not None:
            for hit, _offset in self._ci_automaton.find_all(payload.lower()):
                matched.add(self._ci_ids[hit])
        for index, compiled in self._regexes:
            if compiled.search(payload):
                matched.add(index)
        return matched

    def classify(self, payload: bytes) -> int:
        """Output port for ``payload`` (default port when nothing matches)."""
        index = self.first_match_index(payload)
        if index is None:
            return self.default_port
        return self.patterns[index].port

    def matching_pattern(self, payload: bytes) -> RegexPattern | None:
        index = self.first_match_index(payload)
        return self.patterns[index] if index is not None else None
