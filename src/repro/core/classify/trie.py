"""Software header classifier: destination-prefix trie front end.

This is the "trie in software" implementation the paper contrasts with a
hardware TCAM (§2.1). The trie indexes rules by destination prefix; a
lookup walks the destination address bit-by-bit collecting all candidate
rules whose destination prefix covers the packet, then refines by
priority-ordered scan over that (usually small) candidate list.

First-match semantics are identical to :class:`LinearMatcher`; only the
cost profile differs.
"""

from __future__ import annotations

from repro.core.classify.header import HeaderRuleSet
from repro.core.classify.rules import HeaderRule
from repro.net.packet import Packet


class _TrieNode:
    __slots__ = ("children", "rules")

    def __init__(self) -> None:
        self.children: list["_TrieNode | None"] = [None, None]
        # (priority, rule) pairs anchored at exactly this prefix.
        self.rules: list[tuple[int, HeaderRule]] = []


class TrieMatcher:
    """Binary trie on the destination prefix with per-node rule lists."""

    implementation = "trie"

    def __init__(self, ruleset: HeaderRuleSet) -> None:
        self.ruleset = ruleset
        self._root = _TrieNode()
        for priority, rule in enumerate(ruleset.rules):
            self._insert(priority, rule)

    def _insert(self, priority: int, rule: HeaderRule) -> None:
        node = self._root
        prefix_len = rule.dst.prefix_len
        value = rule.dst.value
        for depth in range(prefix_len):
            bit = (value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        node.rules.append((priority, rule))

    def match(self, packet: Packet) -> int:
        ipv4 = packet.ipv4
        if ipv4 is None:
            # Non-IP packets can only hit catch-all rules, which live at
            # the root (prefix length 0).
            candidates = list(self._root.rules)
        else:
            candidates = list(self._root.rules)
            node = self._root
            address = ipv4.dst
            for depth in range(32):
                bit = (address >> (31 - depth)) & 1
                node = node.children[bit]
                if node is None:
                    break
                candidates.extend(node.rules)
        candidates.sort(key=lambda item: item[0])
        for _priority, rule in candidates:
            if rule.matches(packet):
                return rule.port
        return self.ruleset.default_port
