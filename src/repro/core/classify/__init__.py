"""Packet classification engines for OpenBox classifier blocks.

Three header-classification engines implement the same first-match
semantics with different cost profiles (paper §2.1: an abstract block may
have several implementations, e.g. a software trie or a hardware TCAM):

* :class:`~repro.core.classify.header.LinearMatcher` — reference
  implementation, linear scan by priority;
* :class:`~repro.core.classify.trie.TrieMatcher` — destination-prefix trie
  front end with priority-ordered refinement;
* :class:`~repro.core.classify.tcam.TcamMatcher` — simulated TCAM
  (parallel mask/value entries with constant modelled lookup latency).

Payload classification uses :class:`~repro.core.classify.regex.AhoCorasick`
for literal pattern sets, with compiled-``re`` fallback for true regexes.
"""

from repro.core.classify.header import (
    HeaderRuleSet,
    LinearMatcher,
    merge_rulesets,
)
from repro.core.classify.regex import AhoCorasick, RegexPattern, RegexRuleSet
from repro.core.classify.rules import HeaderRule, PortRange, Prefix
from repro.core.classify.tcam import TcamMatcher
from repro.core.classify.trie import TrieMatcher

__all__ = [
    "AhoCorasick",
    "HeaderRule",
    "HeaderRuleSet",
    "LinearMatcher",
    "PortRange",
    "Prefix",
    "RegexPattern",
    "RegexRuleSet",
    "TcamMatcher",
    "TrieMatcher",
    "merge_rulesets",
]
