"""ProcessingGraph: the DAG-of-blocks abstraction (paper §2.1).

A processing graph is a directed acyclic graph of processing blocks.
Each block has a single input port (connectors only name their *source*
port) and zero or more output ports; each output port connects to the
input of another block via a :class:`Connector`.
"""

from __future__ import annotations

import hashlib
import json
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.core.blocks import Block, BlockClass


def canonical_graph_digest(graph_dict: dict[str, Any]) -> str:
    """Content digest of a serialized processing graph.

    Canonical form is JSON with sorted keys and no whitespace, so the
    controller (digesting what it sends) and an OBI (digesting what it
    received) agree byte-for-byte whenever the graphs are identical —
    the convergence test of the anti-entropy loop (PROTOCOL.md §10).
    List order (blocks, connectors) is semantic and preserved.

    Block *names* are canonicalized positionally (``b0``, ``b1``, …,
    with connector endpoints remapped) before hashing: merged graphs
    name their blocks with an aggregator-level gensym counter, so two
    controllers computing the identical deployment — e.g. one recovered
    from a journal reproducing its predecessor's intent — emit equal
    structures under different labels. The digest must call those
    *converged*, or anti-entropy would re-push (and the data plane
    would churn) after every controller restart.
    """
    rename: dict[str, str] = {}
    blocks = []
    for index, block in enumerate(graph_dict.get("blocks", [])):
        canonical = dict(block)
        name = canonical.get("name")
        if isinstance(name, str):
            rename[name] = canonical["name"] = f"b{index}"
        blocks.append(canonical)
    connectors = []
    for connector in graph_dict.get("connectors", []):
        canonical = dict(connector)
        for endpoint in ("src", "dst"):
            value = canonical.get(endpoint)
            if isinstance(value, str):
                canonical[endpoint] = rename.get(value, value)
        connectors.append(canonical)
    canonical_dict = dict(graph_dict)
    canonical_dict["blocks"] = blocks
    canonical_dict["connectors"] = connectors
    payload = json.dumps(
        canonical_dict, sort_keys=True, separators=(",", ":"), default=str
    )
    return "sha256:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class Connector:
    """A directed edge from (src block, src output port) to dst block."""

    src: str
    src_port: int
    dst: str

    def to_dict(self) -> dict[str, Any]:
        return {"src": self.src, "src_port": self.src_port, "dst": self.dst}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Connector":
        return cls(src=data["src"], src_port=int(data["src_port"]), dst=data["dst"])


class GraphValidationError(ValueError):
    """Raised when a processing graph violates a structural invariant."""


class ProcessingGraph:
    """A named DAG of processing blocks connected by connectors."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.blocks: dict[str, Block] = {}
        self._out: dict[str, list[Connector]] = defaultdict(list)
        self._in: dict[str, list[Connector]] = defaultdict(list)

    @property
    def connectors(self) -> list[Connector]:
        """All connectors, grouped by source block in insertion order."""
        return [
            connector for connectors in self._out.values()
            for connector in connectors
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_block(self, block: Block) -> Block:
        if block.name in self.blocks:
            raise GraphValidationError(f"duplicate block name: {block.name!r}")
        self.blocks[block.name] = block
        return block

    def add_blocks(self, blocks: Iterable[Block]) -> None:
        for block in blocks:
            self.add_block(block)

    def connect(self, src: Block | str, dst: Block | str, src_port: int = 0) -> Connector:
        """Connect output ``src_port`` of ``src`` to the input of ``dst``."""
        src_name = src.name if isinstance(src, Block) else src
        dst_name = dst.name if isinstance(dst, Block) else dst
        for name in (src_name, dst_name):
            if name not in self.blocks:
                raise GraphValidationError(f"unknown block in connector: {name!r}")
        connector = Connector(src=src_name, src_port=src_port, dst=dst_name)
        self._add_connector(connector)
        return connector

    def _add_connector(self, connector: Connector) -> None:
        """Index a pre-built connector (endpoints need not be validated)."""
        self._out[connector.src].append(connector)
        self._in[connector.dst].append(connector)

    def chain(self, *blocks: Block) -> None:
        """Add (if needed) and connect ``blocks`` in a straight line on port 0."""
        for block in blocks:
            if block.name not in self.blocks:
                self.add_block(block)
        for src, dst in zip(blocks, blocks[1:]):
            self.connect(src, dst)

    def remove_block(self, name: str) -> None:
        """Remove a block and all connectors touching it (O(degree))."""
        if name not in self.blocks:
            raise GraphValidationError(f"unknown block: {name!r}")
        del self.blocks[name]
        for connector in self._out.pop(name, []):
            if connector.dst != name:
                self._in[connector.dst].remove(connector)
        for connector in self._in.pop(name, []):
            if connector.src != name:
                self._out[connector.src].remove(connector)

    def remove_connector(self, connector: Connector) -> None:
        self._out[connector.src].remove(connector)
        self._in[connector.dst].remove(connector)

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def out_connectors(self, name: str) -> list[Connector]:
        return list(self._out.get(name, ()))

    def in_connectors(self, name: str) -> list[Connector]:
        return list(self._in.get(name, ()))

    def successors(self, name: str) -> list[str]:
        return [connector.dst for connector in self._out.get(name, ())]

    def predecessors(self, name: str) -> list[str]:
        return [connector.src for connector in self._in.get(name, ())]

    def successor_on_port(self, name: str, port: int) -> str | None:
        """The (unique) successor wired to output ``port``, or None."""
        for connector in self._out.get(name, ()):
            if connector.src_port == port:
                return connector.dst
        return None

    def roots(self) -> list[str]:
        """Blocks with no incoming connector (entry points), in insertion order."""
        return [name for name in self.blocks if not self._in.get(name)]

    def leaves(self) -> list[str]:
        """Blocks with no outgoing connector, in insertion order."""
        return [name for name in self.blocks if not self._out.get(name)]

    def entry_point(self) -> str:
        """The single entry block; raises if the graph has 0 or >1 roots."""
        roots = self.roots()
        if len(roots) != 1:
            raise GraphValidationError(
                f"graph {self.name!r} must have exactly one entry, found {roots}"
            )
        return roots[0]

    def topological_order(self) -> list[str]:
        """Topological order of block names; raises on cycles."""
        in_degree = {name: len(self._in.get(name, ())) for name in self.blocks}
        ready = deque(name for name, degree in in_degree.items() if degree == 0)
        order: list[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            for connector in self._out.get(name, ()):
                in_degree[connector.dst] -= 1
                if in_degree[connector.dst] == 0:
                    ready.append(connector.dst)
        if len(order) != len(self.blocks):
            raise GraphValidationError(f"graph {self.name!r} contains a cycle")
        return order

    def iter_paths(self, start: str | None = None) -> Iterator[list[str]]:
        """Yield every root-to-leaf path as a list of block names.

        The number of paths can be exponential in graph depth; callers that
        only need path statistics should prefer :meth:`diameter`.
        """
        start_names = [start] if start is not None else self.roots()
        for root in start_names:
            stack: list[tuple[str, list[str]]] = [(root, [root])]
            while stack:
                name, path = stack.pop()
                outs = self._out.get(name, ())
                if not outs:
                    yield path
                    continue
                for connector in outs:
                    stack.append((connector.dst, path + [connector.dst]))

    def diameter(self) -> int:
        """Longest root-to-leaf path length in *blocks*.

        The paper uses this as the latency-relevant size measure: path
        length, not block count, determines per-packet delay (§2.2.1).
        """
        if not self.blocks:
            return 0
        longest: dict[str, int] = {}
        for name in reversed(self.topological_order()):
            outs = self._out.get(name, ())
            longest[name] = 1 + max(
                (longest[connector.dst] for connector in outs), default=0
            )
        roots = self.roots()
        return max(longest[root] for root in roots) if roots else 0

    def num_connectors(self) -> int:
        return len(self.connectors)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants of a deployable graph.

        * acyclic;
        * every connector's source port exists on the source block;
        * at most one connector per (block, port) pair;
        * terminals with zero output ports have no outgoing connectors.
        """
        self.topological_order()
        seen_ports: set[tuple[str, int]] = set()
        for connector in self.connectors:
            block = self.blocks[connector.src]
            ports = block.num_output_ports
            if ports == 0:
                raise GraphValidationError(
                    f"block {block.name} ({block.type}) is a sink but has an "
                    f"outgoing connector"
                )
            if not 0 <= connector.src_port < ports:
                raise GraphValidationError(
                    f"connector from {block.name} uses port {connector.src_port}, "
                    f"but block has {ports} ports"
                )
            key = (connector.src, connector.src_port)
            if key in seen_ports:
                raise GraphValidationError(
                    f"multiple connectors from {block.name} port {connector.src_port}"
                )
            seen_ports.add(key)

    def is_tree(self) -> bool:
        """True iff every block has at most one incoming connector."""
        return all(len(self._in.get(name, ())) <= 1 for name in self.blocks)

    # ------------------------------------------------------------------
    # Copying / serialization
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None, rename: bool = False) -> "ProcessingGraph":
        """Deep-copy the graph; ``rename`` gives all blocks fresh names."""
        graph = ProcessingGraph(name or self.name)
        mapping: dict[str, str] = {}
        for block in self.blocks.values():
            clone = block.clone(name=None if rename else block.name)
            mapping[block.name] = clone.name
            graph.add_block(clone)
        for connector in self.connectors:
            graph.connect(mapping[connector.src], mapping[connector.dst], connector.src_port)
        return graph

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "blocks": [block.to_dict() for block in self.blocks.values()],
            "connectors": [connector.to_dict() for connector in self.connectors],
        }

    def digest(self) -> str:
        """Canonical content digest (see :func:`canonical_graph_digest`)."""
        return canonical_graph_digest(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProcessingGraph":
        graph = cls(data.get("name", "graph"))
        for block_data in data.get("blocks", ()):
            graph.add_block(Block.from_dict(block_data))
        for connector_data in data.get("connectors", ()):
            graph._add_connector(Connector.from_dict(connector_data))
        return graph

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT form (debugging/figures).

        Blocks are shaped by class: classifiers are diamonds, terminals
        are double circles, modifiers boxes, shapers trapezia, statics
        ellipses. Edge labels carry the source port.
        """
        shapes = {
            BlockClass.TERMINAL: "doublecircle",
            BlockClass.CLASSIFIER: "diamond",
            BlockClass.MODIFIER: "box",
            BlockClass.SHAPER: "trapezium",
            BlockClass.STATIC: "ellipse",
        }
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for block in self.blocks.values():
            shape = shapes.get(block.block_class, "ellipse")
            label = f"{block.name}\\n({block.type})"
            if block.origin_app:
                label += f"\\n[{block.origin_app}]"
            lines.append(f'  "{block.name}" [shape={shape} label="{label}"];')
        for connector in self.connectors:
            lines.append(
                f'  "{connector.src}" -> "{connector.dst}" '
                f'[label="{connector.src_port}"];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Block-class helpers used by the merge algorithm
    # ------------------------------------------------------------------
    def blocks_of_class(self, block_class: str) -> list[Block]:
        return [
            block for block in self.blocks.values()
            if block.block_class == block_class
        ]

    def classifiers(self) -> list[Block]:
        return self.blocks_of_class(BlockClass.CLASSIFIER)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessingGraph({self.name!r}, blocks={len(self.blocks)}, "
            f"connectors={len(self.connectors)})"
        )
