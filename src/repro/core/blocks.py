"""The abstract processing-block model and the block-type registry.

The OpenBox protocol defines over 40 abstract processing-block types
(paper §2.1, Table 1). Each type has:

* a *block class* — Terminal, Classifier, Modifier, Shaper or Static —
  which drives what the merge algorithm may reorder or combine (§2.2.1);
* configuration parameters;
* a port signature (fixed number of output ports, or config-dependent);
* read/write handles exposed to the control plane (§3.2).

:data:`block_registry` is the single source of truth shared by the
controller (graph validation, merging) and the OBI (translation to
execution-engine elements). The protocol layer serializes it for
capability advertisement in ``Hello`` messages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class BlockClass:
    """The five block classes of paper §2.2.1."""

    TERMINAL = "terminal"
    CLASSIFIER = "classifier"
    MODIFIER = "modifier"
    SHAPER = "shaper"
    STATIC = "static"

    ALL = (TERMINAL, CLASSIFIER, MODIFIER, SHAPER, STATIC)


#: Sentinel: the block's output-port count depends on its configuration
#: (e.g. one port per classification rule).
PORTS_BY_CONFIG = -1


@dataclass(frozen=True)
class HandleSpec:
    """A read or write handle exposed by a block type (paper §3.2)."""

    name: str
    writable: bool = False
    description: str = ""


@dataclass(frozen=True)
class BlockTypeSpec:
    """Static description of an abstract processing-block type."""

    name: str
    block_class: str
    description: str = ""
    num_ports: int = 1
    params: tuple[str, ...] = ()
    required_params: tuple[str, ...] = ()
    handles: tuple[HandleSpec, ...] = ()
    #: Classifier types that implement a cross-product merge (the paper's
    #: ``mergeWith`` interface on HeaderClassifier).
    mergeable: bool = False
    #: May a flow-decision cache entry (obi/fastpath.py) cover a visit
    #: to this block type? False for types whose behaviour is stateful
    #: or payload-dependent beyond what the flow key captures (DPI,
    #: fragmentation, tunnels, rate limiters): a slow-path visit to one
    #: poisons the flow's cache entry.
    cacheable: bool = True
    #: Optional hook combining two same-type static/modifier blocks into
    #: one (returns the merged config, or None if the configs conflict).
    combine: Callable[[dict[str, Any], dict[str, Any]], dict[str, Any] | None] | None = None

    def output_ports(self, config: dict[str, Any]) -> int:
        """Resolve the concrete number of output ports for ``config``."""
        if self.num_ports != PORTS_BY_CONFIG:
            return self.num_ports
        if isinstance(config.get("ports"), int):
            return int(config["ports"])  # Tee-style explicit port count
        ports: set[int] = set()
        rules = config.get("rules", config.get("patterns", []))
        if isinstance(rules, dict):
            ports.update(int(port) for port in rules.values())
        else:
            ports.update(int(rule.get("port", 0)) for rule in rules)
        protocols = config.get("protocols")
        if isinstance(protocols, dict):
            ports.update(int(port) for port in protocols.values())
        default_port = config.get("default_port")
        if default_port is not None:
            ports.add(int(default_port))
        return (max(ports) + 1) if ports else 1


class BlockRegistry:
    """Mapping of block-type name to :class:`BlockTypeSpec`."""

    def __init__(self) -> None:
        self._types: dict[str, BlockTypeSpec] = {}

    def register(self, spec: BlockTypeSpec) -> BlockTypeSpec:
        if spec.name in self._types:
            raise ValueError(f"duplicate block type: {spec.name}")
        if spec.block_class not in BlockClass.ALL:
            raise ValueError(f"unknown block class: {spec.block_class}")
        self._types[spec.name] = spec
        return spec

    def get(self, name: str) -> BlockTypeSpec:
        try:
            return self._types[name]
        except KeyError:
            raise KeyError(f"unknown block type: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def names(self) -> list[str]:
        return sorted(self._types)

    def __iter__(self):
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)


#: Global registry of abstract block types.
block_registry = BlockRegistry()


def _register_builtin_types() -> None:
    reg = block_registry.register
    T, C, M, Sh, St = (
        BlockClass.TERMINAL, BlockClass.CLASSIFIER, BlockClass.MODIFIER,
        BlockClass.SHAPER, BlockClass.STATIC,
    )

    # ---------------- Terminals ----------------
    reg(BlockTypeSpec(
        "FromDevice", T, "Read packets from a network interface",
        num_ports=1, params=("devname",), required_params=("devname",),
        handles=(HandleSpec("count", description="packets read"),
                 HandleSpec("byte_count"),
                 HandleSpec("reset_counts", writable=True)),
    ))
    reg(BlockTypeSpec(
        "ToDevice", T, "Write packets to a network interface",
        num_ports=0, params=("devname",), required_params=("devname",),
        handles=(HandleSpec("count"), HandleSpec("byte_count"),
                 HandleSpec("reset_counts", writable=True)),
    ))
    reg(BlockTypeSpec(
        "Discard", T, "Drop all packets", num_ports=0,
        handles=(HandleSpec("count", description="packets dropped"),
                 HandleSpec("reset_counts", writable=True)),
    ))
    reg(BlockTypeSpec("FromDump", T, "Read packets from a capture file",
                      num_ports=1, params=("filename",), required_params=("filename",)))
    reg(BlockTypeSpec("ToDump", T, "Write packets to a capture file",
                      num_ports=0, params=("filename",), required_params=("filename",)))
    reg(BlockTypeSpec("SendToController", T,
                      "Punt the packet to the controller", num_ports=0))

    # ---------------- Classifiers ----------------
    classifier_handles = (
        HandleSpec("count"), HandleSpec("match_counts"),
        HandleSpec("rules", writable=True, description="replace the rule set"),
        HandleSpec("reset_counts", writable=True),
    )
    reg(BlockTypeSpec(
        "HeaderClassifier", C, "Classify on L2-L4 header fields",
        num_ports=PORTS_BY_CONFIG, params=("rules", "default_port"),
        required_params=("rules",), handles=classifier_handles, mergeable=True,
    ))
    reg(BlockTypeSpec(
        "RegexClassifier", C, "Classify payload against regular expressions",
        num_ports=PORTS_BY_CONFIG, params=("patterns", "default_port"),
        required_params=("patterns",), handles=classifier_handles,
        cacheable=False,
    ))
    reg(BlockTypeSpec(
        "HeaderPayloadClassifier", C,
        "Classify on header fields and payload patterns together",
        num_ports=PORTS_BY_CONFIG, params=("rules", "default_port"),
        required_params=("rules",), handles=classifier_handles,
        cacheable=False,
    ))
    reg(BlockTypeSpec(
        "ProtocolAnalyzer", C, "Classify by identified application protocol",
        num_ports=PORTS_BY_CONFIG, params=("protocols", "default_port"),
        required_params=("protocols",), handles=(HandleSpec("count"),),
        cacheable=False,
    ))
    reg(BlockTypeSpec(
        "FlowClassifier", C, "Classify by flow-table state",
        num_ports=PORTS_BY_CONFIG, params=("rules", "default_port"),
        cacheable=False,
    ))
    reg(BlockTypeSpec(
        "Conntrack", C,
        "Stateful connection-tracking firewall (SYN/EST/FIN machine): "
        "port 0 passes valid connection packets, port 1 drops invalid ones",
        num_ports=2, params=("drop_invalid",),
        handles=(
            HandleSpec("count"), HandleSpec("state_counts"),
            HandleSpec("transitions"), HandleSpec("invalid_dropped"),
            HandleSpec("state_drops"), HandleSpec("established"),
            HandleSpec("flush", writable=True,
                       description="remove all tracked connection state"),
            HandleSpec("reset_counts", writable=True),
        ),
    ))
    reg(BlockTypeSpec(
        "VlanClassifier", C, "Classify by 802.1Q VLAN id",
        num_ports=PORTS_BY_CONFIG, params=("rules", "default_port"),
        required_params=("rules",), mergeable=True,
    ))
    reg(BlockTypeSpec(
        "MetadataClassifier", C,
        "Route on a key in the packet metadata storage (split graphs)",
        num_ports=PORTS_BY_CONFIG, params=("key", "rules", "default_port"),
        required_params=("key",),
    ))

    # ---------------- Modifiers ----------------
    def _combine_field_rewrites(
        a: dict[str, Any], b: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Two rewrites combine iff they touch disjoint fields or agree."""
        fields_a = dict(a.get("fields", {}))
        fields_b = dict(b.get("fields", {}))
        for name, value in fields_b.items():
            if name in fields_a and fields_a[name] != value:
                return None
            fields_a[name] = value
        return {"fields": fields_a}

    reg(BlockTypeSpec(
        "NetworkHeaderFieldRewriter", M, "Rewrite L2-L4 header fields",
        num_ports=1, params=("fields",), required_params=("fields",),
        handles=(HandleSpec("count"), HandleSpec("fields", writable=True)),
        combine=_combine_field_rewrites,
    ))
    reg(BlockTypeSpec("Ipv4AddressTranslator", M, "NAT-style IPv4 rewriting",
                      num_ports=1, params=("mappings",), required_params=("mappings",)))
    reg(BlockTypeSpec("TcpPortTranslator", M, "Translate TCP ports",
                      num_ports=1, params=("mappings",)))
    reg(BlockTypeSpec("DecTtl", M, "Decrement the IPv4 TTL", num_ports=1,
                      handles=(HandleSpec("count"),)))
    reg(BlockTypeSpec("VlanEncapsulate", M, "Push an 802.1Q tag", num_ports=1,
                      params=("vid", "pcp"), required_params=("vid",)))
    reg(BlockTypeSpec("VlanDecapsulate", M, "Pop the 802.1Q tag", num_ports=1,
                      cacheable=False))
    reg(BlockTypeSpec("GzipDecompressor", M, "Decompress gzip HTTP bodies",
                      num_ports=1, handles=(HandleSpec("count"), HandleSpec("errors"))))
    reg(BlockTypeSpec("GzipCompressor", M, "Compress HTTP bodies with gzip",
                      num_ports=1))
    reg(BlockTypeSpec("HtmlNormalizer", M, "Normalize HTML payloads",
                      num_ports=1, handles=(HandleSpec("count"),)))
    reg(BlockTypeSpec("UrlNormalizer", M, "Normalize URLs in HTTP requests",
                      num_ports=1))
    reg(BlockTypeSpec("HeaderPayloadRewriter", M,
                      "Rewrite payload bytes by pattern", num_ports=1,
                      params=("substitutions",)))
    reg(BlockTypeSpec(
        "NshEncapsulate", M, "Push an NSH header carrying OpenBox metadata",
        num_ports=1, params=("spi", "metadata_keys"), required_params=("spi",),
        cacheable=False,
    ))
    reg(BlockTypeSpec("NshDecapsulate", M,
                      "Pop the NSH header and restore OpenBox metadata",
                      num_ports=1, cacheable=False))
    reg(BlockTypeSpec("VxlanEncapsulate", M, "VXLAN-encapsulate with metadata shim",
                      num_ports=1, params=("vni", "metadata_keys"),
                      cacheable=False))
    reg(BlockTypeSpec("VxlanDecapsulate", M, "Strip VXLAN encapsulation",
                      num_ports=1, cacheable=False))
    reg(BlockTypeSpec("GeneveEncapsulate", M,
                      "Geneve-encapsulate with a metadata TLV option",
                      num_ports=1, params=("vni", "metadata_keys"),
                      cacheable=False))
    reg(BlockTypeSpec("GeneveDecapsulate", M, "Strip Geneve encapsulation",
                      num_ports=1, cacheable=False))
    reg(BlockTypeSpec(
        "SetMetadata", M, "Write constant values into the packet metadata storage",
        num_ports=1, params=("values",), required_params=("values",),
        combine=_combine_field_rewrites_metadata,
    ))
    reg(BlockTypeSpec("StripEthernet", M, "Remove the Ethernet header", num_ports=1,
                      cacheable=False))
    reg(BlockTypeSpec("Fragmenter", M, "Fragment oversized IPv4 packets",
                      num_ports=1, params=("mtu",), cacheable=False))
    reg(BlockTypeSpec(
        "Defragmenter", M,
        "Reassemble IPv4 fragments before classification (anti-evasion)",
        num_ports=1, params=("timeout", "max_pending"), cacheable=False,
        handles=(HandleSpec("count"), HandleSpec("reassembled"),
                 HandleSpec("pending"), HandleSpec("expired")),
    ))
    reg(BlockTypeSpec(
        "HttpCacheResponder", M,
        "Serve cached HTTP content: hits emit a synthesized response "
        "toward the client on port 1; misses pass through on port 0",
        num_ports=2, params=("cache",), required_params=("cache",),
        cacheable=False,
        handles=(HandleSpec("count"), HandleSpec("hits"), HandleSpec("misses")),
    ))

    # ---------------- Shapers ----------------
    shaper_handles = (HandleSpec("count"), HandleSpec("dropped"),
                      HandleSpec("rate", writable=True))
    reg(BlockTypeSpec("BpsShaper", Sh, "Limit throughput in bits per second",
                      num_ports=1, params=("bps", "burst"), required_params=("bps",),
                      handles=shaper_handles, cacheable=False))
    reg(BlockTypeSpec("PpsShaper", Sh, "Limit throughput in packets per second",
                      num_ports=1, params=("pps", "burst"), required_params=("pps",),
                      handles=shaper_handles, cacheable=False))
    reg(BlockTypeSpec("Queue", Sh, "FIFO queue with tail drop",
                      num_ports=1, params=("capacity",), handles=shaper_handles,
                      cacheable=False))
    reg(BlockTypeSpec("RedQueue", Sh, "Random-early-detection queue",
                      num_ports=1, params=("capacity", "min_threshold", "max_threshold"),
                      handles=shaper_handles, cacheable=False))
    reg(BlockTypeSpec("DelayShaper", Sh, "Add fixed delay to packets",
                      num_ports=1, params=("delay",)))

    # ---------------- Statics ----------------
    # Alert and Log deliberately have no combine hook: every firing is an
    # externally observable event, so two adjacent identical Alerts must
    # stay two Alerts (two messages reach the controller). Only blocks
    # whose repetition is idempotent may combine.
    reg(BlockTypeSpec(
        "Alert", St, "Send an alert message to the controller", num_ports=1,
        params=("message", "severity", "origin_app"),
        handles=(HandleSpec("count"), HandleSpec("reset_counts", writable=True)),
    ))
    reg(BlockTypeSpec(
        "Log", St, "Log the packet to the logging service", num_ports=1,
        params=("message", "origin_app"), handles=(HandleSpec("count"),),
    ))
    reg(BlockTypeSpec("Counter", St, "Count packets and bytes", num_ports=1,
                      handles=(HandleSpec("count"), HandleSpec("byte_count"),
                               HandleSpec("reset_counts", writable=True)),
                      combine=None))
    reg(BlockTypeSpec("FlowTracker", St, "Record flows in the session storage",
                      num_ports=1, params=("idle_timeout", "bidirectional"),
                      handles=(HandleSpec("flow_count"),)))
    reg(BlockTypeSpec(
        "SessionTag", St,
        "Write a key/value into the session storage for the packet's flow",
        num_ports=1, params=("key", "value"), required_params=("key", "value"),
        handles=(HandleSpec("count"), HandleSpec("tagged")),
    ))
    reg(BlockTypeSpec("StorePacket", St, "Store the packet in the storage service",
                      num_ports=1, params=("namespace",)))
    reg(BlockTypeSpec("Mirror", St, "Copy the packet to a mirror port", num_ports=2))
    reg(BlockTypeSpec("Tee", St, "Duplicate the packet to all output ports",
                      num_ports=PORTS_BY_CONFIG, params=("ports",)))


def _combine_field_rewrites_metadata(
    a: dict[str, Any], b: dict[str, Any]
) -> dict[str, Any] | None:
    """SetMetadata blocks combine iff their key sets are compatible."""
    values_a = dict(a.get("values", {}))
    values_b = dict(b.get("values", {}))
    for key, value in values_b.items():
        if key in values_a and values_a[key] != value:
            return None
        values_a[key] = value
    return {"values": values_a}


_block_ids = itertools.count(1)


@dataclass
class Block:
    """A processing-block instance inside a :class:`ProcessingGraph`.

    ``name`` identifies the block within its graph. ``origin_app`` records
    which OpenBox application contributed the block — preserved through
    merging so alerts and statistics demultiplex to the right application
    (paper §6, "Security").
    """

    type: str
    name: str = ""
    config: dict[str, Any] = field(default_factory=dict)
    origin_app: str | None = None
    #: Preferred concrete implementation (e.g. "tcam"); None lets the OBI
    #: choose its default implementation for this abstract type (§2.1).
    implementation: str | None = None
    #: The name this block had in its application's original graph.
    #: Preserved through normalization/merging clones so the controller
    #: can route an application's read/write requests to the deployed
    #: copies of its blocks (paper §4.1). None for blocks synthesized by
    #: the merge itself (e.g. a cross-product classifier).
    origin_block: str | None = None

    def __post_init__(self) -> None:
        if self.type not in block_registry:
            raise KeyError(f"unknown block type: {self.type!r}")
        if not self.name:
            self.name = f"{self.type.lower()}_{next(_block_ids)}"
        if self.origin_block is None:
            self.origin_block = self.name
        missing = [
            param for param in self.spec.required_params if param not in self.config
        ]
        if missing:
            raise ValueError(f"block {self.name} ({self.type}) missing config: {missing}")

    @property
    def spec(self) -> BlockTypeSpec:
        return block_registry.get(self.type)

    @property
    def block_class(self) -> str:
        return self.spec.block_class

    @property
    def num_output_ports(self) -> int:
        return self.spec.output_ports(self.config)

    def clone(self, name: str | None = None) -> "Block":
        """Copy the block (fresh generated name unless one is given)."""
        return Block(
            type=self.type,
            name=name or f"{self.type.lower()}_{next(_block_ids)}",
            config=_deep_copy_config(self.config),
            origin_app=self.origin_app,
            implementation=self.implementation,
            origin_block=self.origin_block,
        )

    def config_fingerprint(self) -> str:
        """A deterministic string identifying (type, config, origin).

        ``origin_block`` is included so deduplication never merges two
        *different* application blocks that happen to share a config —
        that would break handle addressing — while still merging clones
        of the same original block.
        """
        return (
            f"{self.type}|{_stable_repr(self.config)}|{self.origin_app}"
            f"|{self.origin_block}"
        )

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"type": self.type, "name": self.name, "config": self.config}
        if self.origin_app is not None:
            data["origin_app"] = self.origin_app
        if self.implementation is not None:
            data["implementation"] = self.implementation
        if self.origin_block is not None and self.origin_block != self.name:
            data["origin_block"] = self.origin_block
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Block":
        return cls(
            type=data["type"],
            name=data.get("name", ""),
            config=data.get("config", {}),
            origin_app=data.get("origin_app"),
            implementation=data.get("implementation"),
            origin_block=data.get("origin_block"),
        )


def _deep_copy_config(config: dict[str, Any]) -> dict[str, Any]:
    def copy_value(value: Any) -> Any:
        if isinstance(value, dict):
            return {key: copy_value(item) for key, item in value.items()}
        if isinstance(value, list):
            return [copy_value(item) for item in value]
        return value

    return {key: copy_value(value) for key, value in config.items()}


def _stable_repr(value: Any) -> str:
    if isinstance(value, dict):
        inner = ",".join(
            f"{key}:{_stable_repr(value[key])}" for key in sorted(value, key=str)
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_stable_repr(item) for item in value) + "]"
    return repr(value)


_register_builtin_types()
