"""Stage 1 of the merge pipeline: graph → processing tree.

"First, it normalizes each processing graph to a processing tree, so that
paths do not converge" (paper §2.2.1). Any block reachable over several
paths is duplicated once per path. The length of every root-to-leaf path
is preserved exactly.

Normalization can blow up exponentially for adversarial graph shapes
("it never happened in our experiments. However, if it does, our system
rolls back to the naive merge"): :class:`NormalizationBlowup` is raised
when the tree would exceed ``max_blocks``, and the merge driver catches
it and falls back.
"""

from __future__ import annotations

from repro.core.graph import GraphValidationError, ProcessingGraph


class NormalizationBlowup(Exception):
    """Normalizing would exceed the configured block budget."""

    def __init__(self, graph_name: str, limit: int) -> None:
        super().__init__(
            f"normalizing graph {graph_name!r} would exceed {limit} blocks"
        )
        self.graph_name = graph_name
        self.limit = limit


def normalize_to_tree(graph: ProcessingGraph, max_blocks: int = 100_000) -> ProcessingGraph:
    """Return a tree-shaped copy of ``graph`` with converging paths split.

    The input must be a valid single-entry DAG. Every block of the result
    has at most one incoming connector; blocks reached over ``k`` distinct
    paths appear as ``k`` copies.
    """
    graph.validate()
    entry = graph.entry_point()
    tree = ProcessingGraph(graph.name)
    count = 0

    # Iterative DFS duplication: each stack entry names the source block
    # to copy and where to attach the copy (parent already in the tree).
    stack: list[tuple[str, str | None, int]] = [(entry, None, 0)]
    while stack:
        name, parent, parent_port = stack.pop()
        count += 1
        if count > max_blocks:
            raise NormalizationBlowup(graph.name, max_blocks)
        clone = graph.blocks[name].clone()
        tree.add_block(clone)
        if parent is not None:
            tree.connect(parent, clone.name, parent_port)
        for connector in graph.out_connectors(name):
            stack.append((connector.dst, clone.name, connector.src_port))

    if not tree.is_tree():  # pragma: no cover - guaranteed by construction
        raise GraphValidationError("normalization produced a non-tree")
    return tree
