"""Stage 3 of the merge pipeline: path compression (paper Algorithm 1).

Works on a processing *tree* and repeatedly applies two semantics-
preserving rewrites until a fixpoint:

1. **Classifier-classifier merge.** If classifier ``c`` has, on the
   subtree hanging off one of its output ports ``p``, a mergeable
   classifier ``d`` of the same type separated only by *static* blocks
   (class St — blocks that neither modify the packet nor its forwarding
   path), then ``c`` and ``d`` collapse into a single classifier whose
   rule set routes each packet directly to the combined outcome. The
   static blocks between them are cloned onto every merged egress path
   that passes through them (Figure 4: the firewall's Alert block appears
   once per IPS branch), and ``d``'s subtrees are re-wired below the
   merged classifier. Classifiers are never moved across modifiers or
   shapers — that could change classification results (§2.2.1).

2. **Static/modifier combine.** Two adjacent single-output blocks of the
   same type combine when the block type's ``combine`` hook accepts their
   configs (e.g. two header rewrites touching disjoint fields, or two
   identical Alerts).

Each rewrite strictly decreases (#classifiers, #blocks) lexicographically,
so the fixpoint loop terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocks import Block, BlockClass
from repro.core.classify.header import HeaderRuleSet
from repro.core.classify.rules import HeaderRule
from repro.core.graph import ProcessingGraph

#: Classifier types that implement cross-product merging, mapped to the
#: function that merges their rule configs. Mirrors the paper's
#: ``mergeWith(...)`` Java interface on HeaderClassifier.
_MERGEABLE_TYPES = ("HeaderClassifier", "VlanClassifier")


@dataclass
class CompressionStats:
    """Counters describing what compression did (reported in MergeResult)."""

    classifier_merges: int = 0
    static_combines: int = 0
    statics_cloned: int = 0
    passes: int = 0


def compress_tree(
    tree: ProcessingGraph,
    enable_classifier_merge: bool = True,
    enable_static_combine: bool = True,
    stats: CompressionStats | None = None,
) -> CompressionStats:
    """Compress ``tree`` in place; returns rewrite statistics."""
    if stats is None:
        stats = CompressionStats()
    entry = tree.entry_point()
    changed = True
    while changed:
        stats.passes += 1
        changed = False
        if enable_classifier_merge and _try_classifier_merge(tree, stats):
            _prune_unreachable(tree, entry)
            changed = True
            continue
        if enable_static_combine and _try_static_combine(tree, stats):
            changed = True
    return stats


def _prune_unreachable(tree: ProcessingGraph, entry: str) -> None:
    """Drop blocks no longer reachable from the entry terminal.

    A classifier merge can prove a subtree dead — e.g. when the cross
    product of an outer UDP rule with an inner TCP-only classifier is
    empty, the inner subtree for that branch has no rule mapping to it.
    Such subtrees must be removed or they would dangle as spurious roots.
    """
    reachable: set[str] = set()
    stack = [entry]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        stack.extend(tree.successors(name))
    for name in [name for name in tree.blocks if name not in reachable]:
        tree.remove_block(name)


# ----------------------------------------------------------------------
# Rewrite 1: classifier-classifier merge
# ----------------------------------------------------------------------

def _is_mergeable_classifier(block: Block) -> bool:
    return block.type in _MERGEABLE_TYPES and block.spec.mergeable


def _find_merge_candidate(
    tree: ProcessingGraph,
) -> tuple[str, int, list[str], str] | None:
    """Find (classifier c, port p, statics-between, classifier d) to merge.

    Scans in topological order so upstream classifiers merge first,
    mirroring Algorithm 1's root-to-leaf walk.
    """
    for name in tree.topological_order():
        block = tree.blocks[name]
        if not _is_mergeable_classifier(block):
            continue
        for connector in tree.out_connectors(name):
            statics: list[str] = []
            current = connector.dst
            while True:
                candidate = tree.blocks[current]
                if (
                    _is_mergeable_classifier(candidate)
                    and candidate.type == block.type
                ):
                    return name, connector.src_port, statics, current
                # Only skip over *static* blocks with a single egress —
                # anything else (modifier, shaper, terminal, branching
                # static, non-mergeable classifier) ends the search on
                # this path.
                if candidate.block_class != BlockClass.STATIC:
                    break
                outs = tree.out_connectors(current)
                if len(outs) != 1:
                    break
                statics.append(current)
                current = outs[0].dst
    return None


def merge_classifier_rulesets_on_branch(
    outer: HeaderRuleSet,
    branch_port: int,
    inner: HeaderRuleSet,
    allocate: "PortAllocator",
) -> HeaderRuleSet:
    """Merge ``inner`` (reached via ``outer`` port ``branch_port``) into ``outer``.

    Produces a rule set with sequential first-match semantics:

    * a packet that ``outer`` sends to a port other than ``branch_port``
      keeps that outcome — one rule per original rule, no cross product;
    * a packet that ``outer`` sends to ``branch_port`` is further split by
      ``inner``'s rules — the cross product is taken only on this branch,
      with an explicit catch-all closing each expansion so that first-match
      order is preserved.

    This is the paper's cross-product merge ("orders them according to
    their priority, removes duplicate rules caused by the cross-product
    and empty rules caused by priority considerations") restricted to the
    branch where the inner classifier actually sits, which keeps the rule
    count at ``O(|outer| + k·|inner|)`` instead of ``O(|outer|·|inner|)``
    (k = rules mapping to the merged branch).
    """
    inner_rules = list(inner.rules) + [HeaderRule(port=inner.default_port)]
    merged: list[HeaderRule] = []
    outer_rules = list(outer.rules) + [HeaderRule(port=outer.default_port)]
    for index, rule_a in enumerate(outer_rules):
        is_catch_all_default = index == len(outer_rules) - 1
        if rule_a.port != branch_port:
            target = allocate.outer_port(rule_a.port)
            if not is_catch_all_default:
                merged.append(HeaderRule(
                    src=rule_a.src, dst=rule_a.dst,
                    src_port=rule_a.src_port, dst_port=rule_a.dst_port,
                    proto=rule_a.proto, vlan=rule_a.vlan, dscp=rule_a.dscp,
                    port=target,
                ))
            continue
        for rule_b in inner_rules:
            combined = rule_a.intersect(
                rule_b, allocate.branch_port(rule_b.port)
            )
            if combined is not None:
                merged.append(combined)

    if outer.default_port != branch_port:
        default = allocate.outer_port(outer.default_port)
    else:
        default = allocate.branch_port(inner.default_port)
    result = HeaderRuleSet(merged, default)
    return result.prune_shadowed().prune_default_tail()


@dataclass
class PortAllocator:
    """Assigns contiguous output ports to merged-classifier outcomes."""

    _ports: dict[tuple[str, int], int] = field(default_factory=dict)

    def outer_port(self, port: int) -> int:
        return self._alloc(("outer", port))

    def branch_port(self, port: int) -> int:
        return self._alloc(("branch", port))

    def _alloc(self, key: tuple[str, int]) -> int:
        if key not in self._ports:
            self._ports[key] = len(self._ports)
        return self._ports[key]

    def assignments(self) -> dict[tuple[str, int], int]:
        return dict(self._ports)


def _try_classifier_merge(tree: ProcessingGraph, stats: CompressionStats) -> bool:
    candidate = _find_merge_candidate(tree)
    if candidate is None:
        return False
    outer_name, branch_port, statics, inner_name = candidate
    outer = tree.blocks[outer_name]
    inner = tree.blocks[inner_name]

    allocate = PortAllocator()
    merged_rules = merge_classifier_rulesets_on_branch(
        HeaderRuleSet.from_config(outer.config),
        branch_port,
        HeaderRuleSet.from_config(inner.config),
        allocate,
    )
    merged_block = Block(
        type=outer.type,
        config=merged_rules.to_config(),
        origin_app=outer.origin_app if outer.origin_app == inner.origin_app else None,
        implementation=outer.implementation,
    )

    # Record where each merged port must lead before we start rewiring.
    outer_children = {
        connector.src_port: connector.dst for connector in tree.out_connectors(outer_name)
    }
    inner_children = {
        connector.src_port: connector.dst for connector in tree.out_connectors(inner_name)
    }
    in_connectors = tree.in_connectors(outer_name)

    tree.add_block(merged_block)

    # Ports whose rules were entirely pruned (empty cross products,
    # shadowed rules) are dead: leave them unwired so reachability
    # pruning collects their subtrees, and so the merged block's port
    # count (derived from its rule set) stays consistent.
    live_ports = {rule.port for rule in merged_rules.rules}
    live_ports.add(merged_rules.default_port)

    # Re-wire the merged classifier's ports.
    for (kind, original_port), new_port in allocate.assignments().items():
        if new_port not in live_ports:
            continue
        if kind == "outer":
            # Unchanged branch of the outer classifier. The statics chain
            # and the inner classifier live on branch_port, so these
            # subtrees are reused as-is.
            child = outer_children.get(original_port)
            if child is not None:
                _reconnect(tree, merged_block.name, child, new_port)
        else:
            # Branch that passed through the inner classifier: clone of
            # the statics chain, then the inner classifier's subtree for
            # this port.
            tail = inner_children.get(original_port)
            head = _clone_statics_chain(tree, statics, stats)
            if head is not None:
                chain_head, chain_tail = head
                tree.connect(merged_block.name, chain_head, new_port)
                if tail is not None:
                    _reconnect(tree, chain_tail, tail, 0)
            elif tail is not None:
                _reconnect(tree, merged_block.name, tail, new_port)
            # A port with neither statics nor subtree is a dangling
            # outcome (inner classifier port wired to nothing): leave it
            # unconnected, matching the original dangling semantics.

    # Point the outer classifier's parents at the merged block.
    for connector in in_connectors:
        tree.remove_connector(connector)
        tree.connect(connector.src, merged_block.name, connector.src_port)

    # Remove the consumed blocks: outer, the original statics chain, inner.
    _detach_and_remove(tree, outer_name)
    for static_name in statics:
        _detach_and_remove(tree, static_name)
    _detach_and_remove(tree, inner_name)

    stats.classifier_merges += 1
    return True


def _reconnect(tree: ProcessingGraph, src: str, dst: str, port: int) -> None:
    """Connect src->dst, first detaching dst from its previous parent."""
    for connector in tree.in_connectors(dst):
        tree.remove_connector(connector)
    tree.connect(src, dst, port)


def _clone_statics_chain(
    tree: ProcessingGraph, statics: list[str], stats: CompressionStats
) -> tuple[str, str] | None:
    """Clone the chain of static blocks; returns (head, tail) or None."""
    if not statics:
        return None
    clones: list[Block] = []
    for name in statics:
        clone = tree.blocks[name].clone()
        tree.add_block(clone)
        clones.append(clone)
        stats.statics_cloned += 1
    for first, second in zip(clones, clones[1:]):
        tree.connect(first.name, second.name, 0)
    return clones[0].name, clones[-1].name


def _detach_and_remove(tree: ProcessingGraph, name: str) -> None:
    """Remove a block that should no longer have live connectors."""
    if name in tree.blocks:
        tree.remove_block(name)


# ----------------------------------------------------------------------
# Rewrite 2: static/modifier combine
# ----------------------------------------------------------------------

def _try_static_combine(tree: ProcessingGraph, stats: CompressionStats) -> bool:
    for name in tree.topological_order():
        block = tree.blocks.get(name)
        if block is None:
            continue
        if block.block_class not in (BlockClass.STATIC, BlockClass.MODIFIER):
            continue
        if block.spec.combine is None or block.num_output_ports != 1:
            continue
        outs = tree.out_connectors(name)
        if len(outs) != 1:
            continue
        successor = tree.blocks[outs[0].dst]
        if successor.type != block.type:
            continue
        combined_config = block.spec.combine(block.config, successor.config)
        if combined_config is None:
            continue
        combined = Block(
            type=block.type,
            config=combined_config,
            origin_app=(
                block.origin_app
                if block.origin_app == successor.origin_app
                else None
            ),
            implementation=block.implementation,
        )
        tree.add_block(combined)
        for connector in tree.in_connectors(name):
            tree.remove_connector(connector)
            tree.connect(connector.src, combined.name, connector.src_port)
        for connector in tree.out_connectors(successor.name):
            tree.remove_connector(connector)
            tree.connect(combined.name, connector.dst, connector.src_port)
        tree.remove_connector(outs[0])
        tree.remove_block(name)
        tree.remove_block(successor.name)
        stats.static_combines += 1
        return True
    return False
