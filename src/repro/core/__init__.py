"""OpenBox core: processing blocks, processing graphs, and the merge algorithm.

This subpackage implements the paper's primary contribution:

* the abstract processing-block model with the five block classes —
  Terminal, Classifier, Modifier, Shaper, Static (paper §2.2.1);
* :class:`~repro.core.graph.ProcessingGraph`, the DAG-of-blocks abstraction
  that OpenBox applications use to declare NF logic (paper §2.1);
* the graph-merge pipeline (paper §2.2): normalization to a processing
  tree, tree concatenation, path compression (Algorithm 1, including
  classifier cross-product merging), and duplicate-subgraph elimination.
"""

from repro.core.blocks import Block, BlockClass, BlockTypeSpec, block_registry
from repro.core.graph import Connector, ProcessingGraph
from repro.core.merge import MergePolicy, MergeResult, merge_graphs, naive_merge

__all__ = [
    "Block",
    "BlockClass",
    "BlockTypeSpec",
    "Connector",
    "MergePolicy",
    "MergeResult",
    "ProcessingGraph",
    "block_registry",
    "merge_graphs",
    "naive_merge",
]
