"""Stage 4 of the merge pipeline: duplicate-subtree elimination.

"The last stage of our algorithm takes place after the merge process is
completed. It eliminates copies of the same block and rewires the
connectors to the remaining single copy, so that eventually the result is
a graph ... and not necessarily a tree" (paper §2.2.1).

Two blocks are merged only when they have identical type/config/origin
*and* their successor subtrees are exact copies of each other — "we only
eliminate a copy of a block if the remaining copy is pointing to exactly
the same path (or its exact copy)". This is decided with a bottom-up
structural hash over the tree.
"""

from __future__ import annotations

from repro.core.graph import ProcessingGraph


def deduplicate(tree: ProcessingGraph) -> ProcessingGraph:
    """Collapse equal subtrees of ``tree`` into shared subgraphs.

    Returns a new (possibly non-tree) graph; the input is unmodified.
    Path lengths are unchanged — only the block count shrinks.
    """
    order = tree.topological_order()
    signature: dict[str, str] = {}
    canonical: dict[str, str] = {}

    for name in reversed(order):
        block = tree.blocks[name]
        child_parts = [
            f"{connector.src_port}:{signature[connector.dst]}"
            for connector in sorted(
                tree.out_connectors(name), key=lambda c: c.src_port
            )
        ]
        sig = block.config_fingerprint() + "->(" + ",".join(child_parts) + ")"
        signature[name] = sig
        canonical.setdefault(sig, name)

    result = ProcessingGraph(tree.name)
    reachable: list[str] = []
    seen: set[str] = set()
    stack = [canonical[signature[root]] for root in tree.roots()]
    while stack:
        canon = stack.pop()
        if canon in seen:
            continue
        seen.add(canon)
        reachable.append(canon)
        result.add_block(tree.blocks[canon])
        for connector in tree.out_connectors(canon):
            stack.append(canonical[signature[connector.dst]])
    for canon in reachable:
        for connector in tree.out_connectors(canon):
            result.connect(
                canon, canonical[signature[connector.dst]], connector.src_port
            )
    return result
