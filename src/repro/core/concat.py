"""Stage 2 of the merge pipeline: concatenating processing trees.

"Then, it concatenates the processing trees in the order in which the
corresponding NFs are processed. ... A copy of the subsequent processing
tree will be concatenated to each of these leaves" (paper §2.2.1).

Concatenation splices the second NF's logic after every *output terminal*
of the first: the first graph's ``ToDevice`` leaf and the second graph's
``FromDevice`` root both disappear (packets flow on within the same OBI
instead of leaving and re-entering a device), which is exactly why the
naively merged Figure 3 has a 7-block diameter rather than 4+4.

Leaves that terminate processing for good (``Discard``, ``ToDump``,
``SendToController``) keep their meaning: nothing is appended after them.
"""

from __future__ import annotations

from repro.core.graph import GraphValidationError, ProcessingGraph

#: Terminals after which the packet continues through subsequent NFs.
OUTPUT_TERMINALS = frozenset({"ToDevice"})

#: Terminals that absorb the packet; later NFs never see it.
ABSORBING_TERMINALS = frozenset({"Discard", "ToDump", "SendToController"})

#: Terminals that inject packets (graph entry points).
INPUT_TERMINALS = frozenset({"FromDevice", "FromDump"})


def concatenate_trees(first: ProcessingGraph, second: ProcessingGraph) -> ProcessingGraph:
    """Append a copy of ``second`` after every output terminal of ``first``.

    Both inputs must be trees with a single input-terminal entry; the
    result is a tree named after both. Inputs are not modified.
    """
    for tree, label in ((first, "first"), (second, "second")):
        if not tree.is_tree():
            raise GraphValidationError(f"{label} graph is not a tree")
    second_entry = second.entry_point()
    if second.blocks[second_entry].type not in INPUT_TERMINALS:
        raise GraphValidationError(
            f"second graph entry {second_entry!r} is not an input terminal"
        )
    second_successors = second.out_connectors(second_entry)
    if len(second_successors) != 1:
        raise GraphValidationError("second graph entry must have exactly one successor")

    result = first.copy(name=f"{first.name}+{second.name}", rename=True)

    output_leaves = [
        name for name in result.leaves()
        if result.blocks[name].type in OUTPUT_TERMINALS
    ]
    if not output_leaves:
        raise GraphValidationError(
            f"graph {first.name!r} has no output terminal to concatenate after"
        )

    body_root = second_successors[0].dst
    for leaf in output_leaves:
        in_connectors = result.in_connectors(leaf)
        if not in_connectors:
            raise GraphValidationError(
                f"output terminal {leaf!r} is unreachable (single-block graph?)"
            )
        appended_root = _copy_subtree(second, body_root, result)
        connector = in_connectors[0]
        result.remove_connector(connector)
        result.remove_block(leaf)
        result.connect(connector.src, appended_root, connector.src_port)
    return result


def _copy_subtree(source: ProcessingGraph, root: str, target: ProcessingGraph) -> str:
    """Copy ``source``'s subtree under ``root`` into ``target``; returns new root."""
    root_clone = source.blocks[root].clone()
    target.add_block(root_clone)
    stack: list[tuple[str, str]] = [(root, root_clone.name)]
    while stack:
        name, clone_name = stack.pop()
        for connector in source.out_connectors(name):
            child_clone = source.blocks[connector.dst].clone()
            target.add_block(child_clone)
            target.connect(clone_name, child_clone.name, connector.src_port)
            stack.append((connector.dst, child_clone.name))
    return root_clone.name
