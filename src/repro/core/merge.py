"""The merge driver: naive merge, full merge pipeline, and policy.

The OpenBox controller calls :func:`merge_graphs` with the processing
graphs of every application deployed to an OBI, ordered by application
priority. The full pipeline is normalize → concatenate → path-compress →
deduplicate (paper §2.2.1); if normalization would blow up, the driver
"rolls back to the naive merge", which simply chains the graphs
(Figure 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.compress import CompressionStats, compress_tree
from repro.core.concat import INPUT_TERMINALS, OUTPUT_TERMINALS, concatenate_trees
from repro.core.dedup import deduplicate
from repro.core.graph import GraphValidationError, ProcessingGraph
from repro.core.normalize import NormalizationBlowup, normalize_to_tree


@dataclass(frozen=True)
class MergePolicy:
    """Knobs controlling the merge pipeline.

    ``max_tree_blocks`` is the blow-up guard: if normalization or
    concatenation would exceed it, the driver falls back to the naive
    merge. ``merge_classifiers`` / ``combine_statics`` switch the two
    compression rewrites (used by the ablation benchmarks). Applications
    whose logic changes too frequently can be excluded from merging
    upstream (paper §3.4) — the controller filters them before calling
    this module.
    """

    max_tree_blocks: int = 100_000
    merge_classifiers: bool = True
    combine_statics: bool = True
    deduplicate: bool = True


@dataclass
class MergeResult:
    """The merged graph plus provenance and size/latency accounting."""

    graph: ProcessingGraph
    used_naive: bool = False
    merge_time: float = 0.0
    diameter_naive: int = 0
    diameter_merged: int = 0
    compression: CompressionStats = field(default_factory=CompressionStats)

    @property
    def diameter_reduction(self) -> int:
        return self.diameter_naive - self.diameter_merged


def naive_merge(graphs: Sequence[ProcessingGraph]) -> ProcessingGraph:
    """Chain graphs back to back without any restructuring (Figure 3).

    Every output terminal of graph *i* is replaced by an edge into graph
    *i+1*'s entry successor. The second graph appears exactly once (paths
    may converge), so no normalization is needed.
    """
    if not graphs:
        raise ValueError("no graphs to merge")
    result = graphs[0].copy(rename=True)
    for nxt in graphs[1:]:
        result = _naive_concat(result, nxt)
    result.name = "+".join(graph.name for graph in graphs) + ":naive"
    return result


def _naive_concat(first: ProcessingGraph, second: ProcessingGraph) -> ProcessingGraph:
    second_entry = second.entry_point()
    if second.blocks[second_entry].type not in INPUT_TERMINALS:
        raise GraphValidationError("second graph must start with an input terminal")
    successors = second.out_connectors(second_entry)
    if len(successors) != 1:
        raise GraphValidationError("second graph entry must have one successor")

    result = first.copy(rename=True)
    # Copy the second graph body (everything but its entry terminal).
    appended = second.copy(rename=True)
    appended_entry = appended.entry_point()
    body_root = appended.out_connectors(appended_entry)[0].dst
    appended.remove_block(appended_entry)
    for block in appended.blocks.values():
        result.add_block(block)
    for connector in appended.connectors:
        result._add_connector(connector)

    output_leaves = [
        name for name in result.leaves()
        if result.blocks[name].type in OUTPUT_TERMINALS
        and name not in appended.blocks
    ]
    if not output_leaves:
        raise GraphValidationError(
            f"graph {first.name!r} has no output terminal to chain after"
        )
    for leaf in output_leaves:
        for connector in result.in_connectors(leaf):
            result.remove_connector(connector)
            result.connect(connector.src, body_root, connector.src_port)
        result.remove_block(leaf)
    return result


def merge_graphs(
    graphs: Sequence[ProcessingGraph],
    policy: MergePolicy | None = None,
) -> MergeResult:
    """Merge application graphs in priority order into one deployable graph.

    Returns a :class:`MergeResult`; ``used_naive`` is True when the
    blow-up guard fired and the naive merge was used instead.
    """
    if not graphs:
        raise ValueError("no graphs to merge")
    if policy is None:
        policy = MergePolicy()

    start = time.perf_counter()
    naive = naive_merge(graphs) if len(graphs) > 1 else graphs[0].copy(rename=True)
    diameter_naive = naive.diameter()

    if len(graphs) == 1 and not policy.merge_classifiers and not policy.combine_statics:
        merged = naive
        merged.validate()
        return MergeResult(
            graph=merged,
            used_naive=False,
            merge_time=time.perf_counter() - start,
            diameter_naive=diameter_naive,
            diameter_merged=merged.diameter(),
        )

    try:
        tree = normalize_to_tree(graphs[0], policy.max_tree_blocks)
        for nxt in graphs[1:]:
            next_tree = normalize_to_tree(nxt, policy.max_tree_blocks)
            tree = concatenate_trees(tree, next_tree)
            if len(tree.blocks) > policy.max_tree_blocks:
                raise NormalizationBlowup(tree.name, policy.max_tree_blocks)
    except NormalizationBlowup:
        # Roll back to the naive merge (paper §2.2.1, footnote 1).
        naive.validate()
        return MergeResult(
            graph=naive,
            used_naive=True,
            merge_time=time.perf_counter() - start,
            diameter_naive=diameter_naive,
            diameter_merged=naive.diameter(),
        )

    stats = compress_tree(
        tree,
        enable_classifier_merge=policy.merge_classifiers,
        enable_static_combine=policy.combine_statics,
    )
    merged = deduplicate(tree) if policy.deduplicate else tree
    merged.name = "+".join(graph.name for graph in graphs)
    merged.validate()
    return MergeResult(
        graph=merged,
        used_naive=False,
        merge_time=time.perf_counter() - start,
        diameter_naive=diameter_naive,
        diameter_merged=merged.diameter(),
        compression=stats,
    )
