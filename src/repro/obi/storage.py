"""OBI data-plane storages (paper §3.4.2).

Two key-value stores back stateful NF applications:

* **metadata storage** — short-lived, per-packet. Lives directly on
  :attr:`repro.net.packet.Packet.metadata`; :class:`MetadataCodec`
  serializes it into the NSH context header when a packet travels to the
  next OBI in a split processing graph (§3.1), and restores it on arrival.
* **session storage** — per-flow, valid while the flow is alive. Built on
  :class:`repro.net.flow.FlowTable`; exposes export/import hooks so an
  OpenNF-style framework could migrate state between OBI replicas.
"""

from __future__ import annotations

import json
from typing import Any

from repro.net.flow import FiveTuple, FlowTable
from repro.net.packet import Packet


class MetadataCodec:
    """Serializes the per-packet metadata store for inter-OBI transfer.

    The wire form is compact JSON — the paper estimates "a few bytes" per
    packet since metadata usually only names the processing-graph path
    the next OBI should follow.
    """

    @staticmethod
    def encode(metadata: dict[str, Any], keys: list[str] | None = None) -> bytes:
        """Encode ``metadata`` (optionally only ``keys``) to bytes."""
        if keys is not None:
            metadata = {key: metadata[key] for key in keys if key in metadata}
        return json.dumps(metadata, separators=(",", ":"), sort_keys=True).encode("utf-8")

    @staticmethod
    def decode(blob: bytes) -> dict[str, Any]:
        data = json.loads(blob)
        if not isinstance(data, dict):
            raise ValueError("metadata blob must decode to an object")
        return data


class SessionStorage:
    """Flow-scoped key-value storage for stateful applications.

    "This storage is attached to a flow and is valid as long as the flow
    is alive" — entries vanish when the underlying flow expires from the
    flow table.
    """

    def __init__(
        self,
        idle_timeout: float = 60.0,
        bidirectional: bool = True,
        max_flows: int | None = 1_000_000,
    ) -> None:
        self._flows = FlowTable(
            idle_timeout=idle_timeout,
            bidirectional=bidirectional,
            max_flows=max_flows,
        )

    @property
    def flow_table(self) -> FlowTable:
        return self._flows

    def observe(self, packet: Packet, now: float) -> None:
        """Track the packet's flow (called by FlowTracker blocks)."""
        self._flows.observe(packet, now)

    def get(self, packet: Packet, key: str, default: Any = None) -> Any:
        tuple5 = FiveTuple.of(packet)
        if tuple5 is None:
            return default
        flow = self._flows.lookup(tuple5)
        if flow is None:
            return default
        return flow.session.get(key, default)

    def put(self, packet: Packet, key: str, value: Any, now: float) -> bool:
        """Store ``key: value`` for the packet's flow; creates the flow."""
        flow = self._flows.observe(packet, now)
        if flow is None:
            return False
        # observe() also counted the packet; undo the double count since
        # this is a storage operation, not a forwarding observation.
        flow.packets -= 1
        flow.bytes -= len(packet)
        flow.session[key] = value
        return True

    def expire(self, now: float) -> int:
        """Evict idle flows; returns how many were removed."""
        return len(self._flows.expire(now))

    def flow_count(self) -> int:
        return len(self._flows)

    def export_state(self) -> dict[str, dict[str, Any]]:
        """Human-readable snapshot keyed by flow string (debugging)."""
        return self._flows.export_state()

    def export_entries(self) -> list[dict[str, Any]]:
        """Structured snapshot for OpenNF-style migration (paper §3.4.2).

        Each entry carries the flow key, session data, and timestamps, so
        an importing OBI can reconstruct live flow entries exactly.
        """
        return [
            {
                "key": flow.key.to_dict(),
                "session": dict(flow.session),
                "created_at": flow.created_at,
                "last_seen": flow.last_seen,
                "packets": flow.packets,
                "bytes": flow.bytes,
            }
            for flow in self._flows
        ]

    def import_entries(self, entries: list[dict[str, Any]], now: float) -> int:
        """Install exported flow entries; returns how many were imported.

        Existing session entries for the same flow are merged (imported
        values win), so repeated migrations are idempotent. Timestamps
        are refreshed to ``now`` so imported flows do not expire
        immediately on the new OBI.
        """
        from repro.net.flow import FiveTuple, Flow

        imported = 0
        for entry in entries:
            key = self._flows.canonical_key(FiveTuple.from_dict(entry["key"]))
            flow = self._flows.lookup(key)
            if flow is None:
                flow = Flow(
                    key=key,
                    created_at=float(entry.get("created_at", now)),
                    last_seen=now,
                    packets=int(entry.get("packets", 0)),
                    bytes=int(entry.get("bytes", 0)),
                )
                self._flows.install(flow)
            flow.session.update(entry.get("session", {}))
            flow.last_seen = now
            imported += 1
        return imported
