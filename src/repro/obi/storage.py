"""OBI data-plane storages (paper §3.4.2).

Two key-value stores back stateful NF applications:

* **metadata storage** — short-lived, per-packet. Lives directly on
  :attr:`repro.net.packet.Packet.metadata`; :class:`MetadataCodec`
  serializes it into the NSH context header when a packet travels to the
  next OBI in a split processing graph (§3.1), and restores it on arrival.
* **session storage** — per-flow, valid while the flow is alive. Built on
  :class:`repro.net.flow.FlowTable`; exposes export/import hooks so an
  OpenNF-style framework could migrate state between OBI replicas.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.net.flow import FiveTuple, Flow
from repro.net.packet import Packet
from repro.obi.flowstate import (
    CheckpointRestore,
    FlowStateCheckpointer,
    FlowStatePolicy,
    FlowStateTable,
)


class MetadataCodec:
    """Serializes the per-packet metadata store for inter-OBI transfer.

    The wire form is compact JSON — the paper estimates "a few bytes" per
    packet since metadata usually only names the processing-graph path
    the next OBI should follow.
    """

    @staticmethod
    def encode(metadata: dict[str, Any], keys: list[str] | None = None) -> bytes:
        """Encode ``metadata`` (optionally only ``keys``) to bytes."""
        if keys is not None:
            metadata = {key: metadata[key] for key in keys if key in metadata}
        return json.dumps(metadata, separators=(",", ":"), sort_keys=True).encode("utf-8")

    @staticmethod
    def decode(blob: bytes) -> dict[str, Any]:
        data = json.loads(blob)
        if not isinstance(data, dict):
            raise ValueError("metadata blob must decode to an object")
        return data


@dataclass
class ImportReport:
    """Outcome of a checked state import (migration/handoff)."""

    #: Entries installed or merged into the table.
    imported: int = 0
    #: Of those, entries that merged into an already-present flow.
    duplicates: int = 0
    #: Entries refused, keyed by reason ("malformed", "expired",
    #: "capacity").
    rejected: dict[str, int] = field(default_factory=dict)

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


class SessionStorage:
    """Flow-scoped key-value storage for stateful applications.

    "This storage is attached to a flow and is valid as long as the flow
    is alive" — entries vanish when the underlying flow expires from the
    flow table.

    Backed by :class:`repro.obi.flowstate.FlowStateTable`: entries are
    versioned, bounded by an exhaustion-defense policy, optionally
    journaled to a crash-safe checkpoint, and every state write can
    invalidate exactly the affected flow's fast-path cache entry (see
    :meth:`bind_flow_cache`).
    """

    def __init__(
        self,
        idle_timeout: float = 60.0,
        bidirectional: bool = True,
        max_flows: int | None = 1_000_000,
        policy: FlowStatePolicy | None = None,
        checkpoint: FlowStateCheckpointer | None = None,
    ) -> None:
        if policy is None:
            policy = FlowStatePolicy(max_entries=max_flows or 1_000_000)
        self.policy = policy
        self._flows = FlowStateTable(
            idle_timeout=idle_timeout,
            bidirectional=bidirectional,
            policy=policy,
        )
        self._flows.checkpoint = checkpoint
        #: Report from the most recent checked import (diagnostics).
        self.last_import: ImportReport | None = None

    @property
    def flow_table(self) -> FlowStateTable:
        return self._flows

    @property
    def checkpoint(self) -> FlowStateCheckpointer | None:
        return self._flows.checkpoint

    @property
    def state_generation(self) -> int:
        return self._flows.state_generation

    @property
    def under_degradation(self) -> bool:
        """Occupancy above the degradation watermark (exhaustion)."""
        return self._flows.under_degradation

    def bind_flow_cache(self, flow_cache: Any) -> None:
        """Route state changes to per-flow fast-path invalidation.

        Every version bump or entry removal invalidates only the cached
        decisions that read that flow's state — the whole-cache flush
        of earlier revisions is gone from this path.
        """
        self._flows.on_state_change = flow_cache.invalidate_flow

    def note_state_change(
        self,
        flow: Flow,
        reason: str,
        *,
        protected: bool | None = None,
        durable: bool = False,
    ) -> int:
        """Delegate to the table (see FlowStateTable.note_state_change)."""
        return self._flows.note_state_change(
            flow, reason, protected=protected, durable=durable
        )

    def observe(self, packet: Packet, now: float) -> None:
        """Track the packet's flow (called by FlowTracker blocks)."""
        self._flows.observe(packet, now)

    def get(self, packet: Packet, key: str, default: Any = None) -> Any:
        tuple5 = FiveTuple.of(packet)
        if tuple5 is None:
            return default
        flow = self._flows.lookup(tuple5)
        if flow is None:
            return default
        return flow.session.get(key, default)

    def put(self, packet: Packet, key: str, value: Any, now: float) -> bool:
        """Store ``key: value`` for the packet's flow; creates the flow.

        A write that actually changes the value is a durable, versioned
        state change: it is journaled (when checkpointing is on) and
        invalidates the flow's cached decisions. Idempotent re-writes of
        the same value are free.
        """
        flow = self._flows.observe(packet, now)
        if flow is None:
            return False
        # observe() also counted the packet; undo the double count since
        # this is a storage operation, not a forwarding observation.
        flow.packets -= 1
        flow.bytes -= len(packet)
        if key in flow.session and flow.session[key] == value:
            return True
        flow.session[key] = value
        self._flows.note_state_change(flow, f"session:{key}", durable=True)
        return True

    def expire(self, now: float) -> int:
        """Evict idle flows; returns how many were removed."""
        return len(self._flows.expire(now))

    def flow_count(self) -> int:
        return len(self._flows)

    def export_state(self) -> dict[str, dict[str, Any]]:
        """Human-readable snapshot keyed by flow string (debugging)."""
        return self._flows.export_state()

    def export_entries(self, now: float | None = None) -> list[dict[str, Any]]:
        """Structured snapshot for OpenNF-style migration (paper §3.4.2).

        Each entry carries the flow key, session data, timestamps,
        version, and protection flag, so an importing OBI can
        reconstruct live flow entries exactly. With ``now`` given, each
        entry is stamped with its idle ``age`` — importers on another
        machine cannot compare raw clocks, but an age lets them reject
        entries that were already dead at export time. The age reference
        is the table's own most recent activity (never later than
        ``now``): entries whose timestamps were written against a
        different clock than the exporter's would otherwise all look
        ancient, and an idle-but-consistent table must not have its
        whole state condemned by the wall clock.
        """
        flows = list(self._flows)
        if now is None or not flows:
            return [self._flows.export_entry(flow) for flow in flows]
        reference = min(now, max(flow.last_seen for flow in flows))
        return [
            self._flows.export_entry(flow, now=reference) for flow in flows
        ]

    def import_entries(self, entries: list[dict[str, Any]], now: float) -> int:
        """Install exported flow entries; returns how many were imported.

        Compatibility wrapper over :meth:`import_entries_checked`.
        """
        return self.import_entries_checked(entries, now).imported

    def import_entries_checked(
        self, entries: list[dict[str, Any]], now: float
    ) -> ImportReport:
        """Install exported flow entries, validating each one.

        Existing session entries for the same flow are merged (imported
        values win; versions take the max, protection is sticky), so
        repeated migrations are idempotent. Timestamps are refreshed to
        ``now`` so imported flows do not expire immediately on the new
        OBI. Rejected entries are counted by reason:

        * ``malformed`` — not a dict, bad/missing key, non-dict session;
        * ``expired`` — exporter-stamped ``age`` beyond the idle timeout
          (the flow was already dead when exported);
        * ``capacity`` — the exhaustion-defense policy refused the
          insert (table full of protected entries or budget exhausted).
        """
        report = ImportReport()
        for entry in entries:
            try:
                if not isinstance(entry, dict):
                    raise TypeError("entry must be a dict")
                key = self._flows.canonical_key(
                    FiveTuple.from_dict(entry["key"])
                )
                session = entry.get("session", {})
                if not isinstance(session, dict):
                    raise TypeError("session must be a dict")
            except (KeyError, TypeError, ValueError):
                report.reject("malformed")
                continue
            if float(entry.get("age", 0.0)) > self._flows.idle_timeout:
                report.reject("expired")
                continue
            flow = self._flows.lookup(key)
            if flow is None:
                flow = Flow(
                    key=key,
                    created_at=float(entry.get("created_at", now)),
                    last_seen=now,
                    packets=int(entry.get("packets", 0)),
                    bytes=int(entry.get("bytes", 0)),
                    version=int(entry.get("version", 0)),
                    protected=bool(entry.get("protected", False)),
                )
                flow.session.update(session)
                if not self._flows.install(flow):
                    report.reject("capacity")
                    continue
            else:
                flow.session.update(session)
                flow.last_seen = now
                flow.version = max(flow.version, int(entry.get("version", 0)))
                if entry.get("protected") and not flow.protected:
                    self._flows.note_state_change(
                        flow, "import", protected=True
                    )
                report.duplicates += 1
            report.imported += 1
        self.last_import = report
        return report

    def restore(self, result: CheckpointRestore, now: float) -> int:
        """Install a checkpoint fold after a crash (see FlowStateTable)."""
        return self._flows.restore(result, now)
