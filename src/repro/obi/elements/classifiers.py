"""Classifier elements.

The HeaderClassifier element demonstrates the protocol's implementation
selection (paper §2.1): the abstract block can be realized by a linear
scan, a software trie, or a simulated TCAM; the controller picks via the
block's ``implementation`` attribute, or the OBI applies its default
(the trie).
"""

from __future__ import annotations

from typing import Any

from repro.core.classify.header import HeaderRuleSet, LinearMatcher
from repro.core.classify.payload import HeaderPayloadRuleSet
from repro.core.classify.regex import RegexRuleSet
from repro.core.classify.tcam import TcamMatcher
from repro.core.classify.trie import TrieMatcher
from repro.net.flow import FiveTuple
from repro.net.http import looks_like_http
from repro.net.ip import IpProto
from repro.net.packet import Packet
from repro.obi.engine import Element

_MATCHER_IMPLEMENTATIONS = {
    "linear": LinearMatcher,
    "trie": TrieMatcher,
    "tcam": TcamMatcher,
}

DEFAULT_HEADER_IMPLEMENTATION = "trie"


class HeaderClassifierElement(Element):
    """First-match header classification with selectable implementation."""

    # Rules consult only flow-key fields (prefixes, ports, proto, vlan,
    # dscp): the match is a pure function of the flow key and the fast
    # path may record and replay it.
    caches_decision = True

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._ruleset = HeaderRuleSet.from_config(config)
        implementation = config.get("implementation", DEFAULT_HEADER_IMPLEMENTATION)
        matcher_cls = _MATCHER_IMPLEMENTATIONS.get(implementation)
        if matcher_cls is None:
            raise ValueError(f"unknown HeaderClassifier implementation: {implementation!r}")
        self._matcher = matcher_cls(self._ruleset)
        self.match_counts: dict[int, int] = {}

    @property
    def implementation(self) -> str:
        return self._matcher.implementation

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        port = self._matcher.match(packet)
        self.match_counts[port] = self.match_counts.get(port, 0) + 1
        return [(port, packet)]

    def replay_decision(self, port: int, packet: Packet) -> None:
        # Keep the match_counts handle identical to a slow-path run.
        self.match_counts[port] = self.match_counts.get(port, 0) + 1

    def read_handle(self, name: str) -> Any:
        if name == "match_counts":
            return dict(self.match_counts)
        if name == "rules":
            return self._ruleset.to_config()
        return super().read_handle(name)

    def write_handle(self, name: str, value: Any) -> None:
        if name == "rules":
            self._ruleset = HeaderRuleSet.from_config(value)
            self._matcher = type(self._matcher)(self._ruleset)
            return
        super().write_handle(name, value)


class RegexClassifierElement(Element):
    """Payload classification against a pattern set (DPI)."""

    # Routing depends on payload bytes, which the flow key does not
    # cover: a visit poisons the flow-decision cache entry.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._ruleset = RegexRuleSet.from_config(config)
        self.match_counts: dict[int, int] = {}

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        port = self._ruleset.classify(packet.payload)
        self.match_counts[port] = self.match_counts.get(port, 0) + 1
        return [(port, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "match_counts":
            return dict(self.match_counts)
        if name == "rules":
            return self._ruleset.to_config()
        return super().read_handle(name)

    def write_handle(self, name: str, value: Any) -> None:
        if name == "rules":
            self._ruleset = RegexRuleSet.from_config(value)
            return
        super().write_handle(name, value)


class HeaderPayloadClassifierElement(Element):
    """Combined header + payload rules (IPS-style, paper Table 1)."""

    # Payload-dependent routing: poisons the flow-decision cache.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._ruleset = HeaderPayloadRuleSet.from_config(config)
        self.match_counts: dict[int, int] = {}

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        port = self._ruleset.classify(packet)
        self.match_counts[port] = self.match_counts.get(port, 0) + 1
        return [(port, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "match_counts":
            return dict(self.match_counts)
        if name == "rules":
            return self._ruleset.to_config()
        return super().read_handle(name)

    def write_handle(self, name: str, value: Any) -> None:
        if name == "rules":
            self._ruleset = HeaderPayloadRuleSet.from_config(value)
            return
        super().write_handle(name, value)


class ProtocolAnalyzerElement(Element):
    """Classifies by identified application protocol.

    ``protocols`` maps protocol names to output ports, e.g.
    ``{"http": 1, "dns": 2}``; unidentified traffic goes to
    ``default_port``. Identification is lightweight: transport protocol,
    well-known ports, and HTTP payload heuristics.
    """

    # The HTTP heuristic reads payload bytes: poisons the cache.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._ports = {
            str(proto).lower(): int(port)
            for proto, port in config.get("protocols", {}).items()
        }
        self._default = int(config.get("default_port", 0))

    def identify(self, packet: Packet) -> str:
        ipv4 = packet.ipv4
        if ipv4 is None:
            return "non-ip"
        l4 = packet.l4
        if ipv4.proto == IpProto.TCP and l4 is not None:
            if looks_like_http(packet.payload):
                return "http"
            if 443 in (l4.src_port, l4.dst_port):
                return "tls"
            if 22 in (l4.src_port, l4.dst_port):
                return "ssh"
            return "tcp"
        if ipv4.proto == IpProto.UDP and l4 is not None:
            if 53 in (l4.src_port, l4.dst_port):
                return "dns"
            return "udp"
        if ipv4.proto == IpProto.ICMP:
            return "icmp"
        return "other"

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        protocol = self.identify(packet)
        return [(self._ports.get(protocol, self._default), packet)]


class FlowClassifierElement(Element):
    """Routes packets by a session-storage key set on their flow.

    ``rules`` maps values of session key ``key`` to output ports; flows
    without the key (or unknown values) take ``default_port``. This is
    how a stateful application (e.g. an IPS that tagged a flow as
    suspicious) steers subsequent packets of the flow.
    """

    # Session state changes between packets of one flow (that is the
    # point of the block): never cache past it.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._key = config.get("key", "class")
        self._ports = {
            str(value): int(port)
            for value, port in (config.get("rules") or {}).items()
        }
        self._default = int(config.get("default_port", 0))

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        value = None
        if self.context is not None:
            value = self.context.session.get(packet, self._key)
        port = self._ports.get(str(value), self._default) if value is not None else self._default
        return [(port, packet)]


class VlanClassifierElement(Element):
    """Classifies by 802.1Q VLAN id; rules map vid -> port."""

    # The outer vid is part of the flow key (tag pops are uncacheable),
    # so the decision is flow-deterministic.
    caches_decision = True

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._ports: dict[int, int] = {}
        for rule in config.get("rules", ()):
            self._ports[int(rule["vlan"])] = int(rule.get("port", 0))
        self._default = int(config.get("default_port", 0))

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        eth = packet.eth
        tag = eth.vlan if eth is not None else None
        if tag is None:
            return [(self._default, packet)]
        return [(self._ports.get(tag.vid, self._default), packet)]


class MetadataClassifierElement(Element):
    """Routes on a key in the packet's metadata storage.

    The downstream half of a split processing graph (paper Figure 6(b))
    starts with this block: the upstream OBI wrote its classification
    result into the metadata, this block resumes processing on the
    matching path. ``rules`` maps metadata values to output ports.
    """

    # The routed-on metadata key is folded into the flow key by the
    # engine (the graph's "metadata scope"), making the decision
    # flow-deterministic; metadata writers that are not constant
    # (tunnel decaps) are themselves uncacheable and poison the entry.
    caches_decision = True

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._key = config["key"]
        self.metadata_key = self._key
        self._ports = {
            str(value): int(port)
            for value, port in (config.get("rules") or {}).items()
        }
        self._default = int(config.get("default_port", 0))

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        value = packet.metadata.get(self._key)
        if value is None:
            return [(self._default, packet)]
        return [(self._ports.get(str(value), self._default), packet)]


def flow_of(packet: Packet) -> FiveTuple | None:
    """Convenience re-export used by tests."""
    return FiveTuple.of(packet)
