"""Connection-tracking stateful firewall (the resilient-flow-state proof).

The Conntrack block is the stateful NF the flow-state subsystem exists
for: a SYN/EST/FIN state machine whose per-flow state lives in session
storage (a :class:`~repro.obi.flowstate.FlowStateTable`), so established
verdicts are versioned, bounded by the exhaustion-defense policy,
journaled to a crash-safe checkpoint, and handed off to a failover
survivor. Ports: 0 = pass, 1 = drop.

State machine (session key ``ct_state``)::

    TCP:  (none) --SYN--> syn --SYN|ACK(reply)--> synack
          --ACK(initiator)--> established --FIN--> fin_wait --FIN/RST--> closed
    UDP/other: (none) --> new --reply--> established

Establishment marks the flow *protected* (never evicted under
state-pressure) and *durable* (journaled); teardown transitions are
durable too, so a restore reflects closures. Packets that match no
state and are not connection-opening are invalid and dropped (configur-
able via ``drop_invalid``); a new flow the exhausted table refuses is
treated the same way — the visible degradation mode is "new connections
fail, established connections keep working".

Fast-path contract: the element records its own decision
(``records_own_decision``) — only the established steady state installs
a cacheable verdict, tagged with the flow's state version via
``note_flow_state``. Every other state only tags the traversal, so the
entry dies the moment the flow transitions. :meth:`replay_decision`
still runs teardown detection, keeping fast-path effects and handles
byte-identical to a slow-path run.
"""

from __future__ import annotations

from typing import Any

from repro.net.flow import FiveTuple, Flow
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags
from repro.obi.engine import Element

PORT_PASS = 0
PORT_DROP = 1


class ConntrackElement(Element):
    caches_decision = True
    records_own_decision = True
    # "flush" removals fire per-flow invalidation hooks themselves, so
    # the handle needs no whole-cache flush.
    ROUTING_NEUTRAL_HANDLES = frozenset({"reset_counts", "flush"})

    def __init__(
        self, name: str, config: dict[str, Any], origin_app: str | None = None
    ) -> None:
        super().__init__(name, config, origin_app)
        self.drop_invalid = bool(config.get("drop_invalid", True))
        #: Per-packet tally of the conntrack state the packet arrived in
        #: ("none" for stateless packets), mirrored on replay.
        self.state_counts: dict[str, int] = {}
        self.transitions = 0
        self.invalid_dropped = 0
        #: New connections refused because the state table would not
        #: admit an entry (exhaustion defense in action).
        self.state_drops = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _table(self):
        return self.context.session.flow_table

    def _count_state(self, state: str | None) -> None:
        label = state or "none"
        self.state_counts[label] = self.state_counts.get(label, 0) + 1

    def _transition(
        self,
        flow: Flow,
        new_state: str,
        *,
        protected: bool | None = None,
        durable: bool = False,
    ) -> None:
        old = flow.session.get("ct_state")
        flow.session["ct_state"] = new_state
        self.transitions += 1
        self._table().note_state_change(
            flow, f"ct:{old}->{new_state}", protected=protected, durable=durable
        )
        # This traversal mutated the state it read: whatever is being
        # recorded right now reflects the pre-transition world. Install
        # nothing; the next packet records against the settled state.
        recorder = self.context.recorder if self.context is not None else None
        if recorder is not None:
            recorder.abandon()

    def _drop(self, packet: Packet) -> list[tuple[int, Packet]]:
        if not self.drop_invalid:
            return [(PORT_PASS, packet)]
        self.invalid_dropped += 1
        return [(PORT_DROP, packet)]

    @staticmethod
    def _from_initiator(flow: Flow, tuple5: FiveTuple) -> bool:
        return flow.session.get("ct_init") == [tuple5.src_ip, tuple5.src_port]

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        context = self.context
        tuple5 = FiveTuple.of(packet)
        if tuple5 is None or context is None:
            # Non-IP frames carry no connection: pass untracked.
            self._count_state("none")
            return [(PORT_PASS, packet)]
        now = context.now
        table = self._table()
        flow = table.observe(packet, now)
        recorder = context.recorder
        if flow is None:
            # The exhaustion policy refused a new entry. The verdict
            # depends on table occupancy, not the flow: never cache it.
            self.state_drops += 1
            self._count_state("none")
            if recorder is not None:
                recorder.poison()
            return self._drop(packet)
        state = flow.session.get("ct_state")
        self._count_state(state)
        if recorder is not None:
            # Tag the traversal with the state it read: whatever gets
            # installed for this flow key dies on its next transition.
            recorder.note_flow_state(flow.key, flow.version)

        tcp = packet.tcp
        if tcp is None:
            return self._process_connectionless(flow, tuple5, state, packet)

        syn = tcp.has_flag(TcpFlags.SYN)
        ack = tcp.has_flag(TcpFlags.ACK)
        fin = tcp.has_flag(TcpFlags.FIN)
        rst = tcp.has_flag(TcpFlags.RST)
        initiator = self._from_initiator(flow, tuple5)

        if state is None:
            if syn and not ack:
                flow.session["ct_init"] = [tuple5.src_ip, tuple5.src_port]
                self._transition(flow, "syn")
                return [(PORT_PASS, packet)]
            # Mid-stream packet with no state (stray ACK, scan): invalid.
            return self._drop(packet)
        if state == "syn":
            if rst:
                self._transition(flow, "closed")
                return [(PORT_PASS, packet)]
            if syn and ack and not initiator:
                self._transition(flow, "synack")
                return [(PORT_PASS, packet)]
            if syn and not ack and initiator:
                # SYN retransmission: no transition.
                return [(PORT_PASS, packet)]
            return self._drop(packet)
        if state == "synack":
            if rst:
                self._transition(flow, "closed")
                return [(PORT_PASS, packet)]
            if ack and not syn and initiator:
                self._transition(
                    flow, "established", protected=True, durable=True
                )
                return [(PORT_PASS, packet)]
            if syn and ack and not initiator:
                # SYN|ACK retransmission: no transition.
                return [(PORT_PASS, packet)]
            return self._drop(packet)
        if state == "established":
            if rst:
                self._transition(flow, "closed", protected=False, durable=True)
                return [(PORT_PASS, packet)]
            if fin:
                self._transition(flow, "fin_wait", durable=True)
                return [(PORT_PASS, packet)]
            # Steady state: the verdict is a pure function of flow key +
            # flow state — safe to cache (version tagged above).
            if recorder is not None:
                recorder.record(self.name, PORT_PASS)
            return [(PORT_PASS, packet)]
        if state == "fin_wait":
            if rst or fin:
                self._transition(flow, "closed", protected=False, durable=True)
            # The closing handshake's remaining ACKs are legitimate.
            return [(PORT_PASS, packet)]
        # state == "closed" (or unknown): the connection is over; late
        # packets are invalid.
        return self._drop(packet)

    def _process_connectionless(
        self, flow: Flow, tuple5: FiveTuple, state: str | None, packet: Packet
    ) -> list[tuple[int, Packet]]:
        recorder = self.context.recorder if self.context is not None else None
        if state is None:
            flow.session["ct_init"] = [tuple5.src_ip, tuple5.src_port]
            self._transition(flow, "new")
            return [(PORT_PASS, packet)]
        if state == "new":
            if not self._from_initiator(flow, tuple5):
                # First reply: a bidirectional exchange is established.
                self._transition(
                    flow, "established", protected=True, durable=True
                )
            return [(PORT_PASS, packet)]
        if state == "established":
            if recorder is not None:
                recorder.record(self.name, PORT_PASS)
            return [(PORT_PASS, packet)]
        return self._drop(packet)

    def replay_decision(self, port: int, packet: Packet) -> None:
        """Fast-path replay of an established-flow pass verdict.

        Must leave every handle and state bit exactly as a slow-path
        run would: the flow is touched (packet/byte accounting), the
        state tally bumped, and — critically — teardown flags still
        drive the FIN/RST transitions. The transition's version bump
        invalidates this very cache entry, so the *next* packet takes
        the slow path against the new state.
        """
        context = self.context
        if context is None:
            return
        now = context.now
        flow = self._table().observe(packet, now)
        if flow is None:
            return
        state = flow.session.get("ct_state")
        self._count_state(state)
        if state != "established":
            # Unreachable in practice (transitions invalidate the cache
            # entry before another packet can replay it), but never let
            # a stale replay advance the machine from the wrong state.
            return
        tcp = packet.tcp
        if tcp is not None:
            if tcp.has_flag(TcpFlags.RST):
                self._transition(flow, "closed", protected=False, durable=True)
            elif tcp.has_flag(TcpFlags.FIN):
                self._transition(flow, "fin_wait", durable=True)

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------
    def read_handle(self, name: str) -> Any:
        if name == "state_counts":
            return dict(self.state_counts)
        if name == "transitions":
            return self.transitions
        if name == "invalid_dropped":
            return self.invalid_dropped
        if name == "state_drops":
            return self.state_drops
        if name == "established":
            return sum(
                1 for flow in self._table()
                if flow.session.get("ct_state") == "established"
            )
        return super().read_handle(name)

    def write_handle(self, name: str, value: Any) -> None:
        if name == "flush":
            table = self._table()
            for flow in [
                f for f in table if "ct_state" in f.session
            ]:
                table.remove(flow.key)
            return
        if name == "reset_counts":
            super().write_handle(name, value)
            self.state_counts.clear()
            self.transitions = 0
            self.invalid_dropped = 0
            self.state_drops = 0
            return
        super().write_handle(name, value)
