"""Metadata transfer elements: NSH/VXLAN encapsulation and SetMetadata.

These implement the distributed data plane of paper §3.1 and Figure 6:
when a processing graph is split across OBIs, the upstream OBI stores its
intermediate results (e.g. the header-classification outcome) in the
packet's metadata storage, encapsulates the metadata onto the wire, and
the downstream OBI decapsulates it and resumes processing mid-graph.
"""

from __future__ import annotations

from typing import Any

from repro.net.geneve import GeneveHeader
from repro.net.nsh import NSH_NEXT_PROTO_ETHERNET, NshHeader
from repro.net.packet import Packet
from repro.net.vxlan import decap_with_metadata, encap_with_metadata
from repro.obi.engine import Element
from repro.obi.storage import MetadataCodec


class SetMetadataElement(Element):
    """Writes constant values into the packet's metadata storage.

    This is how a classifier's outcome is recorded for the next OBI: the
    merged graph's branch for port *p* starts with
    ``SetMetadata {"values": {"classify_result": p}}``.
    """

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        packet.metadata.update(self.config.get("values", {}))
        return [(0, packet)]


class NshEncapsulateElement(Element):
    """Prepends an NSH header carrying the packet's metadata storage.

    Config: ``spi`` (service path id), optional ``metadata_keys`` (which
    keys to ship; default all), optional ``si`` (initial service index).
    """

    # Tunnel framing/metadata changes per packet: poisons the cache.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.spi = int(config["spi"])
        self.si = int(config.get("si", 255))
        self.metadata_keys = config.get("metadata_keys")

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        packet.rebuild()
        nsh = NshHeader(spi=self.spi, si=self.si, next_proto=NSH_NEXT_PROTO_ETHERNET)
        blob = MetadataCodec.encode(packet.metadata, self.metadata_keys)
        nsh.add_metadata(blob)
        packet.data = nsh.serialize() + packet.data
        packet.invalidate()
        return [(0, packet)]


class NshDecapsulateElement(Element):
    """Strips the NSH header and restores the metadata storage."""

    # Restores metadata from wire bytes the flow key cannot see.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.decap_errors = 0

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        try:
            nsh = NshHeader.parse(packet.data)
        except ValueError:
            self.decap_errors += 1
            return [(0, packet)]
        blob = nsh.openbox_metadata()
        if blob is not None:
            try:
                packet.metadata.update(MetadataCodec.decode(blob))
            except ValueError:
                self.decap_errors += 1
        packet.data = packet.data[nsh.header_len:]
        packet.invalidate()
        return [(0, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "decap_errors":
            return self.decap_errors
        return super().read_handle(name)


class VxlanEncapsulateElement(Element):
    """VXLAN alternative to NSH (paper §3.1 lists VXLAN/Geneve/FlowTags)."""

    # Tunnel framing/metadata changes per packet: poisons the cache.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.vni = int(config.get("vni", 0))
        self.metadata_keys = config.get("metadata_keys")

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        packet.rebuild()
        blob = MetadataCodec.encode(packet.metadata, self.metadata_keys)
        packet.data = encap_with_metadata(self.vni, blob, packet.data)
        packet.invalidate()
        return [(0, packet)]


class GeneveEncapsulateElement(Element):
    """Geneve alternative: metadata rides as a native TLV option."""

    # Tunnel framing/metadata changes per packet: poisons the cache.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.vni = int(config.get("vni", 0))
        self.metadata_keys = config.get("metadata_keys")

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        packet.rebuild()
        geneve = GeneveHeader(vni=self.vni)
        geneve.add_metadata(MetadataCodec.encode(packet.metadata, self.metadata_keys))
        packet.data = geneve.serialize() + packet.data
        packet.invalidate()
        return [(0, packet)]


class GeneveDecapsulateElement(Element):
    """Strips Geneve encapsulation and restores metadata."""

    # Restores metadata from wire bytes the flow key cannot see.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.decap_errors = 0

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        try:
            geneve = GeneveHeader.parse(packet.data)
        except ValueError:
            self.decap_errors += 1
            return [(0, packet)]
        blob = geneve.openbox_metadata()
        if blob is not None:
            try:
                packet.metadata.update(MetadataCodec.decode(blob))
            except ValueError:
                self.decap_errors += 1
        packet.data = packet.data[geneve.header_len:]
        packet.invalidate()
        return [(0, packet)]


class VxlanDecapsulateElement(Element):
    """Strips VXLAN encapsulation and restores metadata."""

    # Restores metadata from wire bytes the flow key cannot see.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.decap_errors = 0

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        try:
            _header, blob, inner = decap_with_metadata(packet.data)
        except ValueError:
            self.decap_errors += 1
            return [(0, packet)]
        try:
            packet.metadata.update(MetadataCodec.decode(blob))
        except ValueError:
            self.decap_errors += 1
        packet.data = inner
        packet.invalidate()
        return [(0, packet)]
