"""Engine elements implementing the abstract processing blocks.

Each module implements one block family; :data:`element_registry` maps
abstract block-type names to element classes. The OBI's translation
layer (``repro.obi.translation``) consults this registry — and any
custom modules injected at runtime — when instantiating a processing
graph (paper §4.2: "a single OpenBox block is usually implemented using
multiple Click blocks"; in this Python engine the mapping is one element
per block, with the compound behaviour folded into the element).
"""

from repro.obi.elements.classifiers import (
    FlowClassifierElement,
    MetadataClassifierElement,
    HeaderClassifierElement,
    HeaderPayloadClassifierElement,
    ProtocolAnalyzerElement,
    RegexClassifierElement,
    VlanClassifierElement,
)
from repro.obi.elements.conntrack import ConntrackElement
from repro.obi.elements.metadata import (
    GeneveDecapsulateElement,
    GeneveEncapsulateElement,
    NshDecapsulateElement,
    NshEncapsulateElement,
    SetMetadataElement,
    VxlanDecapsulateElement,
    VxlanEncapsulateElement,
)
from repro.obi.elements.modifiers import (
    DecTtlElement,
    DefragmenterElement,
    FragmenterElement,
    Ipv4AddressTranslatorElement,
    NetworkHeaderFieldRewriterElement,
    StripEthernetElement,
    TcpPortTranslatorElement,
    VlanDecapsulateElement,
    VlanEncapsulateElement,
)
from repro.obi.elements.payload import (
    GzipCompressorElement,
    GzipDecompressorElement,
    HeaderPayloadRewriterElement,
    HttpCacheResponderElement,
    HtmlNormalizerElement,
    UrlNormalizerElement,
)
from repro.obi.elements.shapers import (
    BpsShaperElement,
    DelayShaperElement,
    PpsShaperElement,
    QueueElement,
    RedQueueElement,
)
from repro.obi.elements.statics import (
    AlertElement,
    CounterElement,
    FlowTrackerElement,
    LogElement,
    MirrorElement,
    SessionTagElement,
    StorePacketElement,
    TeeElement,
)
from repro.obi.elements.terminals import (
    DiscardElement,
    FromDeviceElement,
    FromDumpElement,
    SendToControllerElement,
    ToDeviceElement,
    ToDumpElement,
)

#: Abstract block type -> element class.
element_registry = {
    "FromDevice": FromDeviceElement,
    "ToDevice": ToDeviceElement,
    "Discard": DiscardElement,
    "FromDump": FromDumpElement,
    "ToDump": ToDumpElement,
    "SendToController": SendToControllerElement,
    "HeaderClassifier": HeaderClassifierElement,
    "RegexClassifier": RegexClassifierElement,
    "HeaderPayloadClassifier": HeaderPayloadClassifierElement,
    "ProtocolAnalyzer": ProtocolAnalyzerElement,
    "FlowClassifier": FlowClassifierElement,
    "Conntrack": ConntrackElement,
    "MetadataClassifier": MetadataClassifierElement,
    "VlanClassifier": VlanClassifierElement,
    "NetworkHeaderFieldRewriter": NetworkHeaderFieldRewriterElement,
    "Ipv4AddressTranslator": Ipv4AddressTranslatorElement,
    "TcpPortTranslator": TcpPortTranslatorElement,
    "DecTtl": DecTtlElement,
    "VlanEncapsulate": VlanEncapsulateElement,
    "VlanDecapsulate": VlanDecapsulateElement,
    "GzipDecompressor": GzipDecompressorElement,
    "GzipCompressor": GzipCompressorElement,
    "HtmlNormalizer": HtmlNormalizerElement,
    "UrlNormalizer": UrlNormalizerElement,
    "HeaderPayloadRewriter": HeaderPayloadRewriterElement,
    "HttpCacheResponder": HttpCacheResponderElement,
    "NshEncapsulate": NshEncapsulateElement,
    "NshDecapsulate": NshDecapsulateElement,
    "VxlanEncapsulate": VxlanEncapsulateElement,
    "VxlanDecapsulate": VxlanDecapsulateElement,
    "GeneveEncapsulate": GeneveEncapsulateElement,
    "GeneveDecapsulate": GeneveDecapsulateElement,
    "SetMetadata": SetMetadataElement,
    "StripEthernet": StripEthernetElement,
    "Fragmenter": FragmenterElement,
    "Defragmenter": DefragmenterElement,
    "BpsShaper": BpsShaperElement,
    "PpsShaper": PpsShaperElement,
    "Queue": QueueElement,
    "RedQueue": RedQueueElement,
    "DelayShaper": DelayShaperElement,
    "Alert": AlertElement,
    "Log": LogElement,
    "Counter": CounterElement,
    "FlowTracker": FlowTrackerElement,
    "SessionTag": SessionTagElement,
    "StorePacket": StorePacketElement,
    "Mirror": MirrorElement,
    "Tee": TeeElement,
}

__all__ = ["element_registry"]
