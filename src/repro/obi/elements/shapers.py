"""Shaper elements: rate limiting and queue management.

Shapers run against the engine clock (``context.now``), which the network
simulator advances in virtual time — token buckets and RED thresholds
behave identically under simulated and wall-clock time.
"""

from __future__ import annotations

import random
from typing import Any

from repro.net.packet import Packet
from repro.obi.engine import Element


class _TokenBucket:
    """A token bucket refilled continuously at ``rate`` units/second."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = max(burst, 1.0)
        self.tokens = self.burst
        self._last = None  # type: float | None

    def consume(self, amount: float, now: float) -> bool:
        if self._last is None:
            self._last = now
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


class _ShaperBase(Element):
    """Common drop accounting for shapers."""

    # Rate-limit verdicts depend on clock and bucket state, not the
    # flow key (DelayShaper, a pure timestamp shift, stays cacheable).
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.dropped = 0

    def _drop(self, packet: Packet) -> list[tuple[int, Packet]]:
        self.dropped += 1
        outcome = self.context.current if self.context is not None else None
        if outcome is not None:
            outcome.dropped = True
        return []

    def read_handle(self, name: str) -> Any:
        if name == "dropped":
            return self.dropped
        return super().read_handle(name)


class BpsShaperElement(_ShaperBase):
    """Limits throughput to ``bps`` bits per second (token bucket)."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        bps = float(config["bps"])
        burst = float(config.get("burst", bps / 4))
        self._bucket = _TokenBucket(rate=bps, burst=burst)

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        bits = len(packet) * 8
        if self._bucket.consume(bits, self.context.now):
            return [(0, packet)]
        return self._drop(packet)

    def read_handle(self, name: str) -> Any:
        if name == "rate":
            return self._bucket.rate
        return super().read_handle(name)

    def write_handle(self, name: str, value: Any) -> None:
        if name == "rate":
            self._bucket.rate = float(value)
            return
        super().write_handle(name, value)


class PpsShaperElement(_ShaperBase):
    """Limits throughput to ``pps`` packets per second."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        pps = float(config["pps"])
        burst = float(config.get("burst", max(pps / 10, 1)))
        self._bucket = _TokenBucket(rate=pps, burst=burst)

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        if self._bucket.consume(1.0, self.context.now):
            return [(0, packet)]
        return self._drop(packet)

    def write_handle(self, name: str, value: Any) -> None:
        if name == "rate":
            self._bucket.rate = float(value)
            return
        super().write_handle(name, value)


class QueueElement(_ShaperBase):
    """FIFO with tail drop, modelled against a drain rate.

    In a synchronous push engine the queue cannot literally buffer, so it
    models occupancy: packets arriving while the modelled backlog exceeds
    ``capacity`` are tail-dropped; otherwise they pass through. Backlog
    drains at ``drain_pps`` packets/second of engine-clock time.
    """

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.capacity = int(config.get("capacity", 1000))
        self.drain_pps = float(config.get("drain_pps", 1_000_000.0))
        self._backlog = 0.0
        self._last: float | None = None

    def _update_backlog(self, now: float) -> None:
        if self._last is not None:
            self._backlog = max(0.0, self._backlog - (now - self._last) * self.drain_pps)
        self._last = now

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        self._update_backlog(self.context.now)
        if self._backlog >= self.capacity:
            return self._drop(packet)
        self._backlog += 1
        return [(0, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "backlog":
            return self._backlog
        return super().read_handle(name)


class RedQueueElement(QueueElement):
    """Random early detection over the modelled backlog."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.min_threshold = float(config.get("min_threshold", self.capacity * 0.3))
        self.max_threshold = float(config.get("max_threshold", self.capacity * 0.9))
        if self.min_threshold >= self.max_threshold:
            raise ValueError("min_threshold must be below max_threshold")
        self._random = random.Random(int(config.get("seed", 0)))

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        self._update_backlog(self.context.now)
        backlog = self._backlog
        if backlog >= self.max_threshold:
            return self._drop(packet)
        if backlog > self.min_threshold:
            drop_probability = (
                (backlog - self.min_threshold)
                / (self.max_threshold - self.min_threshold)
            )
            if self._random.random() < drop_probability:
                return self._drop(packet)
        self._backlog += 1
        return [(0, packet)]


class DelayShaperElement(Element):
    """Adds a fixed modelled delay to the packet's timestamp."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.delay = float(config.get("delay", 0.0))

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        packet.timestamp += self.delay
        return [(0, packet)]
