"""Payload-transforming modifier elements (HTTP-oriented).

These blocks are what web-optimizer / IPS-preprocessing NFs need: gzip
decompression before DPI (Snort stores "gzip window data" per flow —
paper §3.4.2), HTML/URL normalization to defeat evasion, and raw payload
substitution.
"""

from __future__ import annotations

import gzip
import re
from typing import Any
from urllib.parse import unquote

from repro.net.http import HttpRequest, parse_http, serialize_http
from repro.net.packet import Packet
from repro.obi.engine import Element


class GzipDecompressorElement(Element):
    """Decompresses gzip-encoded HTTP bodies in place.

    Single-packet messages only (streaming reassembly is out of scope for
    the engine; the flow tracker records partial state for NFs that need
    it). Malformed gzip leaves the packet untouched and bumps ``errors``.
    """

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.decompressed = 0
        self.errors = 0

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        message = parse_http(packet.payload)
        if message is None or not message.is_gzip or not message.body:
            return [(0, packet)]
        try:
            body = gzip.decompress(message.body)
        except (OSError, EOFError):
            self.errors += 1
            return [(0, packet)]
        message.body = body
        message.headers = {
            key: value for key, value in message.headers.items()
            if key.lower() != "content-encoding"
        }
        message.headers["Content-Length"] = str(len(body))
        packet.set_payload(serialize_http(message))
        self.decompressed += 1
        return [(0, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "errors":
            return self.errors
        if name == "decompressed":
            return self.decompressed
        return super().read_handle(name)


class GzipCompressorElement(Element):
    """Compresses uncompressed HTTP bodies with gzip."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.compressed = 0

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        message = parse_http(packet.payload)
        if message is None or message.is_gzip or not message.body:
            return [(0, packet)]
        message.body = gzip.compress(message.body, mtime=0)
        message.headers["Content-Encoding"] = "gzip"
        message.headers["Content-Length"] = str(len(message.body))
        packet.set_payload(serialize_http(message))
        self.compressed += 1
        return [(0, packet)]


_WHITESPACE_RUNS = re.compile(rb"[ \t\r\n]+")
_HTML_COMMENTS = re.compile(rb"<!--.*?-->", re.DOTALL)


class HtmlNormalizerElement(Element):
    """Normalizes HTML bodies: lowercases tags, strips comments,
    collapses whitespace — the canonical anti-evasion preprocessing."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.normalized = 0

    @staticmethod
    def normalize(body: bytes) -> bytes:
        body = _HTML_COMMENTS.sub(b"", body)
        body = _WHITESPACE_RUNS.sub(b" ", body)
        # Lowercase tag names only, leaving text content intact.
        return re.sub(
            rb"</?[A-Za-z][A-Za-z0-9]*",
            lambda match: match.group(0).lower(),
            body,
        ).strip()

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        message = parse_http(packet.payload)
        if (
            message is None
            or message.is_gzip
            or message.content_type not in ("text/html", "")
            or not message.body
        ):
            return [(0, packet)]
        normalized = self.normalize(message.body)
        if normalized != message.body:
            message.body = normalized
            message.headers["Content-Length"] = str(len(normalized))
            packet.set_payload(serialize_http(message))
            self.normalized += 1
        return [(0, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "normalized":
            return self.normalized
        return super().read_handle(name)


class UrlNormalizerElement(Element):
    """Percent-decodes and squashes ``.``/``..`` segments in request URIs."""

    @staticmethod
    def normalize(uri: str) -> str:
        path, sep, query = uri.partition("?")
        path = unquote(path)
        segments: list[str] = []
        for segment in path.split("/"):
            if segment in ("", "."):
                continue
            if segment == "..":
                if segments:
                    segments.pop()
                continue
            segments.append(segment)
        normalized = "/" + "/".join(segments)
        return normalized + sep + query

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        message = parse_http(packet.payload)
        if not isinstance(message, HttpRequest):
            return [(0, packet)]
        normalized = self.normalize(message.uri)
        if normalized != message.uri:
            message.uri = normalized
            packet.set_payload(serialize_http(message))
        return [(0, packet)]


class HttpCacheResponderElement(Element):
    """Serves cached pages by synthesizing HTTP responses in the data plane.

    The paper's web cache: "If an HTTP request matches cached content,
    the web cache drops the request and returns the cached content to
    the sender." Config ``cache`` maps ``host`` to ``{uri: body}``.
    On a hit, the request is absorbed and a fully-formed response packet
    (Ethernet/IP/TCP swapped, correct ACK bookkeeping, HTTP 200 body)
    is emitted on port 1 — wire that port back toward the client.
    Misses pass through unchanged on port 0.
    """

    # Hit-or-miss routing depends on payload and mutable cache state.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.cache: dict[str, dict[str, str]] = {
            str(host).lower(): {str(uri): str(body) for uri, body in pages.items()}
            for host, pages in config.get("cache", {}).items()
        }
        self.hits = 0
        self.misses = 0

    def _lookup(self, packet: Packet) -> bytes | None:
        message = parse_http(packet.payload)
        if not isinstance(message, HttpRequest) or message.method != "GET":
            return None
        pages = self.cache.get(message.host.lower())
        if pages is None:
            return None
        uri = message.uri.split("?", 1)[0]
        body = pages.get(uri)
        return body.encode("latin-1") if body is not None else None

    def _synthesize_response(self, request: Packet, body: bytes) -> Packet:
        from repro.net.builder import make_tcp_packet
        from repro.net.ip import int_to_ip
        from repro.net.tcp import TcpFlags

        ipv4 = request.ipv4
        tcp = request.tcp
        payload = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/html\r\n"
            b"X-Cache: HIT\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        response = make_tcp_packet(
            int_to_ip(ipv4.dst), int_to_ip(ipv4.src),
            tcp.dst_port, tcp.src_port,
            payload=payload,
            flags=TcpFlags.ACK | TcpFlags.PSH,
            seq=tcp.ack,
            ack=(tcp.seq + len(request.payload)) & 0xFFFFFFFF,
            timestamp=request.timestamp,
        )
        return response

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        if packet.tcp is None:
            return [(0, packet)]
        body = self._lookup(packet)
        if body is None:
            self.misses += 1
            return [(0, packet)]
        self.hits += 1
        return [(1, self._synthesize_response(packet, body))]

    def read_handle(self, name: str) -> Any:
        if name == "hits":
            return self.hits
        if name == "misses":
            return self.misses
        return super().read_handle(name)


class HeaderPayloadRewriterElement(Element):
    """Literal payload substitution: config ``substitutions`` is a list of
    ``{"match": "...", "replace": "..."}`` applied in order."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._substitutions = [
            (entry["match"].encode("latin-1"), entry["replace"].encode("latin-1"))
            for entry in config.get("substitutions", ())
        ]

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        payload = packet.payload
        rewritten = payload
        for needle, replacement in self._substitutions:
            rewritten = rewritten.replace(needle, replacement)
        if rewritten != payload:
            packet.set_payload(rewritten)
        return [(0, packet)]
