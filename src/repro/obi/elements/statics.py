"""Static elements: side effects that never alter packet or path."""

from __future__ import annotations

from typing import Any

from repro.net.packet import Packet
from repro.obi.engine import AlertEvent, Element, LogEvent


class AlertElement(Element):
    """Raises an alert to the controller (paper Table 1, Figure 2).

    Alerts are recorded on the packet outcome; the OBI forwards them
    upstream as protocol ``Alert`` messages tagged with the originating
    application so the controller can demultiplex (paper §6).
    """

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        outcome = self.context.current if self.context is not None else None
        if outcome is not None:
            outcome.alerts.append(AlertEvent(
                block=self.name,
                origin_app=self.origin_app or self.config.get("origin_app"),
                message=self.config.get("message", ""),
                severity=self.config.get("severity", "info"),
                packet_summary=packet.summary(),
            ))
        return [(0, packet)]


class LogElement(Element):
    """Logs the packet to the logging service (paper §3.1)."""

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        event = LogEvent(
            block=self.name,
            origin_app=self.origin_app or self.config.get("origin_app"),
            message=self.config.get("message", ""),
            packet_summary=packet.summary(),
        )
        outcome = self.context.current if self.context is not None else None
        if outcome is not None:
            outcome.logs.append(event)
        if self.context is not None and self.context.log_service is not None:
            self.context.log_service.log(event)
        return [(0, packet)]


class CounterElement(Element):
    """Counts packets and bytes (handles only, no side effects)."""


class FlowTrackerElement(Element):
    """Records the packet's flow in the session storage (paper Table 1)."""

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        if self.context is not None:
            self.context.session.observe(packet, self.context.now)
        return [(0, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "flow_count":
            if self.context is None:
                return 0
            return self.context.session.flow_count()
        return super().read_handle(name)


class SessionTagElement(Element):
    """Writes a key/value into the packet's *flow* session entry.

    This is how stateful NFs record verdicts in the data plane (paper
    §3.4.2: Snort "stores information about each flow ... flags it may
    be marked with"): a downstream FlowClassifier then steers every
    subsequent packet of the flow by the tag.
    """

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.tagged = 0

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        if self.context is not None:
            if self.context.session.put(
                packet, self.config["key"], self.config["value"], self.context.now
            ):
                self.tagged += 1
        return [(0, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "tagged":
            return self.tagged
        return super().read_handle(name)


class StorePacketElement(Element):
    """Stores a copy of the packet in the storage service (cache or
    quarantine use cases, paper §3.1)."""

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        if self.context is not None and self.context.storage_service is not None:
            packet.rebuild()
            self.context.storage_service.store(
                namespace=self.config.get("namespace", "default"),
                data=packet.data,
            )
        return [(0, packet)]


class MirrorElement(Element):
    """Forwards on port 0 and copies the packet to port 1."""

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        return [(0, packet), (1, packet.clone())]


class TeeElement(Element):
    """Duplicates the packet to every configured output port."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.ports = int(config.get("ports", 2))

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        emissions = [(0, packet)]
        emissions.extend((port, packet.clone()) for port in range(1, self.ports))
        return emissions
