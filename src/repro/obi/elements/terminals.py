"""Terminal elements: packet sources and sinks."""

from __future__ import annotations

from typing import Any

from repro.net.packet import Packet
from repro.obi.engine import Element


class FromDeviceElement(Element):
    """Graph entry point; the engine injects packets here.

    In the paper's Click-based OBI this polls a NIC; in this reproduction
    packets arrive from the traffic generator or the network simulator,
    so the element simply forwards and tags the ingress device name.
    """

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        packet.ingress_port = self.config.get("devname", "")
        return [(0, packet)]


class ToDeviceElement(Element):
    """Graph exit: records the packet as emitted on a device."""

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        outcome = self.context.current if self.context is not None else None
        if outcome is not None:
            packet.rebuild()
            outcome.outputs.append((self.config.get("devname", ""), packet))
        return []


class DiscardElement(Element):
    """Drops every packet (the firewall's Drop action)."""

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        outcome = self.context.current if self.context is not None else None
        if outcome is not None:
            outcome.dropped = True
        return []

    def read_handle(self, name: str) -> Any:
        # "it can ask a Discard block how many packets it has dropped"
        return super().read_handle(name)


class FromDumpElement(Element):
    """Entry terminal for replayed capture files.

    Replay itself is driven by the traffic generator; within the graph
    this behaves like FromDevice with the dump filename as ingress tag.
    """

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        packet.ingress_port = self.config.get("filename", "")
        return [(0, packet)]


class ToDumpElement(Element):
    """Capture sink: buffers packets and, when ``filename`` is set,
    streams them into a classic pcap file."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.captured: list[bytes] = []
        self._writer = None
        self._stream = None

    def _ensure_writer(self):
        if self._writer is None and self.config.get("filename"):
            from repro.net.pcap import PcapWriter
            self._stream = open(self.config["filename"], "wb")
            self._writer = PcapWriter(self._stream)
        return self._writer

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        packet.rebuild()
        self.captured.append(packet.data)
        writer = self._ensure_writer()
        if writer is not None:
            writer.write(packet)
            self._stream.flush()
        return []

    def read_handle(self, name: str) -> Any:
        if name == "captured":
            return len(self.captured)
        return super().read_handle(name)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
            self._writer = None


class SendToControllerElement(Element):
    """Punts the packet to the control plane (packet-in analog)."""

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        outcome = self.context.current if self.context is not None else None
        if outcome is not None:
            outcome.punted = True
        return []
