"""Modifier elements: header rewriting, VLAN handling, TTL, NAT."""

from __future__ import annotations

from typing import Any

from repro.net.ethernet import EtherType, MacAddress, VlanTag
from repro.net.ip import ip_to_int
from repro.net.packet import Packet
from repro.obi.engine import Element

#: Header fields NetworkHeaderFieldRewriter can set, with coercers from
#: the JSON config representation to internal values.
_FIELD_SETTERS = {
    "ipv4_src": ("ipv4", "src", lambda v: ip_to_int(v) if isinstance(v, str) else int(v)),
    "ipv4_dst": ("ipv4", "dst", lambda v: ip_to_int(v) if isinstance(v, str) else int(v)),
    "ipv4_ttl": ("ipv4", "ttl", int),
    "ipv4_dscp": ("ipv4", "dscp", int),
    "tcp_src": ("l4", "src_port", int),
    "tcp_dst": ("l4", "dst_port", int),
    "udp_src": ("l4", "src_port", int),
    "udp_dst": ("l4", "dst_port", int),
    "eth_src": ("eth", "src", MacAddress.parse),
    "eth_dst": ("eth", "dst", MacAddress.parse),
}


class NetworkHeaderFieldRewriterElement(Element):
    """Sets header fields to constants; config ``fields`` maps name->value.

    Example: ``{"fields": {"ipv4_dst": "10.0.0.9", "tcp_dst": 8080}}``.
    """

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._setters: list[tuple[str, str, Any]] = []
        self._compile(config.get("fields", {}))

    def _compile(self, fields: dict[str, Any]) -> None:
        self._setters = []
        for field_name, raw_value in fields.items():
            spec = _FIELD_SETTERS.get(field_name)
            if spec is None:
                raise ValueError(f"unknown rewritable field: {field_name!r}")
            layer, attr, coerce = spec
            self._setters.append((layer, attr, coerce(raw_value)))

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        touched = False
        for layer, attr, value in self._setters:
            header = getattr(packet, layer)
            if header is None:
                continue
            setattr(header, attr, value)
            touched = True
        if touched:
            packet.mark_dirty()
            packet.rebuild()
        return [(0, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "fields":
            return dict(self.config.get("fields", {}))
        return super().read_handle(name)

    def write_handle(self, name: str, value: Any) -> None:
        if name == "fields":
            self._compile(value)
            self.config["fields"] = dict(value)
            return
        super().write_handle(name, value)


class Ipv4AddressTranslatorElement(Element):
    """Static NAT: rewrites addresses per a mapping table.

    ``mappings`` is a list of ``{"match": "a.b.c.d", "src"/"dst": "new"}``
    entries; the first entry whose ``match`` equals the packet's source
    (for ``src`` rewrites) or destination (for ``dst``) applies.
    """

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._src_map: dict[int, int] = {}
        self._dst_map: dict[int, int] = {}
        for entry in config.get("mappings", ()):
            match = ip_to_int(entry["match"])
            if "src" in entry:
                self._src_map[match] = ip_to_int(entry["src"])
            if "dst" in entry:
                self._dst_map[match] = ip_to_int(entry["dst"])

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        ipv4 = packet.ipv4
        if ipv4 is None:
            return [(0, packet)]
        touched = False
        if ipv4.src in self._src_map:
            ipv4.src = self._src_map[ipv4.src]
            touched = True
        if ipv4.dst in self._dst_map:
            ipv4.dst = self._dst_map[ipv4.dst]
            touched = True
        if touched:
            packet.mark_dirty()
            packet.rebuild()
        return [(0, packet)]


class TcpPortTranslatorElement(Element):
    """Rewrites L4 destination ports per ``{"mappings": {"80": 8080}}``."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self._mappings = {
            int(match): int(target)
            for match, target in (config.get("mappings") or {}).items()
        }

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        l4 = packet.l4
        if l4 is not None and l4.dst_port in self._mappings:
            l4.dst_port = self._mappings[l4.dst_port]
            packet.mark_dirty()
            packet.rebuild()
        return [(0, packet)]


class DecTtlElement(Element):
    """Decrements the IPv4 TTL; expired packets are absorbed (dropped)."""

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.expired = 0

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        ipv4 = packet.ipv4
        if ipv4 is None:
            return [(0, packet)]
        if ipv4.ttl <= 1:
            self.expired += 1
            outcome = self.context.current if self.context is not None else None
            if outcome is not None:
                outcome.dropped = True
            return []
        ipv4.ttl -= 1
        packet.mark_dirty()
        packet.rebuild()
        return [(0, packet)]

    def read_handle(self, name: str) -> Any:
        if name == "expired":
            return self.expired
        return super().read_handle(name)


class VlanEncapsulateElement(Element):
    """Pushes an 802.1Q tag (config ``vid``, optional ``pcp``)."""

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        eth = packet.eth
        if eth is not None:
            eth.push_vlan(VlanTag(
                vid=int(self.config["vid"]), pcp=int(self.config.get("pcp", 0))
            ))
            packet.mark_dirty()
            packet.rebuild()
        return [(0, packet)]


class VlanDecapsulateElement(Element):
    """Pops the outermost 802.1Q tag (no-op on untagged frames)."""

    # Reveals an inner tag the flow key (outer vid only) cannot see.
    cacheable = False

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        eth = packet.eth
        if eth is not None and eth.vlan_tags:
            eth.pop_vlan()
            packet.mark_dirty()
            packet.rebuild()
        return [(0, packet)]


class StripEthernetElement(Element):
    """Removes the Ethernet framing, leaving a bare IPv4 packet."""

    # Downstream re-parse of the bare IP frame is payload-dependent.
    cacheable = False

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        eth = packet.eth
        if eth is not None and eth.ethertype == EtherType.IPV4:
            packet.data = packet.data[eth.header_len:]
            packet.invalidate()
        return [(0, packet)]


class DefragmenterElement(Element):
    """Reassembles IPv4 fragments into whole packets.

    DPI on fragmented traffic is the oldest IPS evasion; real NFs
    normalize by reassembling before classification. Fragments are
    keyed by (src, dst, id, proto); a datagram is emitted once all its
    bytes (up to the final fragment's end) are present. Incomplete
    groups expire after ``timeout`` seconds of engine-clock time.
    """

    # Stateful reassembly: emission depends on fragments seen so far.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.timeout = float(config.get("timeout", 30.0))
        self.max_pending = int(config.get("max_pending", 1024))
        self.reassembled = 0
        self.expired = 0
        #: Fragment groups rejected because the claimed datagram would
        #: exceed the IPv4 maximum (ping-of-death style frames).
        self.oversized = 0
        # key -> (first_seen, {offset: bytes}, total_len | None, template pkt)
        self._pending: dict[tuple, list] = {}

    def _purge(self, now: float) -> None:
        stale = [key for key, entry in self._pending.items()
                 if now - entry[0] > self.timeout]
        for key in stale:
            del self._pending[key]
            self.expired += 1

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        ipv4 = packet.ipv4
        now = self.context.now if self.context is not None else 0.0
        self._purge(now)
        if ipv4 is None or (ipv4.frag_offset == 0 and not ipv4.more_fragments):
            return [(0, packet)]

        key = (ipv4.src, ipv4.dst, ipv4.identification, ipv4.proto)
        entry = self._pending.get(key)
        if entry is None:
            if len(self._pending) >= self.max_pending:
                # Table full: pass the fragment through unreassembled
                # rather than dropping it (fail-open normalization).
                return [(0, packet)]
            entry = [now, {}, None, packet]
            self._pending[key] = entry
        _first_seen, chunks, total_len, _template = entry

        eth = packet.eth
        header_len = (eth.header_len if eth is not None else 0) + ipv4.header_len
        body = packet.data[header_len:]
        chunks[ipv4.frag_offset * 8] = body
        if not ipv4.more_fragments:
            entry[2] = ipv4.frag_offset * 8 + len(body)
        total_len = entry[2]

        if total_len is None:
            return []
        if total_len + ipv4.header_len > 0xFFFF:
            # The final fragment claims a datagram larger than an IPv4
            # packet can be (ping-of-death). Drop the whole group — a
            # frame this hostile must not reach serialization.
            del self._pending[key]
            self.oversized += 1
            outcome = self.context.current if self.context is not None else None
            if outcome is not None:
                outcome.dropped = True
            return []
        covered = 0
        payload = bytearray(total_len)
        for offset in sorted(chunks):
            chunk = chunks[offset]
            payload[offset : offset + len(chunk)] = chunk
            covered += len(chunk)
        if covered < total_len:
            return []

        # Complete: synthesize the whole datagram from the template.
        del self._pending[key]
        self.reassembled += 1
        template = entry[3].clone()
        template_ip = template.ipv4
        template_ip.frag_offset = 0
        template_ip.flags &= ~0b001  # clear MF
        template_eth = template.eth
        prefix_len = (template_eth.header_len if template_eth is not None else 0)
        template.data = (
            template.data[:prefix_len]
            + template_ip.serialize(payload_len=total_len)
            + bytes(payload)
        )
        template.invalidate()
        return [(0, template)]

    def read_handle(self, name: str) -> Any:
        if name == "reassembled":
            return self.reassembled
        if name == "pending":
            return len(self._pending)
        if name == "expired":
            return self.expired
        if name == "oversized":
            return self.oversized
        return super().read_handle(name)


class FragmenterElement(Element):
    """Fragments IPv4 packets larger than ``mtu`` (simplified: splits
    the L4 payload across IP fragments with correct offsets/flags)."""

    # Emission count depends on the packet length, not the flow key.
    cacheable = False

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        super().__init__(name, config, origin_app)
        self.mtu = int(config.get("mtu", 1500))
        self.fragmented = 0

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        eth = packet.eth
        ipv4 = packet.ipv4
        if eth is None or ipv4 is None or len(packet.data) <= self.mtu + eth.header_len:
            return [(0, packet)]
        if ipv4.dont_fragment:
            outcome = self.context.current if self.context is not None else None
            if outcome is not None:
                outcome.dropped = True
            return []
        self.fragmented += 1
        header_len = eth.header_len + ipv4.header_len
        body = packet.data[header_len:]
        # Fragment payload sizes must be multiples of 8 bytes; clamp to
        # one 8-byte unit so an MTU smaller than the IP header can never
        # produce a zero-advance (infinite) fragmentation loop.
        chunk = max(8, (self.mtu - ipv4.header_len) // 8 * 8)
        fragments: list[tuple[int, Packet]] = []
        offset = 0
        while offset < len(body):
            piece = body[offset : offset + chunk]
            last = offset + chunk >= len(body)
            fragment = packet.clone()
            frag_ip = fragment.ipv4
            frag_ip.frag_offset = offset // 8
            frag_ip.flags = frag_ip.flags & ~0b001 if last else frag_ip.flags | 0b001
            fragment.data = (
                fragment.data[: eth.header_len]
                + frag_ip.serialize(payload_len=len(piece))
                + piece
            )
            fragment.invalidate()
            fragments.append((0, fragment))
            offset += chunk
        return fragments

    def read_handle(self, name: str) -> Any:
        if name == "fragmented":
            return self.fragmented
        return super().read_handle(name)
