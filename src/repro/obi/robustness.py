"""Data-plane robustness: fault containment, quarantine, overload control.

PR 1 made the *control plane* fault tolerant; this module armors the
*data plane*. The paper's provisioning story (§4.2, Fig. 9-10) assumes
OBIs detect and report saturation so the controller can react; SDNFV
further argues the data plane must make flow-aware local decisions
rather than punting everything upstream. Four mechanisms, all local to
the OBI and all observable through the ``_obi`` pseudo-block handles:

* **Fault containment** (:class:`EngineRobustness`) — an element whose
  ``process()`` raises no longer unwinds the traversal. The exception is
  recorded on the :class:`~repro.obi.engine.PacketOutcome` and the
  packet is handled per a :class:`FaultPolicy` (``drop`` | ``bypass``
  pass-through on port 0 | ``punt`` to the controller).
* **Quarantine** (:class:`CircuitBreaker`) — an element whose error
  rate trips a threshold is taken out of the traversal entirely
  (containment applies to every packet that would hit it) until a
  cool-down elapses, after which single packets probe it half-open.
  Digests of the offending packets land in a bounded poison quarantine.
* **Overload control** (:class:`AdmissionGate`) — a token-bucket
  admission gate in front of the engine. Below a fill watermark the OBI
  *degrades* (blocks whose config marks them ``degradable`` are
  bypassed) and sheds a seeded, deterministic fraction of packets; an
  empty bucket sheds everything. Seeding follows the
  :class:`~repro.transport.faults.FaultPlan` style: one
  ``random.Random(seed)``, same seed + same arrivals = same shed set.
* **Alert-storm suppression** (:class:`AlertBatcher`) — upstream alerts
  are coalesced into batched ``Alert`` messages under a per-origin-app
  token bucket; what the bucket refuses is counted and later summarized
  as a single "N suppressed" tail alert.
"""

from __future__ import annotations

import collections
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.obi.engine import AlertEvent, Element, PacketOutcome

#: Containment policies for a failing (or quarantined) element.
ERROR_POLICIES = ("drop", "bypass", "punt")


@dataclass
class FaultPolicy:
    """How the engine contains a faulting element."""

    #: ``drop`` the packet, ``bypass`` the element (pass-through on
    #: port 0), or ``punt`` the packet to the controller.
    error_policy: str = "drop"
    #: Errors within :attr:`error_window` seconds that open the breaker.
    quarantine_threshold: int = 5
    error_window: float = 60.0
    #: Seconds an open breaker blocks traffic before half-open probing.
    quarantine_cooldown: float = 30.0
    #: Bounded retention of poison-packet digests.
    poison_quarantine_size: int = 64

    def __post_init__(self) -> None:
        if self.error_policy not in ERROR_POLICIES:
            raise ValueError(
                f"error_policy must be one of {ERROR_POLICIES}, "
                f"got {self.error_policy!r}"
            )


class CircuitBreaker:
    """Per-element error circuit breaker with half-open probing.

    ``closed`` → errors accumulate in a sliding window; reaching the
    threshold opens the breaker (**quarantine**). While ``open`` and
    inside the cool-down every packet is contained without running the
    element. After the cool-down, :meth:`allow` returns ``"probe"``: one
    packet runs through the element; success closes the breaker, another
    error restarts the cool-down.
    """

    def __init__(self, threshold: int, window: float, cooldown: float) -> None:
        self.threshold = max(1, threshold)
        self.window = window
        self.cooldown = cooldown
        self.state = "closed"
        self.opened_at = 0.0
        self.trips = 0
        #: True once a half-open probe has been admitted for the current
        #: open period (lets the robustness layer observe the
        #: open -> half-open transition exactly once per cool-down).
        self.probing = False
        self._errors: collections.deque[float] = collections.deque()

    def allow(self, now: float) -> str:
        """``"run"`` | ``"blocked"`` | ``"probe"`` for a packet at ``now``."""
        if self.state == "closed":
            return "run"
        if now - self.opened_at >= self.cooldown:
            return "probe"
        return "blocked"

    def record_error(self, now: float) -> bool:
        """Count an error; returns True iff this error *opened* the breaker."""
        if self.state == "open":
            # A failed half-open probe: restart the cool-down.
            self.opened_at = now
            self.probing = False
            return False
        self._errors.append(now)
        while self._errors and now - self._errors[0] > self.window:
            self._errors.popleft()
        if len(self._errors) >= self.threshold:
            self.state = "open"
            self.opened_at = now
            self.trips += 1
            self.probing = False
            self._errors.clear()
            return True
        return False

    def record_success(self, now: float) -> None:
        """A successful half-open probe heals the breaker."""
        if self.state == "open" and now - self.opened_at >= self.cooldown:
            self.state = "closed"
            self.probing = False
            self._errors.clear()


class EngineRobustness:
    """Fault-containment state shared by every element of an engine.

    Owned by the OBI (so counters and breaker state survive graph
    redeployments) and attached to the :class:`~repro.obi.engine.EngineContext`;
    the element traversal consults it around every ``process()`` call.
    """

    def __init__(
        self,
        policy: FaultPolicy | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        import time

        self.policy = policy or FaultPolicy()
        self.clock = clock or time.monotonic
        self.breakers: dict[str, CircuitBreaker] = {}
        self.errors_total = 0
        #: Packets contained while their element was quarantined.
        self.quarantine_hits = 0
        #: Degradable elements bypassed while the OBI was degraded.
        self.degraded_bypasses = 0
        #: Overload degradation flag, driven by the admission gate.
        self._degraded = False
        #: Flow-state exhaustion flag, driven by the session storage's
        #: degradation watermark (see FlowStatePolicy): ORed into
        #: :attr:`degraded`, so state pressure degrades the OBI through
        #: the same path as ingress overload.
        self.state_pressure = False
        #: Bounded digests of packets that made elements fail.
        self.poison: collections.deque[dict[str, Any]] = collections.deque(
            maxlen=max(self.policy.poison_quarantine_size, 1)
        )
        #: Blocks whose breaker tripped since the OBI last drained this
        #: (the instance turns them into quarantine alerts).
        self.newly_quarantined: list[str] = []
        #: Flow-decision cache to flush on every breaker transition
        #: (:class:`repro.obi.fastpath.FlowDecisionCache`); wired by the
        #: OBI / translation layer, None when the fast path is off.
        self.flow_cache: Any = None
        self._open_breakers = 0

    @property
    def degraded(self) -> bool:
        """Overload degradation OR flow-state exhaustion pressure."""
        return self._degraded or self.state_pressure

    @degraded.setter
    def degraded(self, value: bool) -> None:
        self._degraded = bool(value)

    @property
    def fastpath_blocked(self) -> bool:
        """True while cached flow decisions must not be trusted.

        Any non-closed breaker means a slow-path traversal would behave
        differently from the one that recorded the cache entries (the
        quarantined element is detoured), so the fast path — lookup
        *and* recording — is disabled outright. That is the hard
        guarantee that a stale entry can never bypass an opened
        breaker; the flushes on each transition are belt-and-braces.
        Degraded mode blocks it for the same reason: ``degradable``
        blocks are bypassed while it lasts.
        """
        return self.degraded or self._open_breakers > 0

    def _flush_fastpath(self, reason: str) -> None:
        if self.flow_cache is not None:
            self.flow_cache.invalidate_all(reason)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def breaker_for(self, name: str) -> CircuitBreaker:
        breaker = self.breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy.quarantine_threshold,
                self.policy.error_window,
                self.policy.quarantine_cooldown,
            )
            self.breakers[name] = breaker
        return breaker

    def intercept(
        self, element: "Element", packet: "Packet", outcome: "PacketOutcome | None"
    ) -> list[tuple[int, "Packet"]] | None:
        """Decide whether ``element`` may run on ``packet``.

        Returns ``None`` to run the element normally (including as a
        half-open probe), or the containment emissions if the element is
        quarantined or bypassed by overload degradation.
        """
        if self.degraded and element.config.get("degradable"):
            self.degraded_bypasses += 1
            return [(0, packet)]
        breaker = self.breakers.get(element.name)
        if breaker is None:
            return None
        verdict = breaker.allow(self.clock())
        if verdict == "probe" and not breaker.probing:
            # open -> half-open: the probe may change element state, so
            # recorded decisions stop being trustworthy here too.
            breaker.probing = True
            self._flush_fastpath("quarantine-half-open")
        if verdict != "blocked":
            return None
        self.quarantine_hits += 1
        return self._contained(packet, outcome)

    def contain(
        self,
        element: "Element",
        packet: "Packet",
        exc: BaseException,
        outcome: "PacketOutcome | None",
    ) -> list[tuple[int, "Packet"]]:
        """Record an element failure and emit per the containment policy."""
        from repro.obi.engine import ErrorEvent

        now = self.clock()
        self.errors_total += 1
        try:
            summary = packet.summary()
        except Exception:  # noqa: BLE001 — the packet itself is hostile
            summary = f"unparseable frame len={len(packet.data)}"
        event = ErrorEvent(
            block=element.name,
            origin_app=element.origin_app,
            error=f"{type(exc).__name__}: {exc}",
            policy=self.policy.error_policy,
            packet_summary=summary,
        )
        if outcome is not None:
            outcome.errors.append(event)
        self.poison.append({
            "block": element.name,
            "error": event.error,
            "packet": summary,
            "at": now,
        })
        if self.breaker_for(element.name).record_error(now):
            self.newly_quarantined.append(element.name)
            self._open_breakers += 1
            self._flush_fastpath("quarantine-open")
        return self._contained(packet, outcome)

    def on_success(self, element: "Element") -> None:
        """Heal a half-open breaker after a successful probe."""
        breaker = self.breakers.get(element.name)
        if breaker is not None and breaker.state == "open":
            breaker.record_success(self.clock())
            if breaker.state == "closed":
                self._open_breakers = max(0, self._open_breakers - 1)
                self._flush_fastpath("quarantine-close")

    def _contained(
        self, packet: "Packet", outcome: "PacketOutcome | None"
    ) -> list[tuple[int, "Packet"]]:
        policy = self.policy.error_policy
        if policy == "bypass":
            return [(0, packet)]
        if outcome is not None:
            if policy == "punt":
                outcome.punted = True
            else:
                outcome.dropped = True
        return []

    # ------------------------------------------------------------------
    # Introspection (the `_obi` handles)
    # ------------------------------------------------------------------
    def quarantined_blocks(self) -> list[str]:
        return sorted(
            name for name, breaker in self.breakers.items()
            if breaker.state == "open"
        )

    def poison_digests(self) -> list[dict[str, Any]]:
        return list(self.poison)

    def drain_newly_quarantined(self) -> list[str]:
        drained, self.newly_quarantined = self.newly_quarantined, []
        return drained


class TokenBucket:
    """A standard token bucket over an injectable clock."""

    def __init__(self, rate: float, burst: float, clock: Callable[[], float]) -> None:
        self.rate = rate
        self.burst = max(burst, 1.0)
        self.clock = clock
        self.tokens = self.burst
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def take(self, now: float, amount: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def fill_fraction(self, now: float) -> float:
        self._refill(now)
        return self.tokens / self.burst


@dataclass
class OverloadPolicy:
    """Admission-gate configuration (0 ``admission_rate`` disables it)."""

    #: Sustained packets/second admitted; 0 turns the gate off.
    admission_rate: float = 0.0
    #: Bucket depth (packets of headroom for bursts).
    admission_burst: float = 64.0
    #: Bucket fill fraction below which the OBI degrades (bypasses
    #: ``degradable`` blocks) and starts pressure shedding.
    overload_watermark: float = 0.5
    #: Seed for the pressure-band shed decisions (FaultPlan style).
    shed_seed: int = 0
    #: Probability a packet in the pressure band is shed (an empty
    #: bucket always sheds).
    pressure_shed_rate: float = 0.0


@dataclass
class AdmissionVerdict:
    """What the gate decided for one packet."""

    admitted: bool
    degraded: bool
    reason: str = ""  # "", "pressure", "exhausted"


class AdmissionGate:
    """Token-bucket admission with watermark degradation and seeded shedding.

    Degradation comes *before* shedding: in the pressure band (bucket
    below the watermark but not empty) the gate first flags degraded
    mode so the engine bypasses ``degradable`` blocks, and only sheds
    probabilistically at :attr:`OverloadPolicy.pressure_shed_rate`; a
    fully drained bucket sheds deterministically.
    """

    def __init__(self, policy: OverloadPolicy, clock: Callable[[], float]) -> None:
        self.policy = policy
        self.clock = clock
        self.bucket = TokenBucket(policy.admission_rate, policy.admission_burst, clock)
        self._rng = random.Random(policy.shed_seed)
        self.admitted = 0
        self.packets_shed = 0
        self.degraded = False
        #: Bounded digests of recently shed packets (ingress accounting).
        self.shed_log: collections.deque[str] = collections.deque(maxlen=64)

    def admit(self, packet: "Packet") -> AdmissionVerdict:
        now = self.clock()
        if not self.bucket.take(now):
            self.packets_shed += 1
            self.degraded = True
            self._log_shed(packet)
            return AdmissionVerdict(admitted=False, degraded=True, reason="exhausted")
        fraction = self.bucket.tokens / self.bucket.burst
        if fraction < self.policy.overload_watermark:
            self.degraded = True
            if (
                self.policy.pressure_shed_rate > 0
                and self._rng.random() < self.policy.pressure_shed_rate
            ):
                self.packets_shed += 1
                self._log_shed(packet)
                return AdmissionVerdict(
                    admitted=False, degraded=True, reason="pressure"
                )
        else:
            self.degraded = False
        self.admitted += 1
        return AdmissionVerdict(admitted=True, degraded=self.degraded)

    def _log_shed(self, packet: "Packet") -> None:
        try:
            self.shed_log.append(packet.summary())
        except Exception:  # noqa: BLE001 — hostile frame
            self.shed_log.append(f"unparseable frame len={len(packet.data)}")


@dataclass
class _AlertBucketState:
    bucket: TokenBucket
    suppressed: int = 0


@dataclass
class BatchedAlert:
    """One coalesced alert group ready to go on the wire."""

    block: str
    origin_app: str
    message: str
    severity: str
    packet_summary: str
    count: int = 1


class AlertBatcher:
    """Per-origin-app alert coalescing + rate limiting.

    Identical alerts raised while processing one packet collapse into a
    single :class:`BatchedAlert` with a count. A per-origin token bucket
    (``rate_limit`` alerts/sec, 0 = unlimited) gates emission; refused
    groups increment the origin's suppression counter, and
    :meth:`drain_suppressed` later yields one "N suppressed" summary per
    origin — the storm's tail, not its body.
    """

    def __init__(
        self,
        rate_limit: float,
        burst: float,
        clock: Callable[[], float],
    ) -> None:
        self.rate_limit = rate_limit
        self.burst = max(burst, 1.0)
        self.clock = clock
        self._origins: dict[str, _AlertBucketState] = {}
        self.suppressed_total = 0
        self.coalesced_total = 0

    def _state(self, origin: str) -> _AlertBucketState:
        state = self._origins.get(origin)
        if state is None:
            state = _AlertBucketState(
                bucket=TokenBucket(self.rate_limit, self.burst, self.clock)
            )
            self._origins[origin] = state
        return state

    def batch(self, events: list["AlertEvent"]) -> list[BatchedAlert]:
        """Coalesce ``events`` and apply the per-origin rate limit."""
        now = self.clock()
        groups: dict[tuple[str, str, str, str], BatchedAlert] = {}
        for event in events:
            key = (
                event.block,
                event.origin_app or "",
                event.message,
                event.severity,
            )
            group = groups.get(key)
            if group is None:
                groups[key] = BatchedAlert(
                    block=event.block,
                    origin_app=event.origin_app or "",
                    message=event.message,
                    severity=event.severity,
                    packet_summary=event.packet_summary,
                )
            else:
                group.count += 1
                self.coalesced_total += 1
        emitted: list[BatchedAlert] = []
        for group in groups.values():
            if self.rate_limit <= 0:
                emitted.append(group)
                continue
            state = self._state(group.origin_app)
            if state.bucket.take(now):
                emitted.append(group)
            else:
                state.suppressed += group.count
                self.suppressed_total += group.count
        return emitted

    def drain_suppressed(self) -> list[tuple[str, int]]:
        """(origin, count) summaries for every origin with suppressions;
        counters reset so each suppression is summarized exactly once."""
        summaries = [
            (origin, state.suppressed)
            for origin, state in self._origins.items()
            if state.suppressed > 0
        ]
        for _origin, _count in summaries:
            self._origins[_origin].suppressed = 0
        return summaries
