"""Translating protocol processing graphs into engine element pipelines.

The paper's OBI has a Python "generic wrapper" that "translates protocol
directives to the specific underlying execution engine" (§4.2). This is
that translation layer: it maps each abstract block to an element class
(built-in or from an injected custom module), instantiates and wires the
elements, and returns a runnable :class:`Engine`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.blocks import Block, block_registry
from repro.core.graph import ProcessingGraph
from repro.obi.elements import element_registry
from repro.obi.engine import Element, Engine, EngineContext
from repro.obi.storage import SessionStorage
from repro.protocol.errors import ErrorCode, ProtocolError


class ElementFactory:
    """Resolves abstract block types to element classes.

    Custom modules injected via ``AddCustomModuleRequest`` register their
    element classes here; lookups prefer custom registrations so a module
    can override a built-in implementation (the paper lets the controller
    pick among implementations the same way).
    """

    def __init__(self) -> None:
        self._custom: dict[str, type[Element]] = {}

    def register_custom(self, type_name: str, element_cls: type[Element]) -> None:
        self._custom[type_name] = element_cls

    def supported_types(self) -> dict[str, list[str]]:
        """Abstract type -> implementation names, for Hello capabilities."""
        capabilities: dict[str, list[str]] = {}
        for type_name in element_registry:
            if type_name == "HeaderClassifier":
                capabilities[type_name] = ["linear", "trie", "tcam"]
            else:
                capabilities[type_name] = ["default"]
        for type_name in self._custom:
            capabilities.setdefault(type_name, []).append("custom")
        return capabilities

    def resolve(self, type_name: str) -> type[Element]:
        element_cls = self._custom.get(type_name) or element_registry.get(type_name)
        if element_cls is None:
            raise ProtocolError(
                ErrorCode.UNSUPPORTED_BLOCK_TYPE,
                f"no implementation for block type {type_name!r}",
            )
        return element_cls


def _effective_cacheable(element: Element, block: Block) -> bool:
    """Resolve whether a visit to ``element`` may be flow-cached.

    Precedence: an explicit ``cacheable`` in the block config wins;
    otherwise the element class *and* the block-type spec must both
    allow it (a custom element implementing a built-in type keeps the
    class's own judgement, and a wire-declared custom type defaults to
    uncacheable — see ``spec_from_dict``).
    """
    override = element.config.get("cacheable")
    if override is not None:
        return bool(override)
    spec_allows = True
    if block.type in block_registry:
        spec_allows = block_registry.get(block.type).cacheable
    return bool(type(element).cacheable and spec_allows)


def build_engine(
    graph: ProcessingGraph,
    factory: ElementFactory | None = None,
    clock: Callable[[], float] | None = None,
    session: SessionStorage | None = None,
    log_service: Any = None,
    storage_service: Any = None,
    robustness: Any = ...,
    flow_cache: Any = ...,
    tracer: Any = None,
    metrics: Any = None,
) -> Engine:
    """Instantiate and wire an :class:`Engine` for ``graph``.

    Fault containment is on by default: unless ``robustness`` is given
    (an :class:`~repro.obi.robustness.EngineRobustness`, or ``None`` to
    disable containment and restore fail-fast traversal), a fresh
    default containment layer guards every element. The flow-decision
    fast path follows the same convention: pass a shared
    :class:`~repro.obi.fastpath.FlowDecisionCache` (the OBI does, so
    counters survive redeploys), ``None`` to disable it, or leave the
    default for a fresh private cache.

    Observability is opt-in: ``tracer`` is a
    :class:`~repro.observability.tracing.PacketTracer` (None disables
    sampling entirely) and ``metrics`` a
    :class:`~repro.observability.metrics.MetricsRegistry` the engine and
    flow cache register their instruments on. Both are owned by the OBI
    so series survive redeploys.
    """
    import time

    from repro.obi.fastpath import FlowDecisionCache
    from repro.obi.robustness import EngineRobustness

    graph.validate()
    if factory is None:
        factory = ElementFactory()
    resolved_clock = clock or time.monotonic
    if robustness is ...:
        robustness = EngineRobustness(clock=resolved_clock)
    if flow_cache is ...:
        flow_cache = FlowDecisionCache()
    if robustness is not None and flow_cache is not None:
        # Breaker transitions must flush recorded decisions.
        robustness.flow_cache = flow_cache
    context = EngineContext(
        clock=resolved_clock,
        session=session or SessionStorage(),
        log_service=log_service,
        storage_service=storage_service,
        robustness=robustness,
    )
    if flow_cache is not None:
        # Per-flow state transitions surgically invalidate the cached
        # decisions that read them (stateful elements tag their reads
        # via DecisionRecorder.note_flow_state).
        context.session.bind_flow_cache(flow_cache)
    elements: dict[str, Element] = {}
    for block in graph.blocks.values():
        element_cls = factory.resolve(block.type)
        config = dict(block.config)
        if block.implementation is not None:
            config.setdefault("implementation", block.implementation)
        element = element_cls(
            name=block.name, config=config, origin_app=block.origin_app
        )
        element.cacheable = _effective_cacheable(element, block)
        elements[block.name] = element
    for connector in graph.connectors:
        elements[connector.src].wire(connector.src_port, elements[connector.dst])
    if flow_cache is not None and metrics is not None:
        flow_cache.bind_metrics(metrics)
    return Engine(
        graph=graph,
        elements=elements,
        context=context,
        flow_cache=flow_cache,
        tracer=tracer,
        metrics=metrics,
    )
