"""External OBI services: packet logging and packet storage (paper §3.1).

"An OBI can use external services for out-of-band operations such as
logging and storage. The OpenBox protocol defines two such services ...
provided by an external server, located either locally on the same
machine as the OBI or remotely. The addresses and other parameters of
these servers are set for the OBI by the OBC."

Both services are modelled as in-process servers with the remote
round-trip abstracted behind the same interface; the controller
configures which instances an OBI uses via ``SetExternalServices``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.obi.engine import LogEvent


@dataclass
class LogRecord:
    """One entry in the log service."""

    sequence: int
    block: str
    origin_app: str | None
    message: str
    packet_summary: str


class LogService:
    """Collects log records from OBIs; queryable by origin application."""

    def __init__(self, name: str = "log", capacity: int = 100_000) -> None:
        self.name = name
        self.capacity = capacity
        self.records: list[LogRecord] = []
        self._sequence = itertools.count(1)
        self.overflowed = 0

    def log(self, event: LogEvent) -> None:
        if len(self.records) >= self.capacity:
            self.overflowed += 1
            self.records.pop(0)
        self.records.append(LogRecord(
            sequence=next(self._sequence),
            block=event.block,
            origin_app=event.origin_app,
            message=event.message,
            packet_summary=event.packet_summary,
        ))

    def query(self, origin_app: str | None = None) -> list[LogRecord]:
        if origin_app is None:
            return list(self.records)
        return [record for record in self.records if record.origin_app == origin_app]

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class StoredPacket:
    """One packet held by the storage service."""

    key: int
    namespace: str
    data: bytes


class PacketStorageService:
    """Stores packet copies per namespace (caching / quarantine)."""

    def __init__(self, name: str = "storage", capacity: int = 100_000) -> None:
        self.name = name
        self.capacity = capacity
        self._packets: dict[str, list[StoredPacket]] = {}
        self._keys = itertools.count(1)
        self.dropped = 0

    def store(self, namespace: str, data: bytes) -> int:
        bucket = self._packets.setdefault(namespace, [])
        if sum(len(items) for items in self._packets.values()) >= self.capacity:
            self.dropped += 1
            return -1
        key = next(self._keys)
        bucket.append(StoredPacket(key=key, namespace=namespace, data=bytes(data)))
        return key

    def fetch(self, namespace: str) -> list[StoredPacket]:
        return list(self._packets.get(namespace, ()))

    def purge(self, namespace: str) -> int:
        removed = len(self._packets.get(namespace, ()))
        self._packets.pop(namespace, None)
        return removed

    def stats(self) -> dict[str, Any]:
        return {
            "namespaces": len(self._packets),
            "packets": sum(len(items) for items in self._packets.values()),
            "dropped": self.dropped,
        }
