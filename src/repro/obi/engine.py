"""The OBI execution engine — a push-based element engine (Click analog).

The paper's OBI wraps the Click modular router; this module is the
Python equivalent. A :class:`ProcessingGraph` is translated into a wired
set of :class:`Element` instances (one per block) and packets are pushed
through the wiring. The OpenBox protocol deliberately hides Click's
push/pull distinction (paper §2.1), so everything here is push.

For every injected packet the engine records a :class:`PacketOutcome`:
which output devices received which packets, whether it was dropped, the
side effects raised (alerts/logs), and the block path traversed — the
path is what the simulator's cost model consumes to compute latency and
throughput, since "the number of blocks in the graph has no effect on
OBI performance. The significant parameter is the length of paths".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.graph import ProcessingGraph
from repro.net.packet import Packet
from repro.obi.fastpath import DecisionRecorder, flow_key
from repro.obi.storage import SessionStorage
from repro.observability.metrics import SIZE_BUCKETS


@dataclass
class AlertEvent:
    """An Alert block fired while processing a packet."""

    block: str
    origin_app: str | None
    message: str
    severity: str
    packet_summary: str


@dataclass
class LogEvent:
    """A Log block fired while processing a packet."""

    block: str
    origin_app: str | None
    message: str
    packet_summary: str


@dataclass
class ErrorEvent:
    """An element raised while processing a packet (contained fault)."""

    block: str
    origin_app: str | None
    error: str
    #: Containment applied: ``drop`` | ``bypass`` | ``punt``.
    policy: str
    packet_summary: str


@dataclass
class PacketOutcome:
    """Everything that happened to one injected packet."""

    outputs: list[tuple[str, Packet]] = field(default_factory=list)
    dropped: bool = False
    punted: bool = False
    #: Shed by the OBI's admission gate before reaching the graph.
    shed: bool = False
    alerts: list[AlertEvent] = field(default_factory=list)
    logs: list[LogEvent] = field(default_factory=list)
    #: Contained element faults (diagnostics; the externally observable
    #: consequence — drop/bypass/punt — is reflected in the fields above).
    errors: list[ErrorEvent] = field(default_factory=list)
    path: list[str] = field(default_factory=list)

    @property
    def forwarded(self) -> bool:
        return bool(self.outputs)

    def effects_key(self) -> tuple:
        """Canonical view of externally observable behaviour.

        Used by equivalence tests: two graph executions are equivalent iff
        their effects keys match (outputs with bytes, drop/punt status,
        and the multiset of alerts/logs with origins).
        """
        outputs = sorted((dev, bytes(pkt.data)) for dev, pkt in self.outputs)
        alerts = sorted(
            (event.origin_app or "", event.message, event.severity)
            for event in self.alerts
        )
        logs = sorted((event.origin_app or "", event.message) for event in self.logs)
        return (tuple(outputs), self.dropped, self.punted, tuple(alerts), tuple(logs))


@dataclass
class EngineContext:
    """Shared services available to elements while processing.

    ``now`` is the engine clock (simulated time may be injected by the
    network simulator); ``session`` is the OBI-wide session storage;
    the sinks collect side effects into the current PacketOutcome.
    """

    clock: Callable[[], float]
    session: SessionStorage
    log_service: Any = None
    storage_service: Any = None
    current: PacketOutcome | None = None
    #: Fault-containment layer (:class:`repro.obi.robustness.EngineRobustness`);
    #: None disables containment and restores fail-fast traversal.
    robustness: Any = None
    #: Fast-path state for the packet in flight (set by Engine.process):
    #: the cached element-name -> port map being replayed, or the
    #: :class:`~repro.obi.fastpath.DecisionRecorder` building one.
    decisions: dict[str, int] | None = None
    recorder: Any = None
    #: Active :class:`~repro.observability.tracing.PacketTrace` for the
    #: packet in flight; None (the overwhelmingly common case) means the
    #: traversal pays one None-check per element visit and nothing else.
    trace: Any = None

    @property
    def now(self) -> float:
        return self.clock()


class Element:
    """Base class for engine elements (one per processing block).

    Subclasses implement :meth:`process`, returning a list of
    ``(output_port, packet)`` pairs; the engine pushes each pair to the
    wired successor. Returning an empty list absorbs the packet.
    """

    #: May a visit to this element be part of a cached flow decision?
    #: False poisons the flow (no positive cache entry is installed):
    #: set by elements whose behaviour is stateful or payload-dependent
    #: in a way the flow key cannot capture. Resolved per instance by
    #: the translation layer (config override > block-type spec > this
    #: class default).
    cacheable: bool = True
    #: True for classifiers whose routing decision is a pure function
    #: of the flow key: the fast path records their decision once and
    #: replays it (via :meth:`replay_decision`) for later packets of
    #: the flow, skipping the match computation.
    caches_decision: bool = False
    #: Set by MetadataClassifier elements to the metadata key they
    #: route on; the engine folds these into the flow key (the
    #: "metadata scope" of the deployed graph).
    metadata_key: str | None = None
    #: True for stateful classifiers (conntrack) that decide for
    #: themselves when a decision is safe to record — the engine's
    #: automatic single-emission recording is skipped, and the element
    #: calls ``context.recorder.record(...)`` in the states where its
    #: verdict really is a pure function of flow key + flow state (and
    #: declares that state via ``recorder.note_flow_state``).
    records_own_decision: bool = False
    #: Write handles that cannot change routing decisions: a write to
    #: one skips the whole-cache invalidation in Engine.write_handle.
    #: Subclasses extend this only for handles that are provably
    #: routing-neutral (counter resets, flushes whose state changes
    #: already invalidate per flow).
    ROUTING_NEUTRAL_HANDLES: frozenset[str] = frozenset({"reset_counts"})

    def __init__(self, name: str, config: dict[str, Any], origin_app: str | None = None) -> None:
        self.name = name
        self.config = config
        self.origin_app = origin_app
        self.count = 0
        self.byte_count = 0
        self._outputs: dict[int, "Element"] = {}
        self.context: EngineContext | None = None

    # ------------------------------------------------------------------
    # Wiring (set up by the Engine)
    # ------------------------------------------------------------------
    def wire(self, port: int, successor: "Element") -> None:
        if port in self._outputs:
            raise ValueError(f"element {self.name} port {port} already wired")
        self._outputs[port] = successor

    def attach(self, context: EngineContext) -> None:
        self.context = context

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def push(self, packet: Packet) -> None:
        """Run ``packet`` through this element and everything downstream.

        Traversal is an explicit depth-first stack (not recursion), so
        arbitrarily deep processing graphs execute safely; the visiting
        order matches Click's immediate push semantics.
        """
        stack: list[tuple["Element", Packet, int]] = [(self, packet, -1)]
        while stack:
            element, current, parent = stack.pop()
            context = element.context
            outcome = context.current if context is not None else None
            trace = context.trace if context is not None else None
            if context is not None and context.decisions is not None:
                # Fast path: replay the cached decision instead of
                # matching. Only decision-cached classifiers are
                # skipped — every other element runs normally below, so
                # data-dependent effects stay identical to a slow run.
                # Handle-visible state (count/byte_count/path and the
                # classifier's own tallies via replay_decision) is kept
                # byte-identical to the slow path.
                port = (
                    context.decisions.get(element.name)
                    if element.caches_decision and element.cacheable
                    else None
                )
                if port is not None:
                    element.count += 1
                    element.byte_count += len(current)
                    if outcome is not None:
                        outcome.path.append(element.name)
                    element.replay_decision(port, current)
                    if trace is not None:
                        span = trace.enter(
                            element.name, element.origin_app, parent, context.now
                        )
                        span.replayed = True
                        span.ports.append(port)
                        span.exit = context.now
                        trace.fastpath = True
                        parent = span.index
                    successor = element._outputs.get(port)
                    if successor is not None:
                        stack.append((successor, current, parent))
                    continue
            recorder = context.recorder if context is not None else None
            guard = context.robustness if context is not None else None
            if guard is not None:
                # Quarantined element or overload-degraded bypass: the
                # element is skipped and containment emissions used
                # instead (it neither counts the packet nor appears on
                # the path — it did not process anything).
                contained = guard.intercept(element, current, outcome)
                if contained is not None:
                    if recorder is not None:
                        # A quarantine/degradation detour is transient
                        # state, not a property of the flow: never
                        # install a decision recorded around one.
                        recorder.poison()
                    if trace is not None:
                        span = trace.enter(
                            element.name, element.origin_app, parent, context.now
                        )
                        span.event = (
                            "degraded-bypass"
                            if guard.degraded and element.config.get("degradable")
                            else "quarantine-bypass"
                        )
                        span.ports.extend(port for port, _ in contained)
                        parent = span.index
                    for port, out_packet in reversed(contained):
                        successor = element._outputs.get(port)
                        if successor is not None:
                            stack.append((successor, out_packet, parent))
                    continue
            element.count += 1
            element.byte_count += len(current)
            if outcome is not None:
                outcome.path.append(element.name)
            span = (
                trace.enter(element.name, element.origin_app, parent, context.now)
                if trace is not None
                else None
            )
            if guard is not None:
                try:
                    emissions = element.process(current)
                except Exception as exc:  # noqa: BLE001 — containment boundary
                    if recorder is not None:
                        recorder.poison()
                    emissions = guard.contain(element, current, exc, outcome)
                    if span is not None:
                        span.event = f"fault:{guard.policy.error_policy}"
                else:
                    guard.on_success(element)
            else:
                emissions = element.process(current)
            if span is not None:
                span.exit = context.now
                span.ports.extend(port for port, _ in emissions)
                parent = span.index
            if recorder is not None:
                if not element.cacheable:
                    recorder.poison()
                elif (
                    element.caches_decision
                    and not element.records_own_decision
                    and len(emissions) == 1
                ):
                    recorder.record(element.name, emissions[0][0])
            # Reversed so the first emission is processed first (DFS).
            for port, out_packet in reversed(emissions):
                successor = element._outputs.get(port)
                if successor is not None:
                    stack.append((successor, out_packet, parent))
                # An unwired port absorbs the packet — matching a
                # processing graph with a dangling classifier outcome.

    def process(self, packet: Packet) -> list[tuple[int, Packet]]:
        """Transform/route ``packet``; default is pass-through on port 0."""
        return [(0, packet)]

    def replay_decision(self, port: int, packet: Packet) -> None:
        """Restore per-decision bookkeeping when the fast path skips
        :meth:`process` (e.g. a classifier's match_counts); count,
        byte_count, and the outcome path are handled by the engine."""

    # ------------------------------------------------------------------
    # Handles (paper §3.2)
    # ------------------------------------------------------------------
    def read_handle(self, name: str) -> Any:
        if name == "count":
            return self.count
        if name == "byte_count":
            return self.byte_count
        raise KeyError(f"element {self.name} has no read handle {name!r}")

    def write_handle(self, name: str, value: Any) -> None:
        if name == "reset_counts":
            self.count = 0
            self.byte_count = 0
            return
        raise KeyError(f"element {self.name} has no write handle {name!r}")


class Engine:
    """A wired element pipeline executing one processing graph."""

    def __init__(
        self,
        graph: ProcessingGraph,
        elements: dict[str, Element],
        context: EngineContext,
        flow_cache: Any = None,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        """Use :func:`repro.obi.translation.build_engine` to construct."""
        self.graph = graph
        self.elements = elements
        self.context = context
        #: Flow-decision fast path (:mod:`repro.obi.fastpath`); None
        #: disables it and every packet takes the full traversal.
        self.flow_cache = flow_cache
        #: Sampled tracing (:class:`~repro.observability.tracing.PacketTracer`);
        #: None is the hard off-switch.
        self.tracer = tracer
        self.metrics = metrics
        # Hot-path telemetry is plain-int accumulation; export_metrics()
        # mirrors the totals into the registry at snapshot time (same
        # pattern as the flow cache), so per-packet cost is a handful of
        # integer adds whether or not a registry is attached.
        self.dropped_total = 0
        self.punted_total = 0
        self.alerts_total = 0
        self.faults_total = 0
        #: Raw path-length counts (index = path length, clamped); folded
        #: into the SIZE_BUCKETS histogram at export.
        self._path_counts = [0] * 193
        if metrics is not None:
            self._m_packets = metrics.counter("engine_packets_total")
            self._m_dropped = metrics.counter("engine_dropped_total")
            self._m_punted = metrics.counter("engine_punted_total")
            self._m_alerts = metrics.counter("engine_alerts_total")
            self._m_faults = metrics.counter("engine_element_faults_total")
            self._m_path = metrics.histogram("engine_path_length", SIZE_BUCKETS)
        else:
            self._m_packets = None
            self._m_dropped = None
            self._m_punted = None
            self._m_alerts = None
            self._m_faults = None
            self._m_path = None
        # Export watermarks: what has already been mirrored, so exports
        # are additive (the registry outlives this engine across graph
        # redeployments).
        self._exported_packets = 0
        self._exported_dropped = 0
        self._exported_punted = 0
        self._exported_alerts = 0
        self._exported_faults = 0
        self._exported_path = [0] * 193
        #: Metadata keys this graph routes on: part of the flow key, so
        #: two packets of one 5-tuple that carry different upstream
        #: classification results never share a cache entry.
        self._metadata_scope = tuple(sorted({
            element.metadata_key
            for element in elements.values()
            if element.metadata_key
        }))
        self.entry_name = graph.entry_point()
        # A partially committed graph (e.g. a translation that dropped
        # blocks) may not have an element for the entry point. Tolerate
        # that at construction so the two-phase verify stage can inspect
        # and reject it; process() fails fast without counting anything.
        self._entry = elements.get(self.entry_name)
        for element in elements.values():
            element.attach(context)
        self.packets_processed = 0
        self.bytes_processed = 0

    @property
    def entry_resolved(self) -> bool:
        """True iff the graph's entry point translated into a live element."""
        return self._entry is not None

    def process(self, packet: Packet) -> PacketOutcome:
        """Push one packet through the graph and collect its outcome."""
        if self._entry is None:
            # Refuse *before* touching the counters: a packet that never
            # entered the graph must not inflate packets/bytes_processed.
            raise KeyError(
                f"entry element {self.entry_name!r} missing from engine"
            )
        outcome = PacketOutcome()
        context = self.context
        context.current = outcome
        tracer = self.tracer
        trace = None
        if tracer is not None and tracer.should_sample():
            try:
                summary = packet.summary()
            except Exception:  # noqa: BLE001 — the packet may be hostile
                summary = f"unparseable frame len={len(packet.data)}"
            trace = tracer.begin(summary)
            context.trace = trace
        cache = self.flow_cache
        recorder = None
        if cache is not None:
            guard = context.robustness
            key = None
            if guard is None or not guard.fastpath_blocked:
                key = flow_key(packet, self._metadata_scope)
            if key is None:
                cache.bypassed += 1
            else:
                entry = cache.lookup(key)
                if entry is None:
                    recorder = DecisionRecorder(key)
                    context.recorder = recorder
                elif entry.uncacheable:
                    cache.uncacheable_hits += 1
                else:
                    cache.hits += 1
                    context.decisions = entry.decisions
        try:
            self._entry.push(packet)
        finally:
            context.current = None
            context.decisions = None
            context.recorder = None
            context.trace = None
        if recorder is not None:
            # Reached only when push() completed: a traversal that
            # unwound (robustness disabled) installs nothing. An
            # abandoned recording (the traversal transitioned the flow
            # state it read) installs nothing either — the next packet
            # records afresh against the settled state.
            cache.misses += 1
            if not recorder.abandoned:
                cache.install(recorder.key, recorder.finish())
        if trace is not None:
            tracer.finish(trace, outcome)
        self.packets_processed += 1
        self.bytes_processed += len(packet)
        if outcome.dropped:
            self.dropped_total += 1
        if outcome.punted:
            self.punted_total += 1
        if outcome.alerts:
            self.alerts_total += len(outcome.alerts)
        if outcome.errors:
            self.faults_total += len(outcome.errors)
        length = len(outcome.path)
        self._path_counts[length if length < 192 else 192] += 1
        return outcome

    def export_metrics(self) -> None:
        """Mirror accumulated telemetry into the metrics registry.

        Additive and idempotent: only the delta since the previous export
        is applied, so the registry keeps accumulating across graph
        redeployments (each deploy builds a fresh engine against the same
        OBI-owned registry). No-op without a registry.
        """
        if self._m_packets is None:
            return
        self._m_packets.inc(self.packets_processed - self._exported_packets)
        self._exported_packets = self.packets_processed
        self._m_dropped.inc(self.dropped_total - self._exported_dropped)
        self._exported_dropped = self.dropped_total
        self._m_punted.inc(self.punted_total - self._exported_punted)
        self._exported_punted = self.punted_total
        self._m_alerts.inc(self.alerts_total - self._exported_alerts)
        self._exported_alerts = self.alerts_total
        self._m_faults.inc(self.faults_total - self._exported_faults)
        self._exported_faults = self.faults_total
        hist = self._m_path
        exported = self._exported_path
        for length, count in enumerate(self._path_counts):
            delta = count - exported[length]
            if delta:
                slot = bisect.bisect_left(hist.boundaries, length)
                hist.counts[slot] += delta
                hist.count += delta
                hist.sum += delta * length
                exported[length] = count

    def element(self, name: str) -> Element:
        try:
            return self.elements[name]
        except KeyError:
            raise KeyError(f"no element named {name!r} in engine") from None

    def read_handle(self, block: str, handle: str) -> Any:
        return self.element(block).read_handle(handle)

    def write_handle(self, block: str, handle: str, value: Any) -> None:
        element = self.element(block)
        element.write_handle(handle, value)
        # Any handle write may change routing (rule replacement, shaper
        # rates): recorded decisions are no longer trustworthy. Handles
        # an element declares routing-neutral (counter resets, state
        # flushes that invalidate per flow) are exempt — they were the
        # dominant source of full-cache invalidation storms.
        if (
            self.flow_cache is not None
            and handle not in element.ROUTING_NEUTRAL_HANDLES
        ):
            self.flow_cache.invalidate_all("write-handle")
