"""The OpenBox service instance (OBI) wrapper.

This is the Python "generic wrapper" of paper §4.2: it speaks the
OpenBox protocol with the controller, translates deployed graphs onto
the execution engine, forwards alerts upstream, answers handle reads and
writes, reports load, and accepts custom modules.

The paper's Click engine has a hard-coded 1000 ms polling delay during
reconfiguration, which dominates its measured ``SetProcessingGraph``
round-trip of 1285 ms (Table 3, footnote 4). That delay is reproduced as
``ObiConfig.reconfigure_poll_delay`` — 0 by default (tests), 1.0 s in the
Table 3 benchmark.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field as dataclasses_field
from typing import Any, Callable

from repro.core.graph import (
    GraphValidationError,
    ProcessingGraph,
    canonical_graph_digest,
)
from repro.net.packet import Packet
from repro.obi.custom import CustomModuleLoader
from repro.obi.engine import AlertEvent, Engine, PacketOutcome
from repro.obi.fastpath import DEFAULT_FLOW_CACHE_SIZE, FlowDecisionCache
from repro.obi.flowstate import (
    FlowStateCheckpointer,
    FlowStatePolicy,
    load_checkpoint,
)
from repro.obi.headless import HeadlessBuffer
from repro.obi.robustness import (
    AdmissionGate,
    AlertBatcher,
    EngineRobustness,
    FaultPolicy,
    OverloadPolicy,
)
from repro.obi.services import LogService, PacketStorageService
from repro.obi.storage import SessionStorage
from repro.obi.translation import ElementFactory, build_engine
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import PacketTracer
from repro.protocol.blocks_spec import OBI_PSEUDO_BLOCK
from repro.protocol.codec import PROTOCOL_VERSION
from repro.transport.base import ChannelClosed
from repro.protocol.errors import ErrorCode, ProtocolError
from repro.protocol.messages import (
    AddCustomModuleRequest,
    AddCustomModuleResponse,
    Alert,
    BarrierRequest,
    BarrierResponse,
    ErrorMessage,
    ExportStateRequest,
    ExportStateResponse,
    ImportStateRequest,
    ImportStateResponse,
    PacketHistoryRequest,
    PacketHistoryResponse,
    GlobalStatsRequest,
    GlobalStatsResponse,
    HealthReport,
    Hello,
    HelloResponse,
    KeepAlive,
    LeaseAnnounce,
    ListCapabilitiesRequest,
    ListCapabilitiesResponse,
    Message,
    ObservabilitySnapshotRequest,
    ObservabilitySnapshotResponse,
    ReadRequest,
    ReadResponse,
    SetExternalServices,
    SetProcessingGraphRequest,
    SetProcessingGraphResponse,
    StateCheckpointRequest,
    StateCheckpointResponse,
    StateHandoffRequest,
    StateHandoffResponse,
    TelemetryAck,
    TelemetryStream,
    TelemetrySubscribe,
    WriteRequest,
    WriteResponse,
)
from repro.telemetry.publisher import TelemetryPublisher


@dataclass
class ObiConfig:
    """Static configuration of one OBI."""

    obi_id: str
    segment: str = ""
    #: Relative packet-processing capacity (used by the controller's
    #: scaling logic and the simulator's cost model).
    capacity_hint: float = 1.0
    supports_custom_modules: bool = True
    #: Reproduction of Click's hard-coded 1000 ms reconfiguration poll
    #: (paper Table 3 footnote); seconds slept inside SetProcessingGraph.
    reconfigure_poll_delay: float = 0.0
    #: SHA-256 allowlist for custom modules (None = accept all).
    module_checksums: set[str] | None = None
    keepalive_interval: float = 10.0
    session_idle_timeout: float = 60.0
    #: Flow-state exhaustion defense (entry cap, per-source-prefix
    #: budgets, pressure/degradation watermarks, early TTL); None uses
    #: the FlowStatePolicy defaults.
    flow_state: FlowStatePolicy | None = None
    #: Journal path for crash-safe flow-state checkpoints ("" disables
    #: them). On construction the OBI replays the journal's longest
    #: valid prefix, so durable session state survives a SIGKILL.
    state_checkpoint_path: str = ""
    #: Journal fsync batching / snapshot compaction cadence (appends).
    state_checkpoint_fsync_every: int = 8
    state_snapshot_every: int = 256
    #: How many recent per-packet traversal records to retain for the
    #: packet-history debugging facility (paper §6); 0 disables it.
    history_size: int = 256
    #: Data-plane fault containment: per-element error policy, quarantine
    #: thresholds, poison-packet retention (see ``repro.obi.robustness``).
    fault_policy: FaultPolicy = dataclasses_field(default_factory=FaultPolicy)
    #: Overload control: admission token bucket, degradation watermark,
    #: seeded shedding. ``admission_rate`` 0 (the default) disables it.
    overload: OverloadPolicy = dataclasses_field(default_factory=OverloadPolicy)
    #: Per-origin-app upstream alert rate limit (alerts/second); 0 means
    #: unlimited. Refused alerts are counted and summarized.
    alert_rate_limit: float = 0.0
    alert_burst: float = 8.0
    #: Flow-decision fast path: maximum cached flow entries (see
    #: ``repro.obi.fastpath``); 0 disables the cache entirely and every
    #: packet takes the full slow-path traversal.
    flow_cache_size: int = DEFAULT_FLOW_CACHE_SIZE
    #: Per-packet trace sampling (see ``repro.observability.tracing``):
    #: fraction of packets to trace, deterministic 1-in-N. 0 (the
    #: default) is the hard off-switch — no tracer is installed at all
    #: and the engine pays one None-check per element visit.
    trace_sample_rate: float = 0.0
    #: How many recent sampled traces to retain for snapshots.
    trace_buffer: int = 64
    #: Seconds of controller silence before the OBI goes *headless*
    #: (keeps serving traffic on the last committed graph, buffers
    #: upstream events; see ``repro.obi.headless``). 0 disables the
    #: automatic transition entirely.
    headless_after: float = 30.0
    #: Ring-buffer capacity for alerts/health reports produced while
    #: headless; overflow evicts the oldest entry and is counted.
    headless_buffer: int = 256
    #: Ordered controller endpoints for re-homing (PROTOCOL.md §12):
    #: tried first-to-last after losing the leader. Refreshed in place
    #: by every ``LeaseAnnounce`` the OBI accepts, so the list tracks
    #: whichever controller currently holds the lease.
    controller_endpoints: list[str] = dataclasses_field(default_factory=list)
    #: Telemetry ring capacity (PROTOCOL.md §13): how many cursored
    #: records (metric deltas, traces, alerts) are retained for replay
    #: across subscriber reconnects; overflow evicts oldest, counted.
    telemetry_buffer: int = 1024


class OpenBoxInstance:
    """A software OBI: protocol endpoint + execution engine."""

    def __init__(
        self,
        config: ObiConfig,
        clock: Callable[[], float] | None = None,
        log_service: LogService | None = None,
        storage_service: PacketStorageService | None = None,
        state_storage: Any = None,
    ) -> None:
        self.config = config
        self.clock = clock or time.monotonic
        self.factory = ElementFactory()
        self.loader = CustomModuleLoader(
            self.factory, allowed_checksums=config.module_checksums
        )
        restored = None
        checkpointer = None
        if config.state_checkpoint_path:
            # Restore-before-open: fold the previous incarnation's
            # journal (tolerating a torn tail) before the checkpointer
            # reopens the file for appending.
            restored = load_checkpoint(config.state_checkpoint_path)
            checkpointer = FlowStateCheckpointer(
                config.state_checkpoint_path,
                fsync_every=config.state_checkpoint_fsync_every,
                snapshot_every=config.state_snapshot_every,
                storage=state_storage,
            )
        self.session = SessionStorage(
            idle_timeout=config.session_idle_timeout,
            policy=config.flow_state,
            checkpoint=checkpointer,
        )
        #: Flow entries recovered from the checkpoint journal at startup.
        self.state_restored = 0
        #: Per-source-OBI generation fence for state handoffs: the
        #: highest state generation already imported from each peer.
        self._handoff_fence: dict[str, int] = {}
        self.stale_handoff_rejections = 0
        self.log_service = log_service or LogService()
        self.storage_service = storage_service or PacketStorageService()
        self.engine: Engine | None = None
        self.graph: ProcessingGraph | None = None
        self._channel: Any = None
        self._started_at = self.clock()
        self.packets_processed = 0
        self.bytes_processed = 0
        self.alerts_sent = 0
        self.graph_version = 0
        #: Canonical digest of the graph dict last committed (what the
        #: anti-entropy loop compares against controller intent).
        self.graph_digest = ""
        #: Highest controller generation ever obeyed; messages stamped
        #: with a lower one are rejected (split-brain guard).
        self.highest_controller_generation = 0
        self.stale_generation_rejections = 0
        #: Re-homing (PROTOCOL.md §12): endpoints walked, deposed
        #: leaders skipped as stale, successful adoptions, and where
        #: the OBI currently believes the leadership lives.
        self.rehome_attempts = 0
        self.rehome_stale_skipped = 0
        self.rehomes = 0
        self.rehomed_to = ""
        self.lease_announcements = 0
        self.announced_leader = ""
        #: Headless data plane (PROTOCOL.md §10): the last time any
        #: evidence of a live controller arrived, the latched mode flag,
        #: and the bounded replay buffer for upstream events.
        self.last_controller_heard = self.clock()
        self._headless = False
        self.headless_episodes = 0
        self.headless_buffer = HeadlessBuffer(max(config.headless_buffer, 1))
        #: Two-phase SetProcessingGraph bookkeeping: how many staged
        #: graphs were discarded (previous graph kept serving traffic).
        self.graph_rollbacks = 0
        #: Duplicate requests (same xid) answered from the response
        #: cache instead of being re-applied — the receiver half of the
        #: transport's idempotent-retry contract (PROTOCOL.md §6).
        self.duplicate_requests = 0
        self._response_cache: collections.OrderedDict[int, Message | None] = (
            collections.OrderedDict()
        )
        self._response_cache_limit = 256
        self._dedup_lock = threading.Lock()
        #: Serializes engine swaps against packet processing and handle
        #: access: the REST endpoint is multi-threaded, so a
        #: SetProcessingGraph must never tear the engine out from under
        #: an in-flight packet.
        self._lock = threading.RLock()
        self.history: collections.deque = collections.deque(
            maxlen=max(config.history_size, 0)
        )
        #: Fault containment is owned by the OBI, not the engine, so
        #: breaker state, poison digests, and error counters survive
        #: graph redeployments (quarantine is a property of the
        #: instance's recent history, not of one engine build).
        self.robustness = EngineRobustness(config.fault_policy, clock=self.clock)
        #: The flow-decision cache is owned here for the same reason as
        #: ``robustness``: hit/miss accounting survives redeploys (the
        #: entries themselves are flushed on every graph swap). The
        #: robustness layer holds a reference so breaker transitions
        #: flush it.
        self.flow_cache = (
            FlowDecisionCache(config.flow_cache_size)
            if config.flow_cache_size > 0
            else None
        )
        self.robustness.flow_cache = self.flow_cache
        if self.flow_cache is not None:
            # Per-flow state changes invalidate exactly the affected
            # flow's cached decisions (no whole-cache flush).
            self.session.bind_flow_cache(self.flow_cache)
        if restored is not None and (restored.entries or restored.generation):
            self.state_restored = self.session.restore(
                restored, now=self.clock()
            )
        self._admission = (
            AdmissionGate(config.overload, self.clock)
            if config.overload.admission_rate > 0
            else None
        )
        self._alert_batcher = AlertBatcher(
            config.alert_rate_limit, config.alert_burst, self.clock
        )
        #: Ingress accounting: every packet offered to :meth:`inject`,
        #: whether admitted or shed.
        self.packets_offered = 0
        #: Per-instance metrics registry: owned here (like robustness and
        #: the flow cache) so series survive graph redeployments; an
        #: ``ObservabilitySnapshot`` serves exactly this registry.
        self.metrics = MetricsRegistry()
        #: Sampled packet tracing; None when ``trace_sample_rate`` is 0.
        self.tracer = (
            PacketTracer(
                config.trace_sample_rate, config.trace_buffer, clock=self.clock
            )
            if config.trace_sample_rate > 0
            else None
        )
        self._m_offered = self.metrics.counter("obi_packets_offered_total")
        self._m_shed = self.metrics.counter("obi_packets_shed_total")
        self._m_alerts_sent = self.metrics.counter("obi_alerts_sent_total")
        self._m_duplicates = self.metrics.counter("obi_duplicate_requests_total")
        self._m_dispatch = self.metrics.histogram("obi_dispatch_seconds")
        self._m_headless_buffered = self.metrics.counter(
            "obi_headless_buffered_total"
        )
        self._m_headless_dropped = self.metrics.counter(
            "obi_headless_dropped_total"
        )
        self._m_stale_rejected = self.metrics.counter(
            "obi_stale_generation_rejected_total"
        )
        #: Streaming telemetry producer (PROTOCOL.md §13): cursored ring
        #: of metric deltas / traces / alerts pushed to the subscribed
        #: controller. Deliberately NOT mirrored into ``self.metrics`` —
        #: a ring gauge would make every collect see its own append as a
        #: change, so an idle OBI would never go quiet.
        self.telemetry = TelemetryPublisher(
            config.obi_id, max(config.telemetry_buffer, 1)
        )

    # ------------------------------------------------------------------
    # Controller connection
    # ------------------------------------------------------------------
    def attach_channel(self, channel: Any) -> None:
        """Bind the upstream channel and install the downstream handler."""
        self._channel = channel
        channel.set_handler(self.handle_message)

    def set_upstream(self, channel: Any) -> None:
        """Bind an upstream-only channel (downstream handled elsewhere,
        e.g. by the OBI's own REST endpoint in the dual-channel setup)."""
        self._channel = channel

    def hello_message(self, callback_url: str = "") -> Hello:
        return Hello(
            obi_id=self.config.obi_id,
            version=PROTOCOL_VERSION,
            segment=self.config.segment,
            capabilities=self.factory.supported_types(),
            supports_custom_modules=self.config.supports_custom_modules,
            capacity_hint=self.config.capacity_hint,
            callback_url=callback_url,
            graph_version=self.graph_version,
            graph_digest=self.graph_digest,
            controller_generation=self.highest_controller_generation,
        )

    def connect(self, channel: Any, callback_url: str = "") -> Message:
        """Attach ``channel`` and perform the Hello handshake."""
        self.attach_channel(channel)
        response = channel.request(self.hello_message(callback_url))
        self._absorb_hello_response(response)
        return response

    def reconnect(self, channel: Any | None = None, callback_url: str = "") -> Message:
        """Re-establish contact after losing the controller.

        Re-sends Hello (idempotent controller-side: the handle is simply
        rebuilt, and the hello's digest lets a recovered controller adopt
        the running graph instead of re-pushing it), adopts the new
        controller generation from the response, and — via the headless
        exit path — replays everything buffered while out of contact.
        """
        if channel is not None:
            self.attach_channel(channel)
        if self._channel is None:
            raise ProtocolError(ErrorCode.NOT_CONNECTED, "no upstream channel")
        response = self._channel.request(self.hello_message(callback_url))
        self._absorb_hello_response(response)
        return response

    def _absorb_hello_response(self, response: Message | None) -> None:
        if isinstance(response, HelloResponse) and response.ok:
            self.highest_controller_generation = max(
                self.highest_controller_generation,
                response.controller_generation,
            )
            self.note_controller_heard()

    def rehome(
        self,
        candidates: list[tuple[str, Any]],
        callback_url: str = "",
    ) -> str | None:
        """Walk the controller endpoint list and adopt the first live,
        non-stale responder (PROTOCOL.md §12).

        ``candidates`` is an ordered ``(endpoint, channel)`` list —
        typically built from ``config.controller_endpoints``, which
        every accepted ``LeaseAnnounce`` refreshes. Each candidate gets
        a Hello; a responder whose HelloResponse carries a generation
        *below* the highest this OBI has obeyed is a deposed leader
        still answering its socket and is skipped, never adopted.
        Adopting a winner re-binds the upstream channel and (via the
        headless exit path) replays everything buffered while out of
        contact to *that* controller — at-least-once, to whoever
        actually won, not to whoever the events were born under.

        Returns the adopted endpoint, or None when nobody qualified.
        """
        for endpoint, channel in candidates:
            self.rehome_attempts += 1
            try:
                response = channel.request(self.hello_message(callback_url))
            except (ChannelClosed, OSError):
                continue
            if not (isinstance(response, HelloResponse) and response.ok):
                continue
            if (
                response.controller_generation
                < self.highest_controller_generation
            ):
                self.rehome_stale_skipped += 1
                continue
            self.attach_channel(channel)
            self._absorb_hello_response(response)
            self.rehomes += 1
            self.rehomed_to = endpoint
            return endpoint
        return None

    def _lease_announce(self, message: LeaseAnnounce) -> Message:
        """Absorb a leadership announcement (§12).

        The epoch fence already ran in :meth:`handle_message`, so by
        here the announce is from the current (or a newer) leader:
        refresh the re-homing endpoint list and remember who leads.
        The announce also counts as controller liveness, like any
        authenticated downstream traffic.
        """
        self.lease_announcements += 1
        self.announced_leader = message.leader_id
        if message.endpoints:
            self.config.controller_endpoints = list(message.endpoints)
        return BarrierResponse(xid=message.xid)

    def send_keepalive(self) -> None:
        if self._channel is not None:
            self._channel.notify(KeepAlive(
                obi_id=self.config.obi_id,
                graph_version=self.graph_version,
                graph_digest=self.graph_digest,
                controller_generation=self.highest_controller_generation,
            ))

    # ------------------------------------------------------------------
    # Headless mode (PROTOCOL.md §10)
    # ------------------------------------------------------------------
    def is_headless(self) -> bool:
        """Whether the OBI is operating without a live controller.

        The transition in is lazy: evaluated against the injectable
        clock whenever an upstream event needs routing, so no background
        thread is required. ``headless_after`` 0 disables it.
        """
        if (
            not self._headless
            and self.config.headless_after > 0
            and self.clock() - self.last_controller_heard
            > self.config.headless_after
        ):
            self._headless = True
            self.headless_episodes += 1
        return self._headless

    def note_controller_heard(self) -> None:
        """Record controller liveness; leaving headless replays the buffer."""
        self.last_controller_heard = self.clock()
        if self._headless:
            self._exit_headless()

    def _buffer_upstream(self, message: Message) -> None:
        fit = self.headless_buffer.push(message)
        self._m_headless_buffered.inc()
        if not fit:
            self._m_headless_dropped.inc()

    def _exit_headless(self) -> None:
        """Replay buffered events upstream, oldest first.

        If the channel dies mid-replay the un-replayed suffix goes back
        to the front of the buffer and the OBI stays headless — replay
        is at-least-once, never lossy beyond the counted ring evictions.
        """
        if self._channel is None:
            return
        entries, dropped = self.headless_buffer.drain()
        for index, entry in enumerate(entries):
            try:
                self._channel.notify(entry)
            except ChannelClosed:
                self.headless_buffer.requeue_front(entries[index:])
                self.headless_buffer.dropped += dropped
                return
            if isinstance(entry, Alert):
                self.alerts_sent += 1
                self._m_alerts_sent.inc()
        self._headless = False
        if dropped:
            # The controller must learn the loss, not just the survivors.
            try:
                self._notify_alert(Alert(
                    obi_id=self.config.obi_id,
                    block=OBI_PSEUDO_BLOCK,
                    origin_app=OBI_PSEUDO_BLOCK,
                    message=(
                        f"{dropped} events dropped while headless "
                        f"(buffer capacity {self.headless_buffer.capacity})"
                    ),
                    severity="warning",
                    count=dropped,
                ))
            except ChannelClosed:
                self._headless = True
                self.headless_buffer.dropped += dropped

    # ------------------------------------------------------------------
    # Packet processing
    # ------------------------------------------------------------------
    def process_packet(self, packet: Packet) -> PacketOutcome:
        """Run one packet through the deployed graph.

        Ingress first passes the admission gate (when overload control is
        configured): a shed packet never reaches the engine and comes
        back ``dropped`` + ``shed``. Alerts raised by the graph and
        contained element faults are coalesced, rate limited, and
        forwarded upstream on the controller channel (paper §3.4).
        """
        self.packets_offered += 1
        self._m_offered.inc()
        # Flow-state exhaustion degrades the OBI through the same path
        # as ingress overload (ORed inside EngineRobustness.degraded).
        self.robustness.state_pressure = self.session.under_degradation
        if self._admission is not None:
            verdict = self._admission.admit(packet)
            # The gate drives degraded mode: below the watermark the
            # engine starts bypassing blocks marked ``degradable``.
            self.robustness.degraded = self._admission.degraded
            if not verdict.admitted:
                self._m_shed.inc()
                outcome = PacketOutcome(dropped=True, shed=True)
                with self._lock:
                    if self.history.maxlen:
                        self.history.append({
                            "packet": self._safe_summary(packet),
                            "path": [],
                            "dropped": True,
                            "shed": verdict.reason or "exhausted",
                            "outputs": [],
                            "alerts": [],
                            "at": self.clock(),
                        })
                return outcome
        with self._lock:
            if self.engine is None:
                raise ProtocolError(
                    ErrorCode.INVALID_GRAPH, "no processing graph deployed"
                )
            outcome = self.engine.process(packet)
            self.packets_processed += 1
            self.bytes_processed += len(packet)
            if self.history.maxlen:
                self.history.append({
                    "packet": self._safe_summary(packet),
                    "path": list(outcome.path),
                    "dropped": outcome.dropped,
                    "outputs": [device for device, _pkt in outcome.outputs],
                    "alerts": [event.message for event in outcome.alerts],
                    "at": self.clock(),
                })
        self._forward_alerts(outcome)
        return outcome

    def inject(self, packet: Packet) -> PacketOutcome:
        """Ingress entry point — admission gate, then the engine."""
        return self.process_packet(packet)

    def inject_batch(self, packets: list[Packet]) -> list[PacketOutcome]:
        """Vectorized ingress: per-packet semantics, amortized bookkeeping.

        Each packet still passes the admission gate individually (token
        accounting and seeded shedding are order-dependent, so a batch
        sheds exactly the packets a packet-at-a-time loop would) and
        each outcome lands in the history, but the engine lock is taken
        once for the whole vector and the alert batcher sees all the
        outcomes' events in a single pass — cross-packet coalescing
        that per-packet :meth:`inject` cannot do (each packet's own
        ``PacketOutcome.alerts`` is unchanged either way).
        """
        outcomes: list[PacketOutcome] = []
        with self._lock:
            for packet in packets:
                self.packets_offered += 1
                self._m_offered.inc()
                self.robustness.state_pressure = (
                    self.session.under_degradation
                )
                if self._admission is not None:
                    verdict = self._admission.admit(packet)
                    self.robustness.degraded = self._admission.degraded
                    if not verdict.admitted:
                        self._m_shed.inc()
                        outcomes.append(PacketOutcome(dropped=True, shed=True))
                        if self.history.maxlen:
                            self.history.append({
                                "packet": self._safe_summary(packet),
                                "path": [],
                                "dropped": True,
                                "shed": verdict.reason or "exhausted",
                                "outputs": [],
                                "alerts": [],
                                "at": self.clock(),
                            })
                        continue
                if self.engine is None:
                    raise ProtocolError(
                        ErrorCode.INVALID_GRAPH, "no processing graph deployed"
                    )
                outcome = self.engine.process(packet)
                self.packets_processed += 1
                self.bytes_processed += len(packet)
                if self.history.maxlen:
                    self.history.append({
                        "packet": self._safe_summary(packet),
                        "path": list(outcome.path),
                        "dropped": outcome.dropped,
                        "outputs": [device for device, _pkt in outcome.outputs],
                        "alerts": [event.message for event in outcome.alerts],
                        "at": self.clock(),
                    })
                outcomes.append(outcome)
        events: list[AlertEvent] = []
        for outcome in outcomes:
            events.extend(self._alert_events(outcome))
        self._forward_alert_events(events)
        return outcomes

    @staticmethod
    def _safe_summary(packet: Packet) -> str:
        try:
            return packet.summary()
        except Exception:  # noqa: BLE001 — the frame itself may be hostile
            return f"unparseable frame len={len(packet.data)}"

    def _forward_alerts(self, outcome: PacketOutcome) -> None:
        self._forward_alert_events(self._alert_events(outcome))

    @staticmethod
    def _alert_events(outcome: PacketOutcome) -> list[AlertEvent]:
        """One outcome's upstream-bound events: alerts + contained faults."""
        events = list(outcome.alerts)
        for error in outcome.errors:
            events.append(AlertEvent(
                block=error.block,
                origin_app=error.origin_app,
                message=f"element fault ({error.policy}): {error.error}",
                severity="error",
                packet_summary=error.packet_summary,
            ))
        return events

    def _forward_alert_events(self, events: list[AlertEvent]) -> None:
        """Upstream alert path: coalesce, rate limit, plus quarantine alerts.

        Quarantine transitions bypass the rate limiter — a breaker trip
        is exactly the signal a storm must not drown out — while the
        per-packet alert bodies go through the batcher.
        """
        newly_quarantined = self.robustness.drain_newly_quarantined()
        if self._channel is None:
            return
        for block in newly_quarantined:
            self._notify_alert(Alert(
                obi_id=self.config.obi_id,
                block=block,
                origin_app=OBI_PSEUDO_BLOCK,
                message=f"block {block!r} quarantined after repeated errors",
                severity="critical",
            ))
        if not events:
            return
        for group in self._alert_batcher.batch(events):
            self._notify_alert(Alert(
                obi_id=self.config.obi_id,
                block=group.block,
                origin_app=group.origin_app,
                message=group.message,
                severity=group.severity,
                packet_summary=group.packet_summary,
                count=group.count,
            ))

    def _notify_alert(self, alert: Alert) -> None:
        # Mirror into the telemetry ring at send/buffer time so stream
        # subscribers see the alert even when the notify channel drops it.
        self.telemetry.note_alert(alert)
        if self.is_headless():
            self._buffer_upstream(alert)
            return
        self._channel.notify(alert)
        self.alerts_sent += 1
        self._m_alerts_sent.inc()

    def flush_alerts(self) -> None:
        """Summarize what the rate limiter refused: one "N suppressed"
        alert per origin app, instead of the N alerts themselves."""
        summaries = self._alert_batcher.drain_suppressed()
        if self._channel is None:
            return
        for origin, count in summaries:
            self._notify_alert(Alert(
                obi_id=self.config.obi_id,
                block=OBI_PSEUDO_BLOCK,
                origin_app=origin,
                message=f"{count} alerts suppressed",
                severity="warning",
                count=count,
            ))

    # ------------------------------------------------------------------
    # Health reporting
    # ------------------------------------------------------------------
    @property
    def packets_shed(self) -> int:
        return self._admission.packets_shed if self._admission is not None else 0

    def health_report(self) -> HealthReport:
        """Snapshot of the robustness counters for the controller."""
        return HealthReport(
            obi_id=self.config.obi_id,
            quarantined_blocks=self.robustness.quarantined_blocks(),
            errors_total=self.robustness.errors_total,
            packets_shed=self.packets_shed,
            alerts_sent=self.alerts_sent,
            alerts_suppressed=self._alert_batcher.suppressed_total,
            degraded=self.robustness.degraded,
            graph_version=self.graph_version,
            fastpath_hit_rate=(
                self.flow_cache.hit_rate if self.flow_cache is not None else 0.0
            ),
            headless=self.is_headless(),
            headless_dropped=self.headless_buffer.dropped_total,
            headless_entries=len(self.headless_buffer),
            graph_digest=self.graph_digest,
            state_entries=self.session.flow_count(),
            state_protected=self.session.flow_table.protected_count,
            state_evictions=self.session.flow_table.evictions,
            state_drops=self.session.flow_table.drops,
            state_pressure=self.session.under_degradation,
            state_generation=self.session.state_generation,
        )

    def send_health_report(self) -> None:
        """Flush suppression summaries, then beacon the health counters.

        While headless the beacon is buffered, not delivered: health
        reports are the inputs to the controller's scaling loop, and a
        half-connected OBI must not feed it (the report is replayed on
        reconnect instead).
        """
        self.flush_alerts()
        if self._channel is None:
            return
        report = self.health_report()
        if self.is_headless():
            self._buffer_upstream(report)
        else:
            self._channel.notify(report)

    # ------------------------------------------------------------------
    # Downstream message handling
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> Message | None:
        """Protocol dispatch for messages arriving from the controller.

        Requests are deduplicated by ``xid``: a retransmit of a request
        already applied (its response was lost in transit) replays the
        cached response instead of applying the request twice, which is
        what makes the controller's blind retry idempotent.

        The split-brain guard runs *before* dedup: a request stamped
        with a controller generation older than one already obeyed is
        rejected outright (and never cached — its xids belong to a
        different controller's number space). Lease epochs (§12) ride
        the same fence: for lease-managed controllers the epoch *is*
        the generation, so HA messages stamped ``epoch`` are judged by
        the one monotonic token this OBI tracks.
        """
        incoming_generation = int(
            getattr(message, "controller_generation", 0)
            or getattr(message, "epoch", 0)
            or 0
        )
        if incoming_generation:
            if incoming_generation < self.highest_controller_generation:
                self.stale_generation_rejections += 1
                self._m_stale_rejected.inc()
                return ErrorMessage(
                    xid=message.xid,
                    code=ErrorCode.STALE_GENERATION,
                    detail=(
                        f"generation {incoming_generation} is stale; this OBI "
                        f"has obeyed generation "
                        f"{self.highest_controller_generation}"
                    ),
                )
            self.highest_controller_generation = incoming_generation
        with self._dedup_lock:
            if message.xid in self._response_cache:
                self.duplicate_requests += 1
                self._m_duplicates.inc()
                return self._response_cache[message.xid]
        started = self.clock()
        try:
            response = self._dispatch(message)
        except ProtocolError as exc:
            response = ErrorMessage(xid=message.xid, code=exc.code, detail=exc.detail)
        except Exception as exc:  # noqa: BLE001 — dispatch must never unwind
            # the transport: a handler bug (or a custom element's handle
            # raising something exotic) becomes a protocol-level error
            # response instead of killing the channel thread.
            response = ErrorMessage(
                xid=message.xid,
                code=ErrorCode.INTERNAL_ERROR,
                detail=f"{type(exc).__name__}: {exc}",
            )
        self._m_dispatch.observe(self.clock() - started)
        with self._dedup_lock:
            self._response_cache[message.xid] = response
            while len(self._response_cache) > self._response_cache_limit:
                self._response_cache.popitem(last=False)
        # Any authenticated downstream traffic is controller liveness
        # evidence; leaving headless replays the buffered events.
        self.note_controller_heard()
        return response

    def _dispatch(self, message: Message) -> Message | None:
        if isinstance(message, SetProcessingGraphRequest):
            return self._set_graph(message)
        if isinstance(message, GlobalStatsRequest):
            return self._global_stats(message)
        if isinstance(message, ReadRequest):
            return self._read(message)
        if isinstance(message, WriteRequest):
            return self._write(message)
        if isinstance(message, AddCustomModuleRequest):
            return self._add_module(message)
        if isinstance(message, ListCapabilitiesRequest):
            return ListCapabilitiesResponse(
                xid=message.xid,
                capabilities=self.factory.supported_types(),
                supports_custom_modules=self.config.supports_custom_modules,
            )
        if isinstance(message, SetExternalServices):
            self.config.keepalive_interval = message.keepalive_interval
            return BarrierResponse(xid=message.xid)
        if isinstance(message, LeaseAnnounce):
            return self._lease_announce(message)
        if isinstance(message, BarrierRequest):
            return BarrierResponse(xid=message.xid)
        if isinstance(message, ObservabilitySnapshotRequest):
            return self._observability(message)
        if isinstance(message, PacketHistoryRequest):
            with self._lock:
                records = list(self.history)
            if message.limit > 0:
                records = records[-message.limit:]
            return PacketHistoryResponse(xid=message.xid, records=records)
        if isinstance(message, ExportStateRequest):
            return ExportStateResponse(
                xid=message.xid,
                state=self.session.export_entries(now=self.clock()),
            )
        if isinstance(message, ImportStateRequest):
            report = self.session.import_entries_checked(
                message.state, now=self.clock()
            )
            return ImportStateResponse(
                xid=message.xid,
                flows_imported=report.imported,
                rejected=dict(report.rejected),
            )
        if isinstance(message, StateCheckpointRequest):
            return StateCheckpointResponse(
                xid=message.xid,
                obi_id=self.config.obi_id,
                state_generation=self.session.state_generation,
                state=self.session.export_entries(now=self.clock()),
            )
        if isinstance(message, StateHandoffRequest):
            return self._state_handoff(message)
        if isinstance(message, TelemetrySubscribe):
            return self._telemetry_subscribe(message)
        if isinstance(message, TelemetryAck):
            self.telemetry.handle_ack(message)
            return BarrierResponse(xid=message.xid)
        raise ProtocolError(
            ErrorCode.UNKNOWN_MESSAGE, f"OBI cannot handle {message.TYPE}"
        )

    def _state_handoff(self, message: StateHandoffRequest) -> Message:
        """Install a dead peer's checkpoint, fenced by state generation.

        The fence is per source OBI: once generation G has been imported
        from ``source_obi``, anything older from the same source (a
        partitioned ghost's stale checkpoint) is rejected; an equal
        generation is an idempotent retry and accepted.
        """
        fence = self._handoff_fence.get(message.source_obi)
        if fence is not None and message.state_generation < fence:
            self.stale_handoff_rejections += 1
            return StateHandoffResponse(
                xid=message.xid, accepted=False, stale=True
            )
        self._handoff_fence[message.source_obi] = message.state_generation
        report = self.session.import_entries_checked(
            message.state, now=self.clock()
        )
        return StateHandoffResponse(
            xid=message.xid,
            accepted=True,
            flows_imported=report.imported,
            rejected=dict(report.rejected),
        )

    def _set_graph(self, message: SetProcessingGraphRequest) -> Message:
        """Two-phase graph apply: stage → verify → commit.

        The previous graph keeps serving packets until the new one has
        been fully translated, instantiated, and verified; any error in
        those phases rolls back to it, so a bad merged graph can never
        leave the instance blackholing traffic.
        """
        # Phase 1 — stage: parse and instantiate off to the side.
        try:
            received_digest = canonical_graph_digest(message.graph)
            if message.graph_digest and message.graph_digest != received_digest:
                # The controller digested what it sent; disagreement here
                # means the graph was corrupted in transit.
                raise ProtocolError(
                    ErrorCode.INVALID_GRAPH,
                    f"graph digest mismatch: sender claims "
                    f"{message.graph_digest}, received {received_digest}",
                )
            graph = ProcessingGraph.from_dict(message.graph)
            graph.validate()
            engine = build_engine(
                graph,
                factory=self.factory,
                clock=self.clock,
                session=self.session,
                log_service=self.log_service,
                storage_service=self.storage_service,
                robustness=self.robustness,
                flow_cache=self.flow_cache,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            # Phase 2 — verify: the entry point must have resolved to a
            # live element (an engine without one rejects every packet),
            # and every declared block must have been translated, before
            # we commit.
            if not engine.entry_resolved:
                raise ProtocolError(
                    ErrorCode.INVALID_GRAPH,
                    f"entry point {engine.entry_name!r} did not resolve "
                    "to a live element",
                )
            missing = set(graph.blocks) - set(engine.elements)
            if missing:
                raise ProtocolError(
                    ErrorCode.INVALID_GRAPH,
                    f"translation dropped blocks: {sorted(missing)}",
                )
        except ProtocolError:
            self.graph_rollbacks += 1
            raise
        except (GraphValidationError, KeyError, ValueError) as exc:
            self.graph_rollbacks += 1
            raise ProtocolError(ErrorCode.INVALID_GRAPH, str(exc)) from exc
        if self.config.reconfigure_poll_delay > 0:
            # Reproduces Click's hard-coded 1000 ms element-update poll
            # (paper Table 3, footnote 4).
            time.sleep(self.config.reconfigure_poll_delay)
        # Phase 3 — commit: atomic swap against in-flight packets.
        with self._lock:
            if self.engine is not None:
                # Flush the outgoing engine's telemetry into the registry
                # before it is dropped; the registry accumulates across
                # deployments.
                self.engine.export_metrics()
            self.graph = graph
            self.engine = engine
            self.graph_version += 1
            self.graph_digest = received_digest
            # Decisions recorded against the old graph are meaningless
            # under the new wiring.
            if self.flow_cache is not None:
                self.flow_cache.invalidate_all("graph-swap")
                # Flush the cache's post-invalidate gauges immediately so
                # a subscriber attaching mid-swap reads registry state
                # consistent with the new graph, not the stale mirrors.
                self.flow_cache.bind_metrics(self.metrics)
                self.flow_cache.export_metrics()
        return SetProcessingGraphResponse(
            xid=message.xid,
            ok=True,
            detail=f"version {self.graph_version}",
            graph_version=self.graph_version,
            graph_digest=self.graph_digest,
        )

    def observability_snapshot(
        self, include_traces: bool = True, max_traces: int = 0
    ) -> ObservabilitySnapshotResponse:
        """The instance's metrics + recent sampled traces (PROTOCOL.md §9).

        Snapshot-time-only series (flow-cache counters, quarantine and
        degradation levels, sampling totals) are mirrored into gauges
        here rather than maintained on the hot path — pull telemetry
        should cost the data plane nothing between pulls.
        """
        with self._lock:
            snapshot = self._export_registry_locked()
            tracer = self.tracer
            return ObservabilitySnapshotResponse(
                obi_id=self.config.obi_id,
                graph_version=self.graph_version,
                metrics=snapshot,
                traces=(
                    tracer.traces(max_traces)
                    if include_traces and tracer is not None
                    else []
                ),
                packets_seen=(
                    tracer.seen if tracer is not None else self.packets_offered
                ),
                packets_sampled=tracer.sampled if tracer is not None else 0,
                sample_rate=tracer.sample_rate if tracer is not None else 0.0,
            )

    def _export_registry_locked(self) -> dict[str, Any]:
        """Flush watermarks, mirror gauges, snapshot — one critical section.

        ``Engine.export_metrics`` is an unguarded read-inc-write
        watermark: two concurrent exports (a snapshot racing a graph
        swap) would double-apply the same delta and inflate the shared
        registry. Every exporting path therefore runs under the engine
        lock, and the snapshot is taken in the *same* critical section —
        so the absolute values any consumer (pull response or telemetry
        ring record) observes are mutually consistent and monotonic.
        """
        with self._lock:
            if self.engine is not None:
                self.engine.export_metrics()
            if self.flow_cache is not None:
                self.flow_cache.bind_metrics(self.metrics)
                self.flow_cache.export_metrics()
            gauges = self.metrics
            gauges.gauge("obi_graph_version").set(self.graph_version)
            gauges.gauge("obi_degraded").set(
                1.0 if self.robustness.degraded else 0.0
            )
            gauges.gauge("obi_quarantined_blocks").set(
                len(self.robustness.quarantined_blocks())
            )
            gauges.gauge("obi_errors_total").set(self.robustness.errors_total)
            gauges.gauge("obi_headless").set(1.0 if self.is_headless() else 0.0)
            gauges.gauge("obi_headless_entries").set(len(self.headless_buffer))
            table = self.session.flow_table
            gauges.gauge("obi_state_entries").set(len(table))
            gauges.gauge("obi_state_protected").set(table.protected_count)
            gauges.gauge("obi_state_evictions").set(table.evictions)
            gauges.gauge("obi_state_drops").set(table.drops)
            gauges.gauge("obi_state_pressure").set(
                1.0 if table.under_degradation else 0.0
            )
            tracer = self.tracer
            if tracer is not None:
                gauges.gauge("trace_packets_seen").set(tracer.seen)
                gauges.gauge("trace_packets_sampled").set(tracer.sampled)
            return self.metrics.snapshot()

    def _observability(self, message: ObservabilitySnapshotRequest) -> Message:
        response = self.observability_snapshot(
            include_traces=message.include_traces, max_traces=message.max_traces
        )
        response.xid = message.xid
        return response

    # ------------------------------------------------------------------
    # Streaming telemetry (PROTOCOL.md §13)
    # ------------------------------------------------------------------
    def _telemetry_meta(self) -> dict[str, Any]:
        """Context riding metric records (the pull response's envelope)."""
        tracer = self.tracer
        return {
            "graph_version": self.graph_version,
            "packets_seen": (
                tracer.seen if tracer is not None else self.packets_offered
            ),
            "packets_sampled": tracer.sampled if tracer is not None else 0,
            "sample_rate": tracer.sample_rate if tracer is not None else 0.0,
        }

    def _telemetry_collect(self) -> int:
        """Diff current state into the telemetry ring; records appended.

        Runs under the engine lock so the snapshot, the meta envelope,
        and the trace list are taken atomically with respect to graph
        swaps — ring order matches registry order, which is what keeps
        a folding subscriber's counters monotonic.
        """
        with self._lock:
            snapshot = self._export_registry_locked()
            tracer = self.tracer
            traces = tracer.traces(0) if tracer is not None else ()
            return self.telemetry.collect(
                snapshot, self._telemetry_meta(), traces
            )

    def _telemetry_subscribe(self, message: TelemetrySubscribe) -> Message:
        """Open/refresh a subscription; the response is the first batch."""
        epoch = (
            message.controller_generation or self.highest_controller_generation
        )
        self.telemetry.subscribe(message, epoch=epoch)
        self._telemetry_collect()
        stream = self.telemetry.build_stream(drain=message.drain)
        if stream is None:
            # Nothing past the cursor (an idempotent re-subscribe):
            # answer with an empty batch so the consumer still learns
            # the covered seq.
            stream = TelemetryStream(
                obi_id=self.config.obi_id,
                subscriber=message.subscriber,
                through_seq=self.telemetry.ring.cursor(message.subscriber),
                epoch=epoch,
            )
        stream.xid = message.xid
        return stream

    def publish_telemetry(self) -> TelemetryAck | None:
        """Push one batch upstream; returns the consumer's ack (or None).

        Collection happens unconditionally — while headless or
        disconnected the ring keeps accumulating (bounded, drop-counted)
        so history replays after reconnect. The wire send is skipped
        when there is no live subscriber; a dead channel leaves the
        cursor unmoved, so the next publish replays the batch
        (at-least-once). A stream with nothing new costs no send at all:
        push cost scales with change rate, not with the publish cadence.
        """
        if self.telemetry.subscription is None:
            return None
        self._telemetry_collect()
        if self._channel is None or self.is_headless():
            return None
        stream = self.telemetry.build_stream()
        if stream is None:
            return None
        try:
            response = self._channel.request(stream)
        except ChannelClosed:
            return None
        self.telemetry.handle_ack(response)
        return response if isinstance(response, TelemetryAck) else None

    def _global_stats(self, message: GlobalStatsRequest) -> Message:
        return GlobalStatsResponse(
            xid=message.xid,
            obi_id=self.config.obi_id,
            cpu_load=self.estimate_cpu_load(),
            memory_used=self.estimate_memory_used(),
            memory_total=1 << 30,
            packets_processed=self.packets_processed,
            bytes_processed=self.bytes_processed,
            uptime=self.clock() - self._started_at,
        )

    def _read(self, message: ReadRequest) -> Message:
        if message.block == OBI_PSEUDO_BLOCK:
            # Instance-level robustness state: served even with no graph
            # deployed (the controller may probe a sick OBI).
            try:
                value = self.read_obi_handle(message.handle)
            except KeyError as exc:
                raise ProtocolError(ErrorCode.UNKNOWN_HANDLE, str(exc)) from exc
            return ReadResponse(
                xid=message.xid,
                block=message.block,
                handle=message.handle,
                value=value,
            )
        if self.engine is None:
            raise ProtocolError(ErrorCode.INVALID_GRAPH, "no graph deployed")
        try:
            with self._lock:
                value = self.engine.read_handle(message.block, message.handle)
        except KeyError as exc:
            code = (
                ErrorCode.UNKNOWN_BLOCK
                if message.block not in self.engine.elements
                else ErrorCode.UNKNOWN_HANDLE
            )
            raise ProtocolError(code, str(exc)) from exc
        except (TypeError, ValueError) as exc:
            raise ProtocolError(ErrorCode.MALFORMED_MESSAGE, str(exc)) from exc
        return ReadResponse(
            xid=message.xid, block=message.block, handle=message.handle, value=value
        )

    def read_obi_handle(self, handle: str) -> Any:
        """Read handles of the ``_obi`` pseudo-block (PROTOCOL.md §7)."""
        if handle == "alerts_sent":
            return self.alerts_sent
        if handle == "alerts_suppressed":
            return self._alert_batcher.suppressed_total
        if handle == "errors_total":
            return self.robustness.errors_total
        if handle == "packets_shed":
            return self.packets_shed
        if handle == "quarantined_blocks":
            return self.robustness.quarantined_blocks()
        if handle == "poison_quarantine":
            return self.robustness.poison_digests()
        if handle == "degraded":
            return self.robustness.degraded
        if handle == "fastpath_hits":
            return self.flow_cache.hits if self.flow_cache is not None else 0
        if handle == "fastpath_misses":
            return self.flow_cache.misses if self.flow_cache is not None else 0
        if handle == "fastpath_uncacheable":
            return self.flow_cache.uncacheable_hits if self.flow_cache is not None else 0
        if handle == "fastpath_invalidations":
            return self.flow_cache.invalidations if self.flow_cache is not None else 0
        if handle == "fastpath_entries":
            return self.flow_cache.entries if self.flow_cache is not None else 0
        if handle == "fastpath_hit_rate":
            return self.flow_cache.hit_rate if self.flow_cache is not None else 0.0
        if handle == "trace_seen":
            return self.tracer.seen if self.tracer is not None else 0
        if handle == "trace_sampled":
            return self.tracer.sampled if self.tracer is not None else 0
        if handle == "trace_sample_rate":
            return self.tracer.sample_rate if self.tracer is not None else 0.0
        if handle == "headless":
            return self.is_headless()
        if handle == "headless_entries":
            return len(self.headless_buffer)
        if handle == "headless_dropped":
            return self.headless_buffer.dropped_total
        if handle == "headless_episodes":
            return self.headless_episodes
        if handle == "graph_digest":
            return self.graph_digest
        if handle == "controller_generation":
            return self.highest_controller_generation
        if handle == "stale_generation_rejections":
            return self.stale_generation_rejections
        # Resilient flow state (PROTOCOL.md §11).
        if handle == "fastpath_flow_invalidations":
            return (
                self.flow_cache.flow_invalidations
                if self.flow_cache is not None else 0
            )
        if handle == "state_entries":
            return self.session.flow_count()
        if handle == "state_protected":
            return self.session.flow_table.protected_count
        if handle == "state_evictions":
            return self.session.flow_table.evictions
        if handle == "state_eviction_reasons":
            return dict(self.session.flow_table.eviction_reasons)
        if handle == "state_drops":
            return self.session.flow_table.drops
        if handle == "state_drop_reasons":
            return dict(self.session.flow_table.drop_reasons)
        if handle == "state_pressure":
            return self.session.under_degradation
        if handle == "state_generation":
            return self.session.state_generation
        if handle == "state_checkpoint_degraded":
            checkpoint = self.session.flow_table.checkpoint
            return checkpoint.degraded if checkpoint is not None else False
        if handle == "state_checkpoint_dropped":
            checkpoint = self.session.flow_table.checkpoint
            return (
                checkpoint.dropped_records if checkpoint is not None else 0
            )
        if handle == "state_checkpoint_resumes":
            checkpoint = self.session.flow_table.checkpoint
            return checkpoint.resumes if checkpoint is not None else 0
        if handle == "stale_handoff_rejections":
            return self.stale_handoff_rejections
        if handle == "rehomes":
            return self.rehomes
        if handle == "rehome_stale_skipped":
            return self.rehome_stale_skipped
        if handle == "announced_leader":
            return self.announced_leader
        if handle == "controller_endpoints":
            return list(self.config.controller_endpoints)
        raise KeyError(f"{OBI_PSEUDO_BLOCK} has no read handle {handle!r}")

    def _write(self, message: WriteRequest) -> Message:
        if self.engine is None:
            raise ProtocolError(ErrorCode.INVALID_GRAPH, "no graph deployed")
        try:
            with self._lock:
                self.engine.write_handle(message.block, message.handle, message.value)
        except KeyError as exc:
            code = (
                ErrorCode.UNKNOWN_BLOCK
                if message.block not in self.engine.elements
                else ErrorCode.UNKNOWN_HANDLE
            )
            raise ProtocolError(code, str(exc)) from exc
        except (TypeError, ValueError) as exc:
            # A known handle fed a garbage value (e.g. a firewall ruleset
            # that fails to parse) must answer with a protocol error, not
            # unwind the dispatcher with a raw ValueError.
            raise ProtocolError(ErrorCode.MALFORMED_MESSAGE, str(exc)) from exc
        return WriteResponse(
            xid=message.xid, block=message.block, handle=message.handle, ok=True
        )

    def _add_module(self, message: AddCustomModuleRequest) -> Message:
        if not self.config.supports_custom_modules:
            raise ProtocolError(
                ErrorCode.MODULE_REJECTED, "this OBI does not accept custom modules"
            )
        module = self.loader.load(
            module_name=message.module_name,
            binary=message.binary(),
            block_types=message.block_types,
            translation=message.translation,
        )
        return AddCustomModuleResponse(
            xid=message.xid,
            module_name=module.name,
            ok=True,
            detail=f"registered {len(module.block_types)} block types",
        )

    # ------------------------------------------------------------------
    # Load estimation (reported via GlobalStats, used for scaling)
    # ------------------------------------------------------------------
    #: Cost of a fast-path hit relative to a slow-path packet, for load
    #: estimation: a hit replays recorded decisions instead of running
    #: the classifier matches that dominate path cost.
    FASTPATH_HIT_COST = 0.25

    def estimate_cpu_load(self) -> float:
        """Fraction of capacity consumed, from recent packet accounting.

        Real OBIs read /proc; this reproduction derives load from packets
        processed per second of clock time against the capacity hint
        (packets/second at full load per unit hint). Packets served from
        the flow-decision cache are discounted to
        :data:`FASTPATH_HIT_COST` of a slow-path packet, so a warm OBI
        reports the headroom the cache actually buys it.
        """
        elapsed = max(self.clock() - self._started_at, 1e-9)
        packets = float(self.packets_processed)
        if self.flow_cache is not None:
            hits = min(self.flow_cache.hits, self.packets_processed)
            packets -= (1.0 - self.FASTPATH_HIT_COST) * hits
        rate = packets / elapsed
        full_load_rate = 100_000.0 * self.config.capacity_hint
        return min(1.0, rate / full_load_rate)

    def estimate_memory_used(self) -> int:
        base = 64 << 20
        per_flow = 512
        per_block = 4096
        blocks = len(self.graph.blocks) if self.graph is not None else 0
        return base + per_flow * self.session.flow_count() + per_block * blocks
