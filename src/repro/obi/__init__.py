"""The OpenBox data plane: service instances (OBIs) and their engine.

An OBI (paper §3.1, §4.2) is a generic, low-level packet processor. It
receives a processing graph from the controller, instantiates it on the
execution engine, applies it to packets, answers read/write handles,
reports load, and raises alerts. The paper's implementation wraps the
Click modular router; :mod:`repro.obi.engine` is the Python analog —
a push-based element engine with the same block semantics.
"""

from repro.obi.engine import Element, Engine, EngineContext, PacketOutcome
from repro.obi.instance import ObiConfig, OpenBoxInstance
from repro.obi.storage import MetadataCodec, SessionStorage

__all__ = [
    "Element",
    "Engine",
    "EngineContext",
    "MetadataCodec",
    "ObiConfig",
    "OpenBoxInstance",
    "PacketOutcome",
    "SessionStorage",
]
