"""Resilient per-flow NF state: bounded, versioned, crash-safe.

SessionStorage's original backing store was a best-effort dict: it died
with the OBI process, was migrated only by hand, and had no defense
against state-table exhaustion. This module is the hardened replacement
(the "Stateful Forwarding Abstraction" argument: per-flow state must be
a first-class, bounded, recoverable table for software NFs to scale).
Four layers:

* **Exhaustion defense** (:class:`FlowStateTable`) — a hard entry cap
  with per-source-prefix budgets, early-TTL eviction of idle embryonic
  entries under pressure, LRU eviction of unprotected entries, and a
  strict guarantee that *protected* entries (established connections)
  are never displaced: when only protected entries remain, new state is
  refused instead. Every eviction and refusal is counted by reason.
* **Versioned entries** — every session write or state transition bumps
  the flow's version and fires :attr:`FlowStateTable.on_state_change`,
  which the OBI wires to per-flow fast-path invalidation (so a state
  transition flushes exactly one flow's cached decision, not the whole
  cache).
* **Crash-safe checkpoints** (:class:`FlowStateCheckpointer`) — durable
  state changes append delta records to an fsync-batched JSON-lines
  journal (the exact format of :class:`repro.controller.journal.StateJournal`,
  which is reused directly), periodically compacted into a snapshot
  record. :func:`load_checkpoint` restores the longest valid prefix
  after a crash, tolerating a torn tail.
* **Generation fencing** — each restore bumps the table's
  ``state_generation``; handoff consumers reject checkpoints from a
  generation older than one already imported, so a ghost OBI's stale
  state can never overwrite a survivor's newer view.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.controller.journal import StateJournal
from repro.durable import Storage
from repro.net.flow import FiveTuple, Flow, FlowTable
from repro.net.packet import Packet


@dataclass
class FlowStatePolicy:
    """Exhaustion-defense knobs for a :class:`FlowStateTable`.

    The defaults match the old SessionStorage bound (one million flows)
    with pressure policies that only engage near the cap, so existing
    deployments behave identically until they approach exhaustion.
    """

    #: Hard cap on table entries; insertion beyond it evicts per the
    #: policy below or refuses the new entry.
    max_entries: int = 1_000_000
    #: Source-address prefix length (bits) used for per-prefix budgets.
    prefix_bits: int = 16
    #: Largest fraction of the table one source prefix may occupy
    #: (0 disables budgets). A spoofed flood confined to few prefixes
    #: exhausts its budget long before it exhausts the table.
    prefix_share: float = 0.25
    #: Occupancy fraction at which pressure mode starts: idle
    #: *unprotected* entries become evictable after ``early_ttl``
    #: instead of the full idle timeout.
    pressure_watermark: float = 0.85
    #: Occupancy fraction at which the OBI reports degradation
    #: (feeds ``EngineRobustness.state_pressure`` → HealthReport).
    degradation_watermark: float = 0.95
    #: Idle seconds after which an unprotected entry may be reclaimed
    #: under pressure (embryonic handshakes age out fast in a flood).
    early_ttl: float = 5.0
    #: Entries examined per early-TTL sweep (amortized per insertion).
    sweep_limit: int = 64

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if not 0 <= self.prefix_bits <= 32:
            raise ValueError("prefix_bits must be in [0, 32]")


@dataclass
class CheckpointRestore:
    """What :func:`load_checkpoint` reconstructed from a journal."""

    #: Surviving flow entries (export_entries schema), post-fold.
    entries: list[dict[str, Any]] = field(default_factory=list)
    #: Highest state generation recorded in the journal.
    generation: int = 0
    #: Records folded (snapshot + deltas).
    records: int = 0
    #: True when the scan stopped at a corrupt/truncated line; the
    #: entries are the fold of the longest valid prefix.
    truncated: bool = False


def _entry_key(entry: dict[str, Any]) -> tuple:
    key = entry["key"]
    return (
        int(key["src_ip"]), int(key["dst_ip"]),
        int(key["src_port"]), int(key["dst_port"]), int(key["proto"]),
    )


def load_checkpoint(path: str | os.PathLike[str]) -> CheckpointRestore:
    """Fold a flow-state journal into the surviving entry set.

    Longest-valid-prefix semantics, mirroring
    :meth:`repro.controller.journal.StateJournal.replay`: a torn tail
    (half-written last line after SIGKILL) stops the fold; everything
    before it is recovered. Duplicate ``flow`` records fold
    idempotently (last write wins), ``flow_gone`` records delete.
    """
    result = CheckpointRestore()
    by_key: dict[tuple, dict[str, Any]] = {}
    try:
        handle = open(os.fspath(path), "r", encoding="utf-8", errors="replace")
    except FileNotFoundError:
        return result
    with handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
                if not isinstance(record, dict) or "rec" not in record:
                    raise ValueError("not a journal record")
            except ValueError:
                result.truncated = True
                break
            kind = record.get("rec")
            try:
                if kind == "snapshot":
                    state = record.get("state", {})
                    result.generation = max(
                        result.generation, int(state.get("generation", 0))
                    )
                    by_key = {
                        _entry_key(entry): entry
                        for entry in state.get("entries", [])
                    }
                elif kind == "flow":
                    entry = record["entry"]
                    by_key[_entry_key(entry)] = entry
                elif kind == "flow_gone":
                    by_key.pop(_entry_key({"key": record["key"]}), None)
                elif kind == "state_generation":
                    result.generation = max(
                        result.generation, int(record.get("generation", 0))
                    )
                # Unknown kinds are skipped, not fatal: a newer OBI's
                # journal replays on an older one minus what it cannot
                # understand.
            except (KeyError, TypeError, ValueError):
                result.truncated = True
                break
            result.records += 1
    result.entries = list(by_key.values())
    return result


class _CheckpointImage:
    """Duck-typed state for :meth:`StateJournal.compact` (``to_dict``)."""

    def __init__(self, generation: int, entries: list[dict[str, Any]]) -> None:
        self.generation = generation
        self.entries = entries

    def to_dict(self) -> dict[str, Any]:
        return {"generation": self.generation, "entries": self.entries}


class FlowStateCheckpointer:
    """Crash-safe persistence for a :class:`FlowStateTable`.

    Reuses :class:`~repro.controller.journal.StateJournal` wholesale:
    durable state changes append ``{"rec": "flow", ...}`` delta records
    (fsync-batched), removals append ``flow_gone``, and after
    ``snapshot_every`` appends the whole table is compacted into one
    atomic ``snapshot`` record — so restore cost is O(state), not
    O(history), and a crash at any point leaves a replayable file.

    Only flows that have reached a *durable* state (an established
    connection, a session verdict) are journaled: a SYN flood's
    embryonic entries never touch the disk, which keeps the journal
    write rate proportional to real sessions, not attack packets.

    **Storage degradation**: persistence is an *enhancement* of the
    in-memory table, never a dependency — when the disk starts refusing
    writes (ENOSPC, EIO) the checkpointer sheds to in-memory-only
    operation instead of letting an OSError reach the packet path.
    Every shed record is counted (:attr:`dropped_records`), and every
    ``resume_every`` sheds the disk is probed with a full-table
    :meth:`StateJournal.rebuild`: on success the journal is a fresh
    fsync'd snapshot of the *live* table (nothing dropped while
    degraded is lost — the table itself is the authority) and delta
    journaling resumes.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        fsync_every: int = 8,
        snapshot_every: int = 256,
        storage: Storage | None = None,
        resume_every: int = 32,
    ) -> None:
        self.journal = StateJournal(
            path, fsync_every=fsync_every, compact_every=snapshot_every,
            storage=storage,
        )
        #: Keys present in the journal (snapshot or delta): removals of
        #: never-journaled flows are skipped so flood-evicted embryonic
        #: entries cost no journal traffic on the way out either.
        self._journaled: set[FiveTuple] = set()
        #: True while shedding to in-memory-only (storage refused a write).
        self.degraded = False
        #: Durable-state records shed while degraded (drop accounting).
        self.dropped_records = 0
        #: Successful returns from degraded mode (fresh rebuilt segment).
        self.resumes = 0
        #: Probe the disk for recovery after this many sheds.
        self.resume_every = max(1, resume_every)
        self._sheds_since_probe = 0

    @property
    def path(self) -> str:
        return self.journal.path

    def _shed(self) -> None:
        self.degraded = True
        self.dropped_records += 1
        self._sheds_since_probe += 1

    def record_entry(self, key: FiveTuple, entry: dict[str, Any]) -> None:
        if self.degraded:
            self._shed()
            return
        try:
            self.journal.append({"rec": "flow", "entry": entry})
        except OSError:
            self._shed()
            return
        self._journaled.add(key)

    def record_remove(self, key: FiveTuple) -> None:
        if key not in self._journaled:
            return
        if self.degraded:
            self._shed()
            return
        self._journaled.discard(key)
        try:
            self.journal.append({"rec": "flow_gone", "key": key.to_dict()})
        except OSError:
            self._shed()

    def record_generation(self, generation: int) -> None:
        if self.degraded:
            self._shed()
            return
        try:
            self.journal.append(
                {"rec": "state_generation", "generation": generation}
            )
            self.journal.flush()
        except OSError:
            self._shed()

    def snapshot(
        self, generation: int, entries: list[dict[str, Any]],
        keys: set[FiveTuple],
    ) -> None:
        try:
            self.journal.compact(_CheckpointImage(generation, entries))
        except OSError:
            self._shed()
            return
        self._journaled = set(keys)

    def maybe_snapshot(
        self, generation: int,
        image: Callable[[], tuple[list[dict[str, Any]], set[FiveTuple]]],
    ) -> bool:
        """Compact when the delta tail has outgrown ``snapshot_every``.

        While degraded, doubles as the resume probe: every
        ``resume_every`` sheds, :meth:`try_resume` tests whether the
        storage has healed.
        """
        if self.degraded:
            if self._sheds_since_probe >= self.resume_every:
                self._sheds_since_probe = 0
                return self.try_resume(generation, image)
            return False
        if not self.journal.should_compact:
            return False
        entries, keys = image()
        self.snapshot(generation, entries, keys)
        return not self.degraded

    def try_resume(
        self, generation: int,
        image: Callable[[], tuple[list[dict[str, Any]], set[FiveTuple]]],
    ) -> bool:
        """Attempt to leave degraded mode with a fresh rebuilt segment.

        The live table image is the authority — everything shed while
        degraded is inside it — so one successful
        :meth:`StateJournal.rebuild` makes the journal whole again.
        """
        if not self.degraded:
            return True
        entries, keys = image()
        try:
            self.journal.rebuild(_CheckpointImage(generation, entries))
        except OSError:
            return False
        self._journaled = set(keys)
        self.degraded = False
        self._sheds_since_probe = 0
        self.resumes += 1
        return True

    def flush(self) -> None:
        if self.degraded:
            return
        try:
            self.journal.flush()
        except OSError:
            self.degraded = True

    def close(self) -> None:
        self.journal.close()


class FlowStateTable(FlowTable):
    """A :class:`FlowTable` hardened against exhaustion and crashes.

    Entries are strictly bounded by :attr:`FlowStatePolicy.max_entries`
    with a tiered reclamation order on insertion pressure:

    1. idle-timeout expiry (normal TTL);
    2. early-TTL reclaim of idle *unprotected* entries (pressure only);
    3. LRU eviction of the least-recently-touched unprotected entry;
    4. refusal of the new entry — protected entries are never evicted.

    Per-source-prefix budgets cap how much of the table one
    ``/prefix_bits`` source aggregate may hold, so a spoofed flood from
    few networks starves itself, not the table. All reclamation and
    refusal is counted by reason (``eviction_reasons``/``drop_reasons``)
    for the ``_obi`` handles and HealthReport.
    """

    def __init__(
        self,
        idle_timeout: float = 60.0,
        bidirectional: bool = True,
        policy: FlowStatePolicy | None = None,
    ) -> None:
        self.policy = policy or FlowStatePolicy()
        super().__init__(
            idle_timeout=idle_timeout,
            bidirectional=bidirectional,
            max_flows=self.policy.max_entries,
        )
        #: Approximate-LRU queue of unprotected keys (oldest first);
        #: touching a flow moves its key to the end, protecting removes
        #: it, so eviction is an O(1) pop of the head.
        self._unprotected: dict[FiveTuple, None] = {}
        #: key -> source prefix (of the packet that created the entry).
        self._prefix_of: dict[FiveTuple, int] = {}
        self._prefix_counts: dict[int, int] = {}
        self.protected_count = 0
        #: Incarnation counter: bumped on every checkpoint restore so
        #: downstream consumers (failover handoff) can fence stale state.
        self.state_generation = 0
        self.eviction_reasons: dict[str, int] = {}
        self.drop_reasons: dict[str, int] = {}
        #: New entries refused (table full of protected entries, or
        #: prefix budget exhausted with nothing reclaimable).
        self.drops = 0
        #: Called with ``(canonical_key, reason)`` on every version bump
        #: *and* entry removal; the OBI wires this to per-flow fast-path
        #: invalidation.
        self.on_state_change: Callable[[FiveTuple, str], None] | None = None
        #: Attached :class:`FlowStateCheckpointer`; None disables
        #: persistence entirely (zero hot-path cost).
        self.checkpoint: FlowStateCheckpointer | None = None

    # ------------------------------------------------------------------
    # Occupancy / pressure
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> float:
        return len(self._flows) / self.policy.max_entries

    @property
    def under_pressure(self) -> bool:
        return self.occupancy >= self.policy.pressure_watermark

    @property
    def under_degradation(self) -> bool:
        return self.occupancy >= self.policy.degradation_watermark

    def _prefix(self, src_ip: int) -> int:
        bits = self.policy.prefix_bits
        return src_ip >> (32 - bits) if bits else 0

    def _prefix_budget(self) -> int:
        share = self.policy.prefix_share
        if share <= 0:
            return 0
        return max(1, int(share * self.policy.max_entries))

    # ------------------------------------------------------------------
    # Bookkeeping primitives
    # ------------------------------------------------------------------
    def _insert(self, flow: Flow, prefix: int) -> None:
        self._flows[flow.key] = flow
        self._prefix_of[flow.key] = prefix
        self._prefix_counts[prefix] = self._prefix_counts.get(prefix, 0) + 1
        if flow.protected:
            self.protected_count += 1
        else:
            self._unprotected[flow.key] = None

    def _delete(self, key: FiveTuple, reason: str) -> Flow | None:
        flow = self._flows.pop(key, None)
        if flow is None:
            return None
        self._unprotected.pop(key, None)
        prefix = self._prefix_of.pop(key, None)
        if prefix is not None:
            remaining = self._prefix_counts.get(prefix, 1) - 1
            if remaining > 0:
                self._prefix_counts[prefix] = remaining
            else:
                self._prefix_counts.pop(prefix, None)
        if flow.protected:
            self.protected_count = max(0, self.protected_count - 1)
        if reason != "removed":
            self.evictions += 1
            self.eviction_reasons[reason] = (
                self.eviction_reasons.get(reason, 0) + 1
            )
        if self.checkpoint is not None:
            self.checkpoint.record_remove(key)
        if self.on_state_change is not None:
            self.on_state_change(key, f"gone:{reason}")
        return flow

    def _touch_lru(self, key: FiveTuple) -> None:
        if self._unprotected.pop(key, False) is None:
            self._unprotected[key] = None

    def _drop(self, reason: str) -> None:
        self.drops += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Admission (the exhaustion defense)
    # ------------------------------------------------------------------
    def _sweep_early_ttl(self, now: float) -> int:
        """Reclaim idle unprotected entries under pressure (bounded)."""
        reclaimed = 0
        early = self.policy.early_ttl
        for key in list(self._unprotected)[: self.policy.sweep_limit]:
            flow = self._flows.get(key)
            if flow is None:
                self._unprotected.pop(key, None)
                continue
            if now - flow.last_seen > early:
                self._delete(key, "early-ttl")
                reclaimed += 1
            else:
                # The queue is LRU-ordered: the first fresh entry means
                # everything behind it is fresher still.
                break
        return reclaimed

    def _evict_lru_unprotected(
        self, reason: str, prefix: int | None = None
    ) -> bool:
        """Evict the least-recently-touched unprotected entry.

        With ``prefix`` given, only an entry created from that source
        prefix qualifies (budget enforcement reclaims from the
        offending aggregate, never from innocent bystanders).
        """
        for key in self._unprotected:
            if prefix is not None and self._prefix_of.get(key) != prefix:
                continue
            self._delete(key, reason)
            return True
        return False

    def _admit(self, prefix: int, now: float) -> bool:
        """May a new entry from ``prefix`` be inserted at ``now``?"""
        budget = self._prefix_budget()
        if budget and self._prefix_counts.get(prefix, 0) >= budget:
            # The aggregate pays for itself: reclaim its own oldest
            # unprotected entry or refuse — never touch other prefixes.
            if not self._evict_lru_unprotected("prefix-budget", prefix):
                self._drop("prefix-budget")
                return False
        if self.under_pressure:
            self._sweep_early_ttl(now)
        if len(self._flows) >= self.policy.max_entries:
            # One slot is needed; the LRU head is the least-recently
            # touched unprotected entry, so it is both the best LRU
            # victim and the likeliest to be TTL-expired. Checking only
            # it keeps admission O(1) — a full expiry scan here would
            # turn every flood packet into an O(table) walk.
            head = next(iter(self._unprotected), None)
            if head is None:
                # Only protected (established) entries remain: refuse
                # the newcomer rather than break a live session.
                self._drop("table-full")
                return False
            victim = self._flows.get(head)
            expired = (
                victim is not None
                and now - victim.last_seen > self.idle_timeout
            )
            self._delete(head, "ttl" if expired else "lru")
        return True

    # ------------------------------------------------------------------
    # FlowTable API (policy-aware overrides)
    # ------------------------------------------------------------------
    def observe(self, packet: Packet, now: float) -> Flow | None:
        """Account ``packet`` to its flow, creating the flow if admitted.

        Unlike the base table, a new flow may be *refused* under
        exhaustion (None is returned and the refusal counted): stateful
        elements treat a refused flow as "no state", which under a
        flood means new connections degrade while established ones —
        whose entries are protected — keep their state and verdicts.
        """
        tuple5 = FiveTuple.of(packet)
        if tuple5 is None:
            return None
        key = self._key_for(tuple5)
        flow = self._flows.get(key)
        if flow is None:
            prefix = self._prefix(tuple5.src_ip)
            if not self._admit(prefix, now):
                return None
            flow = Flow(key=key, created_at=now, last_seen=now)
            self._insert(flow, prefix)
        flow.touch(packet, now)
        if not flow.protected:
            self._touch_lru(key)
        return flow

    def install(self, flow: Flow) -> bool:
        """Insert a pre-built entry (state import/migration/restore).

        Subject to the same admission policy as live traffic — an
        import can not blow through the cap — but an already-present
        key replaces in place without re-admission.
        """
        key = self._key_for(flow.key)
        if key != flow.key:
            flow = Flow(
                key=key, created_at=flow.created_at, last_seen=flow.last_seen,
                packets=flow.packets, bytes=flow.bytes,
                fin_seen=flow.fin_seen, rst_seen=flow.rst_seen,
                session=flow.session, version=flow.version,
                protected=flow.protected,
            )
        if key in self._flows:
            self._delete(key, "removed")
        prefix = self._prefix(key.src_ip)
        if not self._admit(prefix, flow.last_seen):
            return False
        self._insert(flow, prefix)
        return True

    def expire(self, now: float) -> list[Flow]:
        expired = [
            flow for flow in self._flows.values()
            if now - flow.last_seen > self.idle_timeout
        ]
        return [
            gone for flow in expired
            if (gone := self._delete(flow.key, "ttl")) is not None
        ]

    def remove(self, key: FiveTuple) -> Flow | None:
        return self._delete(self._key_for(key), "removed")

    def _evict_oldest(self) -> None:  # pragma: no cover - superseded
        self._evict_lru_unprotected("lru")

    # ------------------------------------------------------------------
    # Versioning, protection, durability
    # ------------------------------------------------------------------
    def note_state_change(
        self,
        flow: Flow,
        reason: str,
        *,
        protected: bool | None = None,
        durable: bool = False,
    ) -> int:
        """Record a state mutation on ``flow``: bump its version, adjust
        protection, journal it if ``durable``, and fire the per-flow
        invalidation hook. Returns the new version."""
        flow.version += 1
        if protected is not None and protected != flow.protected:
            flow.protected = protected
            if protected:
                self._unprotected.pop(flow.key, None)
                self.protected_count += 1
            else:
                self._unprotected[flow.key] = None
                self.protected_count = max(0, self.protected_count - 1)
        if durable and self.checkpoint is not None:
            self.checkpoint.record_entry(flow.key, self.export_entry(flow))
            self.checkpoint.maybe_snapshot(self.state_generation, self._image)
        if self.on_state_change is not None:
            self.on_state_change(flow.key, reason)
        return flow.version

    # ------------------------------------------------------------------
    # Serialization / checkpointing
    # ------------------------------------------------------------------
    @staticmethod
    def export_entry(flow: Flow, now: float | None = None) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "key": flow.key.to_dict(),
            "session": dict(flow.session),
            "created_at": flow.created_at,
            "last_seen": flow.last_seen,
            "packets": flow.packets,
            "bytes": flow.bytes,
            "version": flow.version,
            "protected": flow.protected,
        }
        if now is not None:
            # The exporter's idea of entry age: importers on other
            # machines cannot compare raw clocks, but an age survives
            # the transfer.
            entry["age"] = max(0.0, now - flow.last_seen)
        return entry

    def _image(self) -> tuple[list[dict[str, Any]], set[FiveTuple]]:
        """(entries, keys) of every *durable* flow, for a snapshot."""
        entries: list[dict[str, Any]] = []
        keys: set[FiveTuple] = set()
        for flow in self._flows.values():
            if flow.version > 0:
                entries.append(self.export_entry(flow))
                keys.add(flow.key)
        return entries, keys

    def force_snapshot(self) -> None:
        """Compact the checkpoint journal to the current table state."""
        if self.checkpoint is None:
            return
        entries, keys = self._image()
        self.checkpoint.snapshot(self.state_generation, entries, keys)

    def restore(self, result: CheckpointRestore, now: float) -> int:
        """Install a :func:`load_checkpoint` fold; returns entries kept.

        The table's generation becomes one past the journal's highest —
        the restored incarnation supersedes everything the dead one
        exported — and the journal is immediately compacted so the next
        crash replays one snapshot, not the predecessor's whole tail.
        """
        installed = 0
        for entry in result.entries:
            try:
                flow = Flow(
                    key=self._key_for(FiveTuple.from_dict(entry["key"])),
                    created_at=float(entry.get("created_at", now)),
                    last_seen=now,
                    packets=int(entry.get("packets", 0)),
                    bytes=int(entry.get("bytes", 0)),
                    session=dict(entry.get("session", {})),
                    version=int(entry.get("version", 0)),
                    protected=bool(entry.get("protected", False)),
                )
            except (KeyError, TypeError, ValueError):
                continue
            if self.install(flow):
                installed += 1
        self.state_generation = result.generation + 1
        if self.checkpoint is not None:
            self.checkpoint.record_generation(self.state_generation)
            self.force_snapshot()
        return installed
