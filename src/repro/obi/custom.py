"""Custom module injection (paper §3.2.1, §4.2).

An application developer can extend a running OBI with new processing
blocks "without having to change their code, or to compile and re-deploy
them". In the paper the module binary is a compiled Click user-level
module plus a Python translation object; in this reproduction the binary
payload is Python source that must define:

* ``BLOCK_TYPES`` — a list of block-type declarations in the protocol
  schema (see :func:`repro.protocol.blocks_spec.spec_from_dict`);
* ``ELEMENTS`` — a dict mapping each declared type name to an
  :class:`~repro.obi.engine.Element` subclass implementing it.

Security (paper §6): the loader optionally enforces a digital-signature
check — here a SHA-256 allowlist standing in for signature verification —
before executing module code.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.blocks import BlockTypeSpec, block_registry
from repro.obi.engine import Element
from repro.obi.translation import ElementFactory
from repro.protocol.blocks_spec import spec_from_dict
from repro.protocol.errors import ErrorCode, ProtocolError


@dataclass
class LoadedModule:
    """Bookkeeping for one injected module."""

    name: str
    checksum: str
    block_types: list[str] = field(default_factory=list)


class CustomModuleLoader:
    """Loads custom modules into an OBI's element factory."""

    def __init__(
        self,
        factory: ElementFactory,
        allowed_checksums: set[str] | None = None,
    ) -> None:
        """``allowed_checksums`` enables the signature-allowlist mode:
        when not None, only modules whose SHA-256 appears in the set load.
        """
        self.factory = factory
        self.allowed_checksums = allowed_checksums
        self.modules: dict[str, LoadedModule] = {}

    @staticmethod
    def checksum(binary: bytes) -> str:
        return hashlib.sha256(binary).hexdigest()

    def load(
        self,
        module_name: str,
        binary: bytes,
        block_types: list[dict[str, Any]],
        translation: dict[str, Any] | None = None,
    ) -> LoadedModule:
        """Verify, execute, and register a custom module.

        ``translation`` may rename module element classes to protocol
        block types (``{"element_map": {"BlockType": "ClassName"}}``) —
        the analog of the paper's translation object that maps OpenBox
        notation to the lower-level module code.
        """
        if module_name in self.modules:
            raise ProtocolError(
                ErrorCode.MODULE_REJECTED, f"module {module_name!r} already loaded"
            )
        digest = self.checksum(binary)
        if self.allowed_checksums is not None and digest not in self.allowed_checksums:
            raise ProtocolError(
                ErrorCode.MODULE_REJECTED,
                f"module {module_name!r} failed signature verification",
            )
        try:
            source = binary.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                ErrorCode.MODULE_REJECTED, f"module is not valid UTF-8: {exc}"
            ) from exc

        namespace: dict[str, Any] = {"Element": Element, "__name__": f"openbox_module_{module_name}"}
        try:
            exec(compile(source, f"<module {module_name}>", "exec"), namespace)
        except Exception as exc:  # noqa: BLE001 - surface as protocol error
            raise ProtocolError(
                ErrorCode.MODULE_REJECTED, f"module failed to execute: {exc}"
            ) from exc

        elements = namespace.get("ELEMENTS")
        if not isinstance(elements, dict) or not elements:
            raise ProtocolError(
                ErrorCode.MODULE_REJECTED, "module does not define ELEMENTS"
            )
        element_map = (translation or {}).get("element_map", {})

        declared: list[str] = []
        for type_data in block_types:
            spec = spec_from_dict(type_data)
            self._register_block_type(spec)
            class_name = element_map.get(spec.name, spec.name)
            element_cls = elements.get(class_name) or elements.get(spec.name)
            if element_cls is None or not (
                isinstance(element_cls, type) and issubclass(element_cls, Element)
            ):
                raise ProtocolError(
                    ErrorCode.MODULE_REJECTED,
                    f"module does not implement block type {spec.name!r}",
                )
            self.factory.register_custom(spec.name, element_cls)
            declared.append(spec.name)

        module = LoadedModule(name=module_name, checksum=digest, block_types=declared)
        self.modules[module_name] = module
        return module

    @staticmethod
    def _register_block_type(spec: BlockTypeSpec) -> None:
        """Add the type to the global registry (idempotent re-declare)."""
        if spec.name in block_registry:
            existing = block_registry.get(spec.name)
            if existing.block_class != spec.block_class:
                raise ProtocolError(
                    ErrorCode.MODULE_REJECTED,
                    f"block type {spec.name!r} already exists with class "
                    f"{existing.block_class!r}",
                )
            return
        block_registry.register(spec)
