"""Headless data plane: an OBI surviving controller absence.

The paper's design keeps *processing* in the data plane and *policy* in
the controller (§3), which means a controller crash must not take
traffic down with it: an OBI that stops hearing from its controller
keeps serving packets on the last graph it committed. What it cannot do
is deliver upstream events — so alerts and health beacons produced while
headless land in a bounded ring buffer and are replayed, in order, when
contact is re-established.

The buffer is a *ring*: when full, the oldest entry is evicted and the
eviction is **counted** (``dropped``), never silent — on replay the
controller learns both every surviving event and exactly how many were
lost, so its view is degraded but honest.

The ring mechanics now live in :class:`repro.telemetry.TelemetryRing`
(the same bounded, drop-accounted log backs the streaming telemetry bus
of PROTOCOL.md §13); ``HeadlessBuffer`` keeps its original push/drain/
requeue surface as a thin subclass.

"Scaling-sensitive behavior freezes" while headless falls out of the
same mechanism: health reports and alert beacons are the inputs to the
controller's scaling and failover loops, and while headless they are
buffered rather than delivered, so no stale half-connected OBI feeds
those loops; the split-brain generation guard (PROTOCOL.md §10) keeps a
stale controller from un-freezing it.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.ring import TelemetryRing


class HeadlessBuffer(TelemetryRing):
    """Bounded FIFO of upstream messages with drop accounting.

    ``push`` evicts the oldest entry once ``capacity`` is reached and
    counts the eviction; ``drain`` hands back the surviving entries plus
    the drop count for that headless episode (cumulative totals are
    retained separately for metrics).
    """

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity)

    @property
    def buffered_total(self) -> int:
        """Lifetime count of messages ever buffered (never reset)."""
        return self.appended_total

    def push(self, message: Any) -> bool:
        """Buffer one message; returns False when it evicted the oldest."""
        before = self.dropped_total
        self.append(message)
        return self.dropped_total == before

    def requeue_front(self, messages: list[Any]) -> None:
        """Put partially-replayed entries back at the head, oldest first.

        Used when a replay fails midway (the channel died again): the
        un-replayed suffix must keep its position ahead of anything
        buffered later. Entries shoved past ``capacity`` evict from the
        *newest* end — the front of the buffer is the oldest history and
        is what the drop count already promised to preserve first.
        """
        self.prepend(messages)

    def drain(self) -> tuple[list[Any], int]:
        """Take every buffered entry and the episode's drop count."""
        return self.clear(), self.take_dropped()
