"""Headless data plane: an OBI surviving controller absence.

The paper's design keeps *processing* in the data plane and *policy* in
the controller (§3), which means a controller crash must not take
traffic down with it: an OBI that stops hearing from its controller
keeps serving packets on the last graph it committed. What it cannot do
is deliver upstream events — so alerts and health beacons produced while
headless land in a bounded ring buffer and are replayed, in order, when
contact is re-established.

The buffer is a *ring*: when full, the oldest entry is evicted and the
eviction is **counted** (``dropped``), never silent — on replay the
controller learns both every surviving event and exactly how many were
lost, so its view is degraded but honest.

"Scaling-sensitive behavior freezes" while headless falls out of the
same mechanism: health reports and alert beacons are the inputs to the
controller's scaling and failover loops, and while headless they are
buffered rather than delivered, so no stale half-connected OBI feeds
those loops; the split-brain generation guard (PROTOCOL.md §10) keeps a
stale controller from un-freezing it.
"""

from __future__ import annotations

import collections
from typing import Any


class HeadlessBuffer:
    """Bounded FIFO of upstream messages with drop accounting.

    ``push`` evicts the oldest entry once ``capacity`` is reached and
    counts the eviction; ``drain`` hands back the surviving entries plus
    the drop count for that headless episode (cumulative totals are
    retained separately for metrics).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: collections.deque[Any] = collections.deque()
        #: Evictions in the current (undrained) episode.
        self.dropped = 0
        #: Lifetime counters, never reset by drain().
        self.buffered_total = 0
        self.dropped_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, message: Any) -> bool:
        """Buffer one message; returns False when it evicted the oldest."""
        evicted = False
        if len(self._entries) >= self.capacity:
            self._entries.popleft()
            self.dropped += 1
            self.dropped_total += 1
            evicted = True
        self._entries.append(message)
        self.buffered_total += 1
        return not evicted

    def requeue_front(self, messages: list[Any]) -> None:
        """Put partially-replayed entries back at the head, oldest first.

        Used when a replay fails midway (the channel died again): the
        un-replayed suffix must keep its position ahead of anything
        buffered later. Entries shoved past ``capacity`` evict from the
        *newest* end — the front of the buffer is the oldest history and
        is what the drop count already promised to preserve first.
        """
        for message in reversed(messages):
            self._entries.appendleft(message)
        while len(self._entries) > self.capacity:
            self._entries.pop()
            self.dropped += 1
            self.dropped_total += 1

    def drain(self) -> tuple[list[Any], int]:
        """Take every buffered entry and the episode's drop count."""
        entries = list(self._entries)
        self._entries.clear()
        dropped = self.dropped
        self.dropped = 0
        return entries, dropped
