"""Megaflow-style flow-decision cache for the OBI fast path.

OVS popularized the pattern this module reproduces in the OpenBox
setting: the first packet of a flow takes the *slow path* — the full
element traversal, including every classifier match — and the routing
decisions made along the way are recorded against the packet's flow
key. Subsequent packets of the same flow *replay* those decisions:
classifiers whose output is a pure function of the flow key
(``Element.caches_decision``) skip the match computation entirely,
while every other element still runs, so data-dependent effects
(TTL expiry, payload rewrites, alerts) stay exactly as on the slow
path.

Soundness rests on three rules, enforced here and in the engine:

* **Key completeness** — the flow key covers every packet field a
  decision-cached classifier may consult: the 5-tuple, whether L4
  parsed (port rules require it), the outer VLAN id, the IPv4 DSCP,
  and the values of every metadata key the graph's MetadataClassifier
  blocks route on (the *metadata scope*).
* **Poisoning** — a traversal that visits an element whose decisions
  are *not* flow-deterministic (``Element.cacheable = False``: DPI
  classifiers, defragmenters, tunnels, rate limiters), or that is
  touched by fault containment, never installs a positive entry; a
  negative (uncacheable) entry is installed instead so the flow keeps
  taking the slow path without re-recording.
* **Invalidation** — the whole cache is flushed on any event that can
  change what a slow-path traversal would decide: a
  ``SetProcessingGraph`` swap, a ``write_handle`` that is not declared
  routing-neutral, and every circuit-breaker transition (open, first
  half-open probe, close). The fast path is additionally disabled
  outright while any breaker is non-closed or the OBI is degraded, so
  a stale entry can never bypass an opened breaker (see
  ``EngineRobustness.fastpath_blocked``).

  Per-flow *state* changes are surgical instead: a stateful element
  (conntrack) records which flow-state entries its decision read
  (:meth:`DecisionRecorder.note_flow_state`), and a state transition
  calls :meth:`FlowDecisionCache.invalidate_flow` to drop exactly the
  cache entries that depended on that flow — no invalidation storm.
"""

from __future__ import annotations

import collections
from typing import Any

from repro.net.packet import Packet

#: Default capacity of a flow-decision cache, in flow entries.
DEFAULT_FLOW_CACHE_SIZE = 65536


def flow_key(
    packet: Packet, metadata_scope: tuple[str, ...] = ()
) -> tuple | None:
    """The cache key for ``packet``, or None if the flow is unkeyable.

    Non-IP frames return None (never cached): header classifiers fall
    through to catch-all rules for them, and the cost of that path is
    negligible anyway. ``metadata_scope`` is the sorted tuple of
    metadata keys the deployed graph routes on; their *entry* values
    are part of the key because a MetadataClassifier's decision is a
    deterministic function of the entry metadata plus the (constant)
    upstream transforms.
    """
    try:
        ipv4 = packet.ipv4
    except Exception:  # noqa: BLE001 — hostile frame: just skip the cache
        return None
    if ipv4 is None:
        return None
    l4 = packet.l4
    eth = packet.eth
    tag = eth.vlan if eth is not None else None
    key = (
        ipv4.src,
        ipv4.dst,
        ipv4.proto,
        ipv4.dscp,
        # -1 distinguishes "no parseable L4" from real port 0: port
        # rules require a parsed L4 header to match at all.
        l4.src_port if l4 is not None else -1,
        l4.dst_port if l4 is not None else -1,
        tag.vid if tag is not None else -1,
    )
    if metadata_scope:
        key += tuple(repr(packet.metadata.get(name)) for name in metadata_scope)
    return key


class FlowDecision:
    """An installed cache entry: per-element routing decisions for one flow.

    ``decisions`` maps element name -> output port for every
    decision-cached classifier the slow-path traversal visited. An
    ``uncacheable`` entry is negative: the flow visited a poisoning
    element, so packets of it always take the slow path (without
    wasting a recorder on every packet).
    """

    __slots__ = ("decisions", "uncacheable", "state_refs")

    def __init__(
        self,
        decisions: dict[str, int],
        uncacheable: bool = False,
        state_refs: tuple = (),
    ) -> None:
        self.decisions = decisions
        self.uncacheable = uncacheable
        #: ``(flow_ref, version)`` pairs for every flow-state entry the
        #: recorded decisions read; a state transition on any of them
        #: invalidates this cache entry (and only this one).
        self.state_refs = state_refs


class DecisionRecorder:
    """Accumulates one slow-path traversal's decisions for installation."""

    __slots__ = ("key", "decisions", "poisoned", "abandoned", "state_refs")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.decisions: dict[str, int] = {}
        self.poisoned = False
        self.abandoned = False
        self.state_refs: dict[Any, int] = {}

    def poison(self) -> None:
        """The traversal is not flow-deterministic: install a negative entry."""
        self.poisoned = True

    def abandon(self) -> None:
        """Install nothing at all — not even a negative entry.

        Used by stateful elements when the traversal *itself* changed
        the flow state it read (a conntrack transition): the recording
        reflects a state that no longer exists, but the flow is
        perfectly cacheable once it stabilizes, so it must not be
        branded uncacheable either. The next packet simply records
        afresh against the new state.
        """
        self.abandoned = True

    def note_flow_state(self, ref: Any, version: int) -> None:
        """Declare that this traversal read flow-state entry ``ref`` at
        ``version`` — the installed decision must die with it."""
        self.state_refs[ref] = version

    def record(self, name: str, port: int) -> None:
        """Record one classifier decision; conflicting re-visits poison.

        An element visited twice in one traversal (e.g. both branches
        of a Mirror reach it) with *different* decisions cannot be
        replayed with a single port — the flow is uncacheable.
        """
        if self.poisoned:
            return
        previous = self.decisions.get(name)
        if previous is None:
            self.decisions[name] = port
        elif previous != port:
            self.poisoned = True

    def finish(self) -> FlowDecision:
        if self.poisoned:
            return FlowDecision({}, uncacheable=True)
        return FlowDecision(
            self.decisions, state_refs=tuple(self.state_refs.items())
        )


class FlowDecisionCache:
    """Bounded flow-key -> :class:`FlowDecision` store with counters.

    Owned by the OBI (like :class:`~repro.obi.robustness.EngineRobustness`)
    so hit/miss accounting survives graph redeployments; the engine
    consults it per packet. Not thread-safe by itself — the instance's
    engine lock already serializes packet processing against handle
    writes and graph swaps.
    """

    def __init__(self, max_entries: int = DEFAULT_FLOW_CACHE_SIZE) -> None:
        self.max_entries = max(1, max_entries)
        self._entries: dict[tuple, FlowDecision] = {}
        self.hits = 0
        self.misses = 0
        #: Packets whose flow hit a negative (uncacheable) entry.
        self.uncacheable_hits = 0
        #: Packets that skipped the cache entirely (non-IP frame, or
        #: fast path blocked by degradation/quarantine).
        self.bypassed = 0
        #: Full flushes performed (graph swap, write_handle, breaker
        #: transitions).
        self.invalidations = 0
        #: Entries dropped by per-flow (surgical) invalidation.
        self.flow_invalidations = 0
        self.evictions = 0
        #: Recent invalidation reasons — full flushes *and* per-flow
        #: drops (prefixed ``flow:``), for debugging invalidation storms.
        self.flush_log: collections.deque[tuple[str, int]] = collections.deque(
            maxlen=16
        )
        #: flow-state ref -> cache keys whose decisions read that state.
        self._flow_index: dict[Any, set[tuple]] = {}
        self._metrics: Any = None

    def bind_metrics(self, registry: Any) -> None:
        """Publish this cache's counters on ``registry`` at snapshot time.

        The hot path keeps its plain-int counters (the engine bumps them
        inline); :meth:`export_metrics` mirrors them into gauges when a
        snapshot is taken, so metrics cost the fast path nothing.
        """
        self._metrics = registry

    def export_metrics(self) -> None:
        registry = self._metrics
        if registry is None:
            return
        for name, value in self.stats().items():
            registry.gauge(f"fastpath_{name}").set(value)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of keyable packets served from a positive entry."""
        lookups = self.hits + self.misses + self.uncacheable_hits
        return self.hits / lookups if lookups else 0.0

    def lookup(self, key: tuple) -> FlowDecision | None:
        return self._entries.get(key)

    def _unindex(self, key: tuple, decision: FlowDecision) -> None:
        for ref, _version in decision.state_refs:
            keys = self._flow_index.get(ref)
            if keys is None:
                continue
            keys.discard(key)
            if not keys:
                del self._flow_index[ref]

    def install(self, key: tuple, decision: FlowDecision) -> None:
        previous = self._entries.get(key)
        if previous is not None:
            self._unindex(key, previous)
        elif len(self._entries) >= self.max_entries:
            # FIFO eviction: dicts preserve insertion order and flow
            # caches are churn-tolerant — precision is not worth LRU
            # bookkeeping on the hot path.
            evicted_key = next(iter(self._entries))
            self._unindex(evicted_key, self._entries.pop(evicted_key))
            self.evictions += 1
        self._entries[key] = decision
        for ref, _version in decision.state_refs:
            self._flow_index.setdefault(ref, set()).add(key)

    def invalidate_all(self, reason: str = "") -> int:
        """Flush every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._flow_index.clear()
        self.invalidations += 1
        self.flush_log.append((reason, dropped))
        return dropped

    def invalidate_flow(self, ref: Any, reason: str = "") -> int:
        """Drop only the entries whose decisions read flow-state ``ref``.

        This is the surgical alternative to :meth:`invalidate_all` for
        per-flow state transitions: a conntrack establishment or FIN
        teardown kills the one flow's cached verdict while every other
        flow stays warm. A ref no decision ever read is a free no-op
        (flow expiry of untracked flows costs nothing here).
        """
        keys = self._flow_index.pop(ref, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            decision = self._entries.pop(key, None)
            if decision is None:
                continue
            dropped += 1
            # The entry may have read other flows' state too; drop its
            # back-references so the index never points at dead keys.
            for other, _version in decision.state_refs:
                if other != ref:
                    others = self._flow_index.get(other)
                    if others is not None:
                        others.discard(key)
                        if not others:
                            del self._flow_index[other]
        self.flow_invalidations += dropped
        self.flush_log.append((f"flow:{reason}" if reason else "flow", dropped))
        return dropped

    def stats(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable_hits": self.uncacheable_hits,
            "bypassed": self.bypassed,
            "invalidations": self.invalidations,
            "flow_invalidations": self.flow_invalidations,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_rate": self.hit_rate,
        }
