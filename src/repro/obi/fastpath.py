"""Megaflow-style flow-decision cache for the OBI fast path.

OVS popularized the pattern this module reproduces in the OpenBox
setting: the first packet of a flow takes the *slow path* — the full
element traversal, including every classifier match — and the routing
decisions made along the way are recorded against the packet's flow
key. Subsequent packets of the same flow *replay* those decisions:
classifiers whose output is a pure function of the flow key
(``Element.caches_decision``) skip the match computation entirely,
while every other element still runs, so data-dependent effects
(TTL expiry, payload rewrites, alerts) stay exactly as on the slow
path.

Soundness rests on three rules, enforced here and in the engine:

* **Key completeness** — the flow key covers every packet field a
  decision-cached classifier may consult: the 5-tuple, whether L4
  parsed (port rules require it), the outer VLAN id, the IPv4 DSCP,
  and the values of every metadata key the graph's MetadataClassifier
  blocks route on (the *metadata scope*).
* **Poisoning** — a traversal that visits an element whose decisions
  are *not* flow-deterministic (``Element.cacheable = False``: DPI
  classifiers, defragmenters, tunnels, rate limiters), or that is
  touched by fault containment, never installs a positive entry; a
  negative (uncacheable) entry is installed instead so the flow keeps
  taking the slow path without re-recording.
* **Invalidation** — the whole cache is flushed on any event that can
  change what a slow-path traversal would decide: a
  ``SetProcessingGraph`` swap, any ``write_handle``, and every
  circuit-breaker transition (open, first half-open probe, close).
  The fast path is additionally disabled outright while any breaker
  is non-closed or the OBI is degraded, so a stale entry can never
  bypass an opened breaker (see ``EngineRobustness.fastpath_blocked``).
"""

from __future__ import annotations

import collections
from typing import Any

from repro.net.packet import Packet

#: Default capacity of a flow-decision cache, in flow entries.
DEFAULT_FLOW_CACHE_SIZE = 65536


def flow_key(
    packet: Packet, metadata_scope: tuple[str, ...] = ()
) -> tuple | None:
    """The cache key for ``packet``, or None if the flow is unkeyable.

    Non-IP frames return None (never cached): header classifiers fall
    through to catch-all rules for them, and the cost of that path is
    negligible anyway. ``metadata_scope`` is the sorted tuple of
    metadata keys the deployed graph routes on; their *entry* values
    are part of the key because a MetadataClassifier's decision is a
    deterministic function of the entry metadata plus the (constant)
    upstream transforms.
    """
    try:
        ipv4 = packet.ipv4
    except Exception:  # noqa: BLE001 — hostile frame: just skip the cache
        return None
    if ipv4 is None:
        return None
    l4 = packet.l4
    eth = packet.eth
    tag = eth.vlan if eth is not None else None
    key = (
        ipv4.src,
        ipv4.dst,
        ipv4.proto,
        ipv4.dscp,
        # -1 distinguishes "no parseable L4" from real port 0: port
        # rules require a parsed L4 header to match at all.
        l4.src_port if l4 is not None else -1,
        l4.dst_port if l4 is not None else -1,
        tag.vid if tag is not None else -1,
    )
    if metadata_scope:
        key += tuple(repr(packet.metadata.get(name)) for name in metadata_scope)
    return key


class FlowDecision:
    """An installed cache entry: per-element routing decisions for one flow.

    ``decisions`` maps element name -> output port for every
    decision-cached classifier the slow-path traversal visited. An
    ``uncacheable`` entry is negative: the flow visited a poisoning
    element, so packets of it always take the slow path (without
    wasting a recorder on every packet).
    """

    __slots__ = ("decisions", "uncacheable")

    def __init__(self, decisions: dict[str, int], uncacheable: bool = False) -> None:
        self.decisions = decisions
        self.uncacheable = uncacheable


class DecisionRecorder:
    """Accumulates one slow-path traversal's decisions for installation."""

    __slots__ = ("key", "decisions", "poisoned")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.decisions: dict[str, int] = {}
        self.poisoned = False

    def poison(self) -> None:
        """The traversal is not flow-deterministic: install a negative entry."""
        self.poisoned = True

    def record(self, name: str, port: int) -> None:
        """Record one classifier decision; conflicting re-visits poison.

        An element visited twice in one traversal (e.g. both branches
        of a Mirror reach it) with *different* decisions cannot be
        replayed with a single port — the flow is uncacheable.
        """
        if self.poisoned:
            return
        previous = self.decisions.get(name)
        if previous is None:
            self.decisions[name] = port
        elif previous != port:
            self.poisoned = True

    def finish(self) -> FlowDecision:
        if self.poisoned:
            return FlowDecision({}, uncacheable=True)
        return FlowDecision(self.decisions)


class FlowDecisionCache:
    """Bounded flow-key -> :class:`FlowDecision` store with counters.

    Owned by the OBI (like :class:`~repro.obi.robustness.EngineRobustness`)
    so hit/miss accounting survives graph redeployments; the engine
    consults it per packet. Not thread-safe by itself — the instance's
    engine lock already serializes packet processing against handle
    writes and graph swaps.
    """

    def __init__(self, max_entries: int = DEFAULT_FLOW_CACHE_SIZE) -> None:
        self.max_entries = max(1, max_entries)
        self._entries: dict[tuple, FlowDecision] = {}
        self.hits = 0
        self.misses = 0
        #: Packets whose flow hit a negative (uncacheable) entry.
        self.uncacheable_hits = 0
        #: Packets that skipped the cache entirely (non-IP frame, or
        #: fast path blocked by degradation/quarantine).
        self.bypassed = 0
        #: Full flushes performed (graph swap, write_handle, breaker
        #: transitions).
        self.invalidations = 0
        self.evictions = 0
        #: Recent flush reasons, for debugging invalidation storms.
        self.flush_log: collections.deque[tuple[str, int]] = collections.deque(
            maxlen=16
        )
        self._metrics: Any = None

    def bind_metrics(self, registry: Any) -> None:
        """Publish this cache's counters on ``registry`` at snapshot time.

        The hot path keeps its plain-int counters (the engine bumps them
        inline); :meth:`export_metrics` mirrors them into gauges when a
        snapshot is taken, so metrics cost the fast path nothing.
        """
        self._metrics = registry

    def export_metrics(self) -> None:
        registry = self._metrics
        if registry is None:
            return
        for name, value in self.stats().items():
            registry.gauge(f"fastpath_{name}").set(value)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of keyable packets served from a positive entry."""
        lookups = self.hits + self.misses + self.uncacheable_hits
        return self.hits / lookups if lookups else 0.0

    def lookup(self, key: tuple) -> FlowDecision | None:
        return self._entries.get(key)

    def install(self, key: tuple, decision: FlowDecision) -> None:
        if key not in self._entries and len(self._entries) >= self.max_entries:
            # FIFO eviction: dicts preserve insertion order and flow
            # caches are churn-tolerant — precision is not worth LRU
            # bookkeeping on the hot path.
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[key] = decision

    def invalidate_all(self, reason: str = "") -> int:
        """Flush every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += 1
        self.flush_log.append((reason, dropped))
        return dropped

    def stats(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable_hits": self.uncacheable_hits,
            "bypassed": self.bypassed,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_rate": self.hit_rate,
        }
