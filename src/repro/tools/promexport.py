"""Prometheus text-format exporter for OpenBox metric snapshots.

Renders a :meth:`MetricsRegistry.snapshot`-shaped dict (or a dumped
``ObservabilitySnapshotResponse``) as Prometheus exposition text
(version 0.0.4): counters and gauges become single samples, histograms
expand into cumulative ``_bucket`` series with ``le`` labels plus
``_count``/``_sum``. Registry keys like ``name{k=v,...}`` are rewritten
to Prometheus label syntax (``name{k="v",...}``).

Usage::

    openbox-prom --demo [--packets 500]      # quickstart topology
    openbox-prom --input snap.json           # render a dumped snapshot
    python -m repro.tools.obsv dump -o s.json && openbox-prom -i s.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any, Iterator, Sequence

_KEYED = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$")
_VALID_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """``name{k=v,...}`` → (name, labels); bare names pass through."""
    match = _KEYED.match(key)
    if not match:
        return key, {}
    labels: dict[str, str] = {}
    for pair in match.group("labels").split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels[k.strip()] = v.strip()
    return match.group("name"), labels


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample(name: str, labels: dict[str, str], value: float) -> str:
    name = _VALID_NAME.sub("_", name)
    if labels:
        inner = ",".join(
            f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {_format(value)}"
    return f"{name} {_format(value)}"


def _format(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_histogram(
    key: str, hist: dict[str, Any]
) -> Iterator[str]:
    name, labels = _split_key(key)
    boundaries = list(hist.get("boundaries", []))
    counts = list(hist.get("counts", []))
    cumulative = 0
    for index, bound in enumerate(boundaries):
        cumulative += counts[index] if index < len(counts) else 0
        yield _sample(
            f"{name}_bucket", {**labels, "le": _format(float(bound))},
            cumulative,
        )
    total = hist.get("count", sum(counts))
    yield _sample(f"{name}_bucket", {**labels, "le": "+Inf"}, total)
    yield _sample(f"{name}_count", labels, total)
    yield _sample(f"{name}_sum", labels, hist.get("sum", 0.0))


def render_prometheus(metrics: dict[str, Any]) -> str:
    """Exposition text for one ``{counters, gauges, histograms}`` dict."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def _header(key: str, kind: str) -> str:
        return _VALID_NAME.sub("_", _split_key(key)[0]), kind

    for key in sorted(metrics.get("counters", {})):
        name, _ = _header(key, "counter")
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} counter")
        lines.append(
            _sample(*_split_key(key), metrics["counters"][key])
        )
    for key in sorted(metrics.get("gauges", {})):
        name, _ = _header(key, "gauge")
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} gauge")
        lines.append(_sample(*_split_key(key), metrics["gauges"][key]))
    for key in sorted(metrics.get("histograms", {})):
        name, _ = _header(key, "histogram")
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} histogram")
        lines.extend(_render_histogram(key, metrics["histograms"][key]))
    return "\n".join(lines) + "\n"


def _load_metrics(path: str) -> dict[str, Any]:
    with open(path) as handle:
        data = json.load(handle)
    # Accept a full snapshot-response dump or a bare metrics dict.
    return data["metrics"] if "metrics" in data else data


def _demo_metrics(packets: int) -> dict[str, Any]:
    """Folded metrics from the quickstart topology over the push path."""
    from repro.apps.firewall import FirewallApp, parse_firewall_rules
    from repro.bootstrap import connect_inproc
    from repro.controller.obc import OpenBoxController
    from repro.obi.instance import ObiConfig, OpenBoxInstance
    from repro.sim.traffic import TraceConfig, TrafficGenerator

    rules = """
    deny  tcp 10.0.0.0/8 any any 23
    alert tcp any        any any 22
    allow any any        any any any
    """
    controller = OpenBoxController()
    obi = OpenBoxInstance(ObiConfig(obi_id="obi-1", segment="corp"))
    connect_inproc(controller, obi)
    controller.register_application(
        FirewallApp("fw", parse_firewall_rules(rules), segment="corp")
    )
    generator = TrafficGenerator(TraceConfig(seed=7, num_packets=packets))
    obi.inject_batch(list(generator.packets()))
    response = controller.telemetry_snapshot("obi-1", include_traces=False)
    if response is None:
        raise RuntimeError("telemetry drain failed: OBI unreachable")
    return response.metrics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="openbox-prom", description=__doc__.splitlines()[0]
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--input", "-i", help="metrics JSON (obsv dump or bare snapshot)"
    )
    source.add_argument(
        "--demo", action="store_true",
        help="run the quickstart topology and export its folded metrics",
    )
    parser.add_argument("--packets", type=int, default=500,
                        help="demo traffic volume (with --demo)")
    parser.add_argument("--output", "-o",
                        help="write exposition text here instead of stdout")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    metrics = (
        _demo_metrics(args.packets) if args.demo else _load_metrics(args.input)
    )
    text = render_prometheus(metrics)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}: {len(text.splitlines())} lines")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
