"""Observability tooling: dump, diff, and inspect snapshots (PROTOCOL.md §9).

Usage::

    python -m repro.tools.obsv dump [--packets 500] [--trace-sample 0.05] \\
        [--max-traces 8] [--output snap.json]
    python -m repro.tools.obsv diff before.json after.json
    python -m repro.tools.obsv trace snap.json [--limit 3] [--app fw]

``dump`` stands up a miniature control plane (controller + one OBI over
the in-process channel, merged firewall+IPS), drives synthetic traffic
through the data plane, pulls an :class:`ObservabilitySnapshotResponse`
through the protocol, and writes it as JSON — a self-contained way to
see what the telemetry pipeline produces. ``diff`` subtracts two dumped
snapshots (counter/histogram deltas, gauge from→to). ``trace``
pretty-prints the sampled per-packet trace trees inside a dump, spans
attributed to their originating application.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.observability.metrics import diff_snapshots
from repro.observability.tracing import render_trace_tree

FIREWALL_RULES = """
deny  tcp 10.0.0.0/8 any any 23
alert tcp any        any any 22
allow any any        any any any
"""

IPS_RULES = (
    'alert tcp any any -> any 80 (msg:"web attack"; content:"attack"; sid:1;)'
)


def _build_demo_snapshot(
    packets: int, trace_sample: float, max_traces: int
) -> dict[str, Any]:
    """Run the quickstart topology and pull its snapshot over the wire."""
    from repro.apps.firewall import FirewallApp, parse_firewall_rules
    from repro.apps.ips import IpsApp, parse_snort_rules
    from repro.bootstrap import connect_inproc
    from repro.controller.obc import OpenBoxController
    from repro.obi.instance import ObiConfig, OpenBoxInstance
    from repro.sim.traffic import TraceConfig, TrafficGenerator

    controller = OpenBoxController()
    obi = OpenBoxInstance(ObiConfig(
        obi_id="obi-1", segment="corp",
        trace_sample_rate=trace_sample,
        trace_buffer=max(max_traces, 64),
    ))
    connect_inproc(controller, obi)
    controller.register_application(FirewallApp(
        "fw", parse_firewall_rules(FIREWALL_RULES), segment="corp", priority=1))
    controller.register_application(IpsApp(
        "ips", parse_snort_rules(IPS_RULES), segment="corp", priority=2))

    generator = TrafficGenerator(TraceConfig(seed=7, num_packets=packets))
    obi.inject_batch(list(generator.packets()))

    response = controller.telemetry_snapshot("obi-1", max_traces=max_traces)
    if response is None:
        raise RuntimeError("snapshot pull failed: OBI unreachable")
    return response.to_dict()


def _cmd_dump(args: argparse.Namespace) -> int:
    snapshot = _build_demo_snapshot(
        args.packets, args.trace_sample, args.max_traces
    )
    rendered = json.dumps(snapshot, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        metrics = snapshot.get("metrics", {})
        print(f"wrote {args.output}: "
              f"{len(metrics.get('counters', {}))} counters, "
              f"{len(metrics.get('gauges', {}))} gauges, "
              f"{len(metrics.get('histograms', {}))} histograms, "
              f"{len(snapshot.get('traces', []))} traces")
    else:
        print(rendered)
    return 0


def _load_metrics(path: str) -> dict[str, Any]:
    with open(path) as handle:
        data = json.load(handle)
    # Accept either a full ObservabilitySnapshotResponse dump or a bare
    # metrics snapshot ({counters, gauges, histograms}).
    return data.get("metrics", data) if "metrics" in data else data


def _cmd_diff(args: argparse.Namespace) -> int:
    delta = diff_snapshots(_load_metrics(args.before), _load_metrics(args.after))
    if not any(delta.values()):
        print("no changes")
        return 0
    for key in sorted(delta["counters"]):
        print(f"counter    {key}  {delta['counters'][key]:+g}")
    for key in sorted(delta["gauges"]):
        change = delta["gauges"][key]
        print(f"gauge      {key}  {change['from']:g} -> {change['to']:g}")
    for key in sorted(delta["histograms"]):
        change = delta["histograms"][key]
        mean = change["sum"] / change["count"] if change["count"] else 0.0
        print(f"histogram  {key}  +{change['count']} observations "
              f"(mean {mean:g})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    with open(args.path) as handle:
        data = json.load(handle)
    traces = data.get("traces", []) if isinstance(data, dict) else data
    if args.app:
        traces = [
            trace for trace in traces
            if any(span.get("origin_app") == args.app
                   for span in trace.get("spans", []))
        ]
    if args.limit:
        traces = traces[-args.limit:]
    if not traces:
        print("no traces in snapshot (was tracing sampled at 0?)")
        return 1
    for trace in traces:
        print(render_trace_tree(trace))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.obsv", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    dump = commands.add_parser(
        "dump", help="run the demo topology and dump its snapshot as JSON"
    )
    dump.add_argument("--packets", type=int, default=500)
    dump.add_argument("--trace-sample", type=float, default=0.05,
                      help="trace sampling rate in [0,1]; 0 disables")
    dump.add_argument("--max-traces", type=int, default=8)
    dump.add_argument("--output", help="write JSON here instead of stdout")
    dump.set_defaults(func=_cmd_dump)

    diff = commands.add_parser("diff", help="delta between two dumps")
    diff.add_argument("before")
    diff.add_argument("after")
    diff.set_defaults(func=_cmd_diff)

    trace = commands.add_parser(
        "trace", help="pretty-print the trace trees inside a dump"
    )
    trace.add_argument("path")
    trace.add_argument("--limit", type=int, default=0,
                       help="show only the most recent N traces")
    trace.add_argument("--app", default="",
                       help="only traces touching this application's blocks")
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into head
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
