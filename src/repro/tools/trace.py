"""Trace tooling: generate, inspect, and replay packet traces.

Usage::

    python -m repro.tools.trace generate out.pcap --packets 1000 --seed 7
    python -m repro.tools.trace inspect out.pcap
    python -m repro.tools.trace replay out.pcap --rules fw.rules [--alert-only]

``replay`` loads a firewall rule file, builds the NF's processing graph,
pushes every packet of the capture through a real engine, and prints the
verdict breakdown — a quick way to evaluate a policy offline against a
recorded trace.
"""

from __future__ import annotations

import argparse
import collections
import sys
from typing import Sequence

from repro.apps.firewall import FirewallApp, parse_firewall_rules
from repro.net.pcap import read_pcap, write_pcap
from repro.obi.translation import build_engine
from repro.sim.traffic import TraceConfig, TrafficGenerator


def _cmd_generate(args: argparse.Namespace) -> int:
    config = TraceConfig(
        seed=args.seed,
        num_packets=args.packets,
        attack_fraction=args.attack_fraction,
    )
    generator = TrafficGenerator(config)
    packets = generator.packets()
    count = write_pcap(args.path, packets)
    mean = generator.mean_frame_size(packets)
    print(f"wrote {count} packets to {args.path} "
          f"(seed={args.seed}, mean frame {mean:.0f} B)")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    packets = read_pcap(args.path)
    if not packets:
        print("empty capture")
        return 1
    protocols: collections.Counter = collections.Counter()
    ports: collections.Counter = collections.Counter()
    total_bytes = 0
    for packet in packets:
        total_bytes += len(packet)
        ipv4 = packet.ipv4
        if ipv4 is None:
            protocols["non-ip"] += 1
            continue
        protocols[{6: "tcp", 17: "udp", 1: "icmp"}.get(ipv4.proto, str(ipv4.proto))] += 1
        if packet.l4 is not None:
            ports[packet.l4.dst_port] += 1
    duration = packets[-1].timestamp - packets[0].timestamp
    print(f"{len(packets)} packets, {total_bytes} bytes, "
          f"{duration:.3f}s span, mean {total_bytes / len(packets):.0f} B")
    print("protocols:", dict(protocols.most_common()))
    print("top ports:", dict(ports.most_common(8)))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    with open(args.rules) as handle:
        rules = parse_firewall_rules(handle.read())
    app = FirewallApp("replay-fw", rules, alert_only=args.alert_only)
    engine = build_engine(app.build_graph())
    packets = read_pcap(args.path)

    verdicts: collections.Counter = collections.Counter()
    alert_messages: collections.Counter = collections.Counter()
    for packet in packets:
        outcome = engine.process(packet)
        if outcome.dropped:
            verdicts["dropped"] += 1
        elif outcome.alerts:
            verdicts["alerted"] += 1
        else:
            verdicts["passed"] += 1
        for alert in outcome.alerts:
            alert_messages[alert.message] += 1

    total = len(packets)
    print(f"replayed {total} packets against {len(rules)} rules:")
    for verdict in ("passed", "alerted", "dropped"):
        count = verdicts.get(verdict, 0)
        print(f"  {verdict:8s} {count:6d}  ({count / total * 100:5.1f}%)")
    if alert_messages:
        print("alerts:", dict(alert_messages.most_common(5)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic trace")
    generate.add_argument("path")
    generate.add_argument("--packets", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=20160822)
    generate.add_argument("--attack-fraction", type=float, default=0.01)
    generate.set_defaults(func=_cmd_generate)

    inspect = commands.add_parser("inspect", help="summarize a capture")
    inspect.add_argument("path")
    inspect.set_defaults(func=_cmd_inspect)

    replay = commands.add_parser("replay", help="run a capture through a firewall")
    replay.add_argument("path")
    replay.add_argument("--rules", required=True)
    replay.add_argument("--alert-only", action="store_true")
    replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
