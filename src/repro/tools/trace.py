"""Trace tooling: generate, inspect, and replay packet traces.

Usage::

    python -m repro.tools.trace generate out.pcap --packets 1000 --seed 7
    python -m repro.tools.trace inspect out.pcap
    python -m repro.tools.trace replay out.pcap --rules fw.rules [--alert-only]

``replay`` loads a firewall rule file, builds the NF's processing graph,
pushes every packet of the capture through a real engine, and prints the
verdict breakdown — a quick way to evaluate a policy offline against a
recorded trace.
"""

from __future__ import annotations

import argparse
import collections
import sys
from typing import Sequence

from repro.apps.firewall import FirewallApp, parse_firewall_rules
from repro.net.pcap import read_pcap, write_pcap
from repro.obi.instance import ObiConfig, OpenBoxInstance
from repro.observability.tracing import render_trace_tree
from repro.protocol.messages import SetProcessingGraphRequest
from repro.sim.traffic import TraceConfig, TrafficGenerator


def _cmd_generate(args: argparse.Namespace) -> int:
    config = TraceConfig(
        seed=args.seed,
        num_packets=args.packets,
        attack_fraction=args.attack_fraction,
    )
    generator = TrafficGenerator(config)
    packets = generator.packets()
    count = write_pcap(args.path, packets)
    mean = generator.mean_frame_size(packets)
    print(f"wrote {count} packets to {args.path} "
          f"(seed={args.seed}, mean frame {mean:.0f} B)")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    packets = read_pcap(args.path)
    if not packets:
        print("empty capture")
        return 1
    protocols: collections.Counter = collections.Counter()
    ports: collections.Counter = collections.Counter()
    total_bytes = 0
    for packet in packets:
        total_bytes += len(packet)
        ipv4 = packet.ipv4
        if ipv4 is None:
            protocols["non-ip"] += 1
            continue
        protocols[{6: "tcp", 17: "udp", 1: "icmp"}.get(ipv4.proto, str(ipv4.proto))] += 1
        if packet.l4 is not None:
            ports[packet.l4.dst_port] += 1
    duration = packets[-1].timestamp - packets[0].timestamp
    print(f"{len(packets)} packets, {total_bytes} bytes, "
          f"{duration:.3f}s span, mean {total_bytes / len(packets):.0f} B")
    print("protocols:", dict(protocols.most_common()))
    print("top ports:", dict(ports.most_common(8)))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    with open(args.rules) as handle:
        rules = parse_firewall_rules(handle.read())
    app = FirewallApp("replay-fw", rules, alert_only=args.alert_only)

    # Route through a real OBI instance, not a bare engine: replayed
    # packets then see the full ingress path — admission gate, flow
    # cache, fault containment — exactly as deployed traffic would.
    instance = OpenBoxInstance(ObiConfig(
        obi_id="replay-obi", trace_sample_rate=args.trace_sample
    ))
    response = instance.handle_message(
        SetProcessingGraphRequest(graph=app.build_graph().to_dict())
    )
    if not getattr(response, "ok", False):
        print(f"graph rejected: {getattr(response, 'detail', response)}")
        return 1

    packets = read_pcap(args.path)
    outcomes = instance.inject_batch(list(packets))

    verdicts: collections.Counter = collections.Counter()
    alert_messages: collections.Counter = collections.Counter()
    for outcome in outcomes:
        if outcome.dropped:
            verdicts["dropped"] += 1
        elif outcome.alerts:
            verdicts["alerted"] += 1
        else:
            verdicts["passed"] += 1
        for alert in outcome.alerts:
            alert_messages[alert.message] += 1

    total = len(packets)
    print(f"replayed {total} packets against {len(rules)} rules:")
    for verdict in ("passed", "alerted", "dropped"):
        count = verdicts.get(verdict, 0)
        print(f"  {verdict:8s} {count:6d}  ({count / total * 100:5.1f}%)")
    if alert_messages:
        print("alerts:", dict(alert_messages.most_common(5)))
    shed = instance.packets_shed
    if shed:
        print(f"shed at admission gate: {shed}")
    if instance.flow_cache is not None:
        print(f"fastpath: {instance.flow_cache.hits} hits / "
              f"{instance.flow_cache.misses} misses")
    if instance.robustness.errors_total:
        print(f"contained element faults: {instance.robustness.errors_total}")
    if instance.tracer is not None:
        sampled = instance.tracer.traces(limit=1)
        if sampled:
            print(f"\nsampled {instance.tracer.sampled} traces; most recent:")
            print(render_trace_tree(sampled[-1]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic trace")
    generate.add_argument("path")
    generate.add_argument("--packets", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=20160822)
    generate.add_argument("--attack-fraction", type=float, default=0.01)
    generate.set_defaults(func=_cmd_generate)

    inspect = commands.add_parser("inspect", help="summarize a capture")
    inspect.add_argument("path")
    inspect.set_defaults(func=_cmd_inspect)

    replay = commands.add_parser("replay", help="run a capture through a firewall")
    replay.add_argument("path")
    replay.add_argument("--rules", required=True)
    replay.add_argument("--alert-only", action="store_true")
    replay.add_argument("--trace-sample", type=float, default=0.0,
                        help="sample packet traces at this rate (0 = off)")
    replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
