"""Operator command-line tools."""
